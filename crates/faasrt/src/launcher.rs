//! The per-language function launcher (paper §III-A).
//!
//! For every supported language ConfBench ships a workload-agnostic launcher
//! that instantiates the runtime, executes the function with its arguments,
//! and returns a common output shape. The paper's timing excludes the time
//! the launcher needs to bootstrap the runtime; [`LaunchOutput`] therefore
//! separates the startup trace from the execution trace.

use confbench_types::{Language, OpTrace};

use crate::bytecode::{compile, JitMode, StackVm};
use crate::error::ScriptError;
use crate::interp::{run_program, TREE_WALK_DISPATCH};
use crate::parser::parse;
use crate::profile::RuntimeProfile;

/// A function the launcher can execute: CBScript source for the engine
/// languages, plus native logic for the emulated ones.
pub trait FaasFunction {
    /// Unique function name.
    fn name(&self) -> &str;

    /// CBScript source implementing the function (the Lua/LuaJIT/Wasm
    /// path). Engines run this for real.
    fn script(&self) -> &str;

    /// Native implementation of the same semantics (the Python/Node/Ruby/Go
    /// path): performs the real computation, records the *logical* trace,
    /// and returns the output string.
    ///
    /// # Errors
    ///
    /// Implementation-specific failure, reported as a string.
    fn run_native(&self, args: &[String], trace: &mut OpTrace) -> Result<String, String>;
}

/// What a launch produced.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchOutput {
    /// The function's result string.
    pub output: String,
    /// Log text emitted during execution.
    pub log: String,
    /// Operations of the measured function execution.
    pub trace: OpTrace,
    /// Operations of runtime bootstrap (excluded from timing, as in the
    /// paper).
    pub startup_trace: OpTrace,
}

/// Errors from launching a function.
#[derive(Debug, Clone, PartialEq)]
pub enum LaunchError {
    /// The CBScript path failed.
    Script(ScriptError),
    /// The native path failed.
    Native(String),
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::Script(e) => write!(f, "script: {e}"),
            LaunchError::Native(msg) => write!(f, "native: {msg}"),
        }
    }
}

impl std::error::Error for LaunchError {}

impl From<ScriptError> for LaunchError {
    fn from(e: ScriptError) -> Self {
        LaunchError::Script(e)
    }
}

/// Interpreter/VM step budget per function execution.
const STEP_LIMIT: u64 = 400_000_000;

/// A workload-agnostic launcher bound to one language runtime.
///
/// # Example
///
/// ```
/// use confbench_faasrt::{FaasFunction, FunctionLauncher};
/// use confbench_types::{Language, OpTrace};
///
/// struct Double;
/// impl FaasFunction for Double {
///     fn name(&self) -> &str { "double" }
///     fn script(&self) -> &str { "result(int(ARGS[0]) * 2);" }
///     fn run_native(&self, args: &[String], trace: &mut OpTrace) -> Result<String, String> {
///         let n: i64 = args[0].parse().map_err(|e| format!("{e}"))?;
///         trace.cpu(1);
///         Ok((n * 2).to_string())
///     }
/// }
///
/// let lua = FunctionLauncher::new(Language::Lua).launch(&Double, &["21".into()]).unwrap();
/// let go = FunctionLauncher::new(Language::Go).launch(&Double, &["21".into()]).unwrap();
/// assert_eq!(lua.output, "42");
/// assert_eq!(go.output, "42");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionLauncher {
    language: Language,
}

impl FunctionLauncher {
    /// Creates a launcher for `language`.
    pub fn new(language: Language) -> Self {
        FunctionLauncher { language }
    }

    /// The launcher's language.
    pub fn language(&self) -> Language {
        self.language
    }

    /// Executes `function` with `args` under this launcher's runtime.
    ///
    /// # Errors
    ///
    /// [`LaunchError`] from either execution path.
    pub fn launch(
        &self,
        function: &dyn FaasFunction,
        args: &[String],
    ) -> Result<LaunchOutput, LaunchError> {
        match self.language {
            Language::Lua => {
                let program = parse(function.script())?;
                let outcome = run_program(&program, args, TREE_WALK_DISPATCH, STEP_LIMIT)?;
                Ok(LaunchOutput {
                    output: outcome.result,
                    log: outcome.log,
                    trace: outcome.trace,
                    startup_trace: interpreter_startup(4 << 20),
                })
            }
            Language::LuaJit => self.run_vm(function, args, JitMode::luajit(), 6 << 20),
            Language::Wasm => self.run_vm(function, args, JitMode::wasmi(), 3 << 20),
            Language::Python | Language::Node | Language::Ruby | Language::Go => {
                let profile = RuntimeProfile::for_language(self.language)
                    .expect("emulated languages have profiles");
                let mut logical = OpTrace::new();
                let output =
                    function.run_native(args, &mut logical).map_err(LaunchError::Native)?;
                let trace = profile.apply(&logical);
                Ok(LaunchOutput {
                    output,
                    log: String::new(),
                    trace,
                    startup_trace: interpreter_startup(profile.footprint_bytes),
                })
            }
        }
    }

    fn run_vm(
        &self,
        function: &dyn FaasFunction,
        args: &[String],
        jit: JitMode,
        footprint: u64,
    ) -> Result<LaunchOutput, LaunchError> {
        let program = parse(function.script())?;
        let module = compile(&program)?;
        let outcome = StackVm::new(jit, STEP_LIMIT).run(&module, args)?;
        Ok(LaunchOutput {
            output: outcome.result,
            log: outcome.log,
            trace: outcome.trace,
            startup_trace: interpreter_startup(footprint),
        })
    }
}

fn interpreter_startup(footprint: u64) -> OpTrace {
    let mut t = OpTrace::new();
    t.alloc(footprint);
    t.mem_write(footprint / 4); // cold-start touches a quarter of it
    t.cpu(footprint / 64);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SumTo;

    impl FaasFunction for SumTo {
        fn name(&self) -> &str {
            "sumto"
        }

        fn script(&self) -> &str {
            "let n = int(ARGS[0]);
             let s = 0;
             for i in 0, n { s = s + i; }
             result(s);"
        }

        fn run_native(&self, args: &[String], trace: &mut OpTrace) -> Result<String, String> {
            let n: u64 = args[0].parse().map_err(|e| format!("{e}"))?;
            let mut s: u64 = 0;
            for i in 0..n {
                s += i;
            }
            trace.cpu(3 * n);
            Ok(s.to_string())
        }
    }

    #[test]
    fn all_languages_agree_on_output() {
        for language in Language::ALL {
            let out = FunctionLauncher::new(language).launch(&SumTo, &["1000".into()]).unwrap();
            assert_eq!(out.output, "499500", "{language} output");
        }
    }

    #[test]
    fn startup_trace_is_separate_and_nonempty() {
        let out = FunctionLauncher::new(Language::Python).launch(&SumTo, &["10".into()]).unwrap();
        assert!(!out.startup_trace.is_empty());
        assert!(out.startup_trace.total_alloc_bytes() >= 30 << 20);
    }

    #[test]
    fn dispatch_ordering_matches_runtime_weight() {
        // For the same logical work: Python >> Lua > Wasm > LuaJIT ~ Go.
        let cpu = |language: Language| {
            FunctionLauncher::new(language)
                .launch(&SumTo, &["200000".into()])
                .unwrap()
                .trace
                .total_cpu_ops()
        };
        let python = cpu(Language::Python);
        let lua = cpu(Language::Lua);
        let wasm = cpu(Language::Wasm);
        let luajit = cpu(Language::LuaJit);
        let go = cpu(Language::Go);
        assert!(python > lua, "python {python} vs lua {lua}");
        assert!(lua > wasm, "lua {lua} vs wasm {wasm}");
        assert!(wasm > luajit, "wasm {wasm} vs luajit {luajit}");
        assert!(go < wasm, "go {go} vs wasm {wasm}");
    }

    #[test]
    fn script_errors_surface() {
        struct Broken;
        impl FaasFunction for Broken {
            fn name(&self) -> &str {
                "broken"
            }
            fn script(&self) -> &str {
                "result(1 / 0);"
            }
            fn run_native(&self, _: &[String], _: &mut OpTrace) -> Result<String, String> {
                Err("native boom".into())
            }
        }
        assert!(matches!(
            FunctionLauncher::new(Language::Lua).launch(&Broken, &[]),
            Err(LaunchError::Script(_))
        ));
        assert!(matches!(
            FunctionLauncher::new(Language::Go).launch(&Broken, &[]),
            Err(LaunchError::Native(_))
        ));
    }
}

//! Lexical tokens of CBScript.

use std::fmt;

/// A lexical token with its source line (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (unescaped).
    Str(String),
    /// Identifier.
    Ident(String),

    // Keywords.
    /// `fn`
    Fn,
    /// `let`
    Let,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `in`
    In,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `true`
    True,
    /// `false`
    False,
    /// `nil`
    Nil,

    // Operators and punctuation.
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `=`
    Eq,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(n) => write!(f, "{n}"),
            TokenKind::Float(x) => write!(f, "{x}"),
            TokenKind::Str(s) => write!(f, "{s:?}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Fn => f.write_str("fn"),
            TokenKind::Let => f.write_str("let"),
            TokenKind::If => f.write_str("if"),
            TokenKind::Else => f.write_str("else"),
            TokenKind::While => f.write_str("while"),
            TokenKind::For => f.write_str("for"),
            TokenKind::In => f.write_str("in"),
            TokenKind::Return => f.write_str("return"),
            TokenKind::Break => f.write_str("break"),
            TokenKind::Continue => f.write_str("continue"),
            TokenKind::True => f.write_str("true"),
            TokenKind::False => f.write_str("false"),
            TokenKind::Nil => f.write_str("nil"),
            TokenKind::Plus => f.write_str("+"),
            TokenKind::Minus => f.write_str("-"),
            TokenKind::Star => f.write_str("*"),
            TokenKind::Slash => f.write_str("/"),
            TokenKind::Percent => f.write_str("%"),
            TokenKind::EqEq => f.write_str("=="),
            TokenKind::NotEq => f.write_str("!="),
            TokenKind::Lt => f.write_str("<"),
            TokenKind::Le => f.write_str("<="),
            TokenKind::Gt => f.write_str(">"),
            TokenKind::Ge => f.write_str(">="),
            TokenKind::AndAnd => f.write_str("&&"),
            TokenKind::OrOr => f.write_str("||"),
            TokenKind::Bang => f.write_str("!"),
            TokenKind::Eq => f.write_str("="),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::LBrace => f.write_str("{"),
            TokenKind::RBrace => f.write_str("}"),
            TokenKind::LBracket => f.write_str("["),
            TokenKind::RBracket => f.write_str("]"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::Semi => f.write_str(";"),
            TokenKind::Eof => f.write_str("<eof>"),
        }
    }
}

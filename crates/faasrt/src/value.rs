//! CBScript runtime values.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A dynamically-typed CBScript value.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Immutable string.
    Str(Rc<str>),
    /// Mutable shared array.
    Array(Rc<RefCell<Vec<Value>>>),
    /// Absence of a value.
    Nil,
}

impl Value {
    /// Creates an array value from a vector.
    pub fn array(items: Vec<Value>) -> Value {
        Value::Array(Rc::new(RefCell::new(items)))
    }

    /// CBScript truthiness: `nil` and `false` are falsy; everything else —
    /// including `0` — is truthy (Lua semantics).
    pub fn is_truthy(&self) -> bool {
        !matches!(self, Value::Nil | Value::Bool(false))
    }

    /// The type name used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Nil => "nil",
        }
    }

    /// Numeric view as f64, if the value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => *a.borrow() == *b.borrow(),
            (Value::Nil, Value::Nil) => true,
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.borrow().iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Nil => f.write_str("nil"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_matches_lua() {
        assert!(Value::Int(0).is_truthy());
        assert!(Value::Str("".into()).is_truthy());
        assert!(!Value::Nil.is_truthy());
        assert!(!Value::Bool(false).is_truthy());
    }

    #[test]
    fn mixed_numeric_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_ne!(Value::Int(2), Value::Float(2.5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Float(3.0).to_string(), "3.0");
        assert_eq!(Value::array(vec![Value::Int(1), Value::Nil]).to_string(), "[1, nil]");
    }

    #[test]
    fn arrays_share_on_clone() {
        let a = Value::array(vec![Value::Int(1)]);
        let b = a.clone();
        if let Value::Array(items) = &a {
            items.borrow_mut().push(Value::Int(2));
        }
        if let Value::Array(items) = &b {
            assert_eq!(items.borrow().len(), 2);
        }
    }
}

//! Recursive-descent parser for CBScript.

use crate::ast::{BinOp, Expr, FnDecl, Program, Stmt, UnOp};
use crate::error::ScriptError;
use crate::lexer::lex;
use crate::token::{Token, TokenKind};

/// Parses CBScript source into a [`Program`].
///
/// # Errors
///
/// [`ScriptError::Lex`] or [`ScriptError::Parse`] with the offending line.
pub fn parse(source: &str) -> Result<Program, ScriptError> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), ScriptError> {
        if self.peek() == &kind {
            self.advance();
            Ok(())
        } else {
            Err(self.err(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn err(&self, message: String) -> ScriptError {
        ScriptError::Parse { line: self.line(), message }
    }

    fn program(mut self) -> Result<Program, ScriptError> {
        let mut program = Program::default();
        while self.peek() != &TokenKind::Eof {
            if self.peek() == &TokenKind::Fn {
                program.functions.push(self.fn_decl()?);
            } else {
                program.body.push(self.stmt()?);
            }
        }
        Ok(program)
    }

    fn fn_decl(&mut self) -> Result<FnDecl, ScriptError> {
        self.expect(TokenKind::Fn)?;
        let name = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                params.push(self.ident()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let body = self.block()?;
        Ok(FnDecl { name, params, body })
    }

    fn ident(&mut self) -> Result<String, ScriptError> {
        match self.advance() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ScriptError> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            if self.peek() == &TokenKind::Eof {
                return Err(self.err("unterminated block".into()));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(TokenKind::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ScriptError> {
        match self.peek().clone() {
            TokenKind::Let => {
                self.advance();
                let name = self.ident()?;
                self.expect(TokenKind::Eq)?;
                let value = self.expr()?;
                self.eat(&TokenKind::Semi);
                Ok(Stmt::Let(name, value))
            }
            TokenKind::If => {
                self.advance();
                let cond = self.expr()?;
                let then_branch = self.block()?;
                let else_branch = if self.eat(&TokenKind::Else) {
                    if self.peek() == &TokenKind::If {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then_branch, else_branch))
            }
            TokenKind::While => {
                self.advance();
                let cond = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::While(cond, body))
            }
            TokenKind::For => {
                self.advance();
                let var = self.ident()?;
                self.expect(TokenKind::In)?;
                let from = self.expr()?;
                self.expect(TokenKind::Comma)?;
                let to = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::For(var, from, to, body))
            }
            TokenKind::Return => {
                self.advance();
                let value = if self.peek() == &TokenKind::Semi || self.peek() == &TokenKind::RBrace
                {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat(&TokenKind::Semi);
                Ok(Stmt::Return(value))
            }
            TokenKind::Break => {
                self.advance();
                self.eat(&TokenKind::Semi);
                Ok(Stmt::Break)
            }
            TokenKind::Continue => {
                self.advance();
                self.eat(&TokenKind::Semi);
                Ok(Stmt::Continue)
            }
            TokenKind::Ident(name) => {
                // Lookahead for assignment forms.
                let save = self.pos;
                self.advance();
                if self.eat(&TokenKind::Eq) {
                    let value = self.expr()?;
                    self.eat(&TokenKind::Semi);
                    return Ok(Stmt::Assign(name, value));
                }
                if self.peek() == &TokenKind::LBracket {
                    // Could be `a[i] = v` or expression `a[i]`.
                    self.advance();
                    let index = self.expr()?;
                    self.expect(TokenKind::RBracket)?;
                    if self.eat(&TokenKind::Eq) {
                        let value = self.expr()?;
                        self.eat(&TokenKind::Semi);
                        return Ok(Stmt::IndexAssign(name, index, value));
                    }
                }
                // Not an assignment: re-parse as expression.
                self.pos = save;
                let e = self.expr()?;
                self.eat(&TokenKind::Semi);
                Ok(Stmt::Expr(e))
            }
            _ => {
                let e = self.expr()?;
                self.eat(&TokenKind::Semi);
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn expr(&mut self) -> Result<Expr, ScriptError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ScriptError> {
        let mut left = self.and_expr()?;
        while self.eat(&TokenKind::OrOr) {
            let right = self.and_expr()?;
            left = Expr::Binary(BinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ScriptError> {
        let mut left = self.cmp_expr()?;
        while self.eat(&TokenKind::AndAnd) {
            let right = self.cmp_expr()?;
            left = Expr::Binary(BinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ScriptError> {
        let mut left = self.add_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::Ne,
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            self.advance();
            let right = self.add_expr()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn add_expr(&mut self) -> Result<Expr, ScriptError> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.mul_expr()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr, ScriptError> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            self.advance();
            let right = self.unary_expr()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, ScriptError> {
        match self.peek() {
            TokenKind::Minus => {
                self.advance();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary_expr()?)))
            }
            TokenKind::Bang => {
                self.advance();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary_expr()?)))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, ScriptError> {
        let mut e = self.primary_expr()?;
        while self.peek() == &TokenKind::LBracket {
            self.advance();
            let index = self.expr()?;
            self.expect(TokenKind::RBracket)?;
            e = Expr::Index(Box::new(e), Box::new(index));
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, ScriptError> {
        match self.advance() {
            TokenKind::Int(n) => Ok(Expr::Int(n)),
            TokenKind::Float(x) => Ok(Expr::Float(x)),
            TokenKind::Str(s) => Ok(Expr::Str(s.into())),
            TokenKind::True => Ok(Expr::Bool(true)),
            TokenKind::False => Ok(Expr::Bool(false)),
            TokenKind::Nil => Ok(Expr::Nil),
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::LBracket => {
                let mut items = Vec::new();
                if self.peek() != &TokenKind::RBracket {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(TokenKind::RBracket)?;
                Ok(Expr::Array(items))
            }
            TokenKind::Ident(name) => {
                if self.peek() == &TokenKind::LParen {
                    self.advance();
                    let mut args = Vec::new();
                    if self.peek() != &TokenKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.err(format!("unexpected token {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_let_and_arithmetic_with_precedence() {
        let p = parse("let x = 1 + 2 * 3;").unwrap();
        assert_eq!(
            p.body[0],
            Stmt::Let(
                "x".into(),
                Expr::Binary(
                    BinOp::Add,
                    Box::new(Expr::Int(1)),
                    Box::new(Expr::Binary(
                        BinOp::Mul,
                        Box::new(Expr::Int(2)),
                        Box::new(Expr::Int(3))
                    ))
                )
            )
        );
    }

    #[test]
    fn parses_function_declarations() {
        let p = parse("fn add(a, b) { return a + b; } let y = add(1, 2);").unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].params, vec!["a", "b"]);
        assert_eq!(p.body.len(), 1);
    }

    #[test]
    fn parses_if_else_chain() {
        let p = parse("if x < 1 { y = 1; } else if x < 2 { y = 2; } else { y = 3; }").unwrap();
        match &p.body[0] {
            Stmt::If(_, _, else_branch) => {
                assert!(matches!(else_branch[0], Stmt::If(_, _, _)));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_for_range_and_while() {
        let p = parse("for i in 0, 10 { s = s + i; } while s > 0 { s = s - 1; }").unwrap();
        assert!(matches!(p.body[0], Stmt::For(..)));
        assert!(matches!(p.body[1], Stmt::While(..)));
    }

    #[test]
    fn parses_array_literals_indexing_and_index_assign() {
        let p = parse("let a = [1, 2, 3]; a[0] = a[1] + a[2];").unwrap();
        assert!(matches!(p.body[1], Stmt::IndexAssign(..)));
    }

    #[test]
    fn index_expression_statement_is_not_assignment() {
        let p = parse("f(a[0]); a[0];").unwrap();
        assert!(matches!(p.body[0], Stmt::Expr(Expr::Call(..))));
        assert!(matches!(p.body[1], Stmt::Expr(Expr::Index(..))));
    }

    #[test]
    fn nested_indexing_parses() {
        let p = parse("let x = m[i][j];").unwrap();
        match &p.body[0] {
            Stmt::Let(_, Expr::Index(inner, _)) => assert!(matches!(**inner, Expr::Index(..))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_reports_line() {
        match parse("let x = 1;\nlet = 5;") {
            Err(ScriptError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn unterminated_block_detected() {
        assert!(matches!(parse("fn f() { let x = 1;"), Err(ScriptError::Parse { .. })));
    }

    #[test]
    fn logical_operators_short_circuit_shape() {
        let p = parse("let x = a && b || c;").unwrap();
        match &p.body[0] {
            Stmt::Let(_, Expr::Binary(BinOp::Or, left, _)) => {
                assert!(matches!(**left, Expr::Binary(BinOp::And, ..)));
            }
            other => panic!("{other:?}"),
        }
    }
}

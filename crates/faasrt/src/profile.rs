//! Managed-runtime profiles: how Python, Node, Ruby and Go transform a
//! workload's logical operation trace.
//!
//! For runtimes we do not execute for real (CPython, V8, MRI) and for the
//! compiled-native path (Go), the launcher takes the workload's *logical*
//! trace — the operations its pure semantics perform — and inflates it
//! according to the runtime's character: interpreter dispatch overhead,
//! boxed-value memory traffic, allocation pressure, garbage-collection
//! pauses, and resident footprint. The footprint and allocation channels
//! are what interact with TEE memory costs, producing the paper's
//! "heavier runtimes ⇒ larger TEE ratio" FaaS finding.

use confbench_types::{Language, Op, OpTrace};

/// The character of a language runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeProfile {
    /// Multiplier on logical CPU ops (interpreter dispatch, boxing,
    /// dynamic-type checks).
    pub dispatch_factor: f64,
    /// Multiplier on logical float ops.
    pub float_factor: f64,
    /// Extra heap bytes allocated per 1 000 logical CPU ops (boxed values,
    /// temporary objects).
    pub alloc_bytes_per_kop: u64,
    /// Resident footprint the runtime touches at startup and keeps warm
    /// (interpreter state, loaded modules, JIT caches).
    pub footprint_bytes: u64,
    /// A GC cycle runs every this many logical CPU ops (0 = no GC).
    pub gc_period_ops: u64,
    /// Fraction of the live footprint each GC cycle touches.
    pub gc_scan_fraction: f64,
    /// Fraction of the live heap each GC cycle releases to the host and
    /// refaults (`MADV_DONTNEED` trimming). In a TEE the refault re-runs
    /// page acceptance — the channel that makes heavy runtimes pay more.
    pub gc_release_fraction: f64,
}

impl RuntimeProfile {
    /// The profile used for `language` when the launcher emulates it.
    ///
    /// Lua, LuaJIT, and Wasm execute for real (interpreter / stack VM) and
    /// have no profile; asking for one returns `None`.
    pub fn for_language(language: Language) -> Option<RuntimeProfile> {
        match language {
            Language::Python => Some(RuntimeProfile {
                dispatch_factor: 30.0,
                float_factor: 9.0,
                alloc_bytes_per_kop: 2_600,
                footprint_bytes: 34 << 20,
                gc_period_ops: 25_000, // gen-0 collections are frequent
                gc_scan_fraction: 0.04,
                gc_release_fraction: 0.05,
            }),
            Language::Node => Some(RuntimeProfile {
                // V8 JIT-compiles: modest dispatch, but a big, allocation-
                // hungry heap and large footprint.
                dispatch_factor: 3.4,
                float_factor: 1.6,
                alloc_bytes_per_kop: 3_400,
                footprint_bytes: 58 << 20,
                gc_period_ops: 40_000, // scavenger runs constantly
                gc_scan_fraction: 0.05,
                gc_release_fraction: 0.06,
            }),
            Language::Ruby => Some(RuntimeProfile {
                dispatch_factor: 26.0,
                float_factor: 8.0,
                alloc_bytes_per_kop: 2_900,
                footprint_bytes: 27 << 20,
                gc_period_ops: 30_000,
                gc_scan_fraction: 0.04,
                gc_release_fraction: 0.045,
            }),
            Language::Go => Some(RuntimeProfile {
                dispatch_factor: 1.25,
                float_factor: 1.1,
                alloc_bytes_per_kop: 140,
                footprint_bytes: 6 << 20,
                gc_period_ops: 1_000_000, // value types keep pressure low
                gc_scan_fraction: 0.08,
                gc_release_fraction: 0.01,
            }),
            Language::Lua | Language::LuaJit | Language::Wasm => None,
        }
    }

    /// Applies the profile to a logical trace, producing the trace the
    /// runtime's process would exhibit.
    pub fn apply(&self, logical: &OpTrace) -> OpTrace {
        let mut out = OpTrace::new();
        // Runtime structures touched while executing (dispatch tables,
        // inline caches, module dicts). The footprint *allocation* happens
        // at bootstrap, which the launcher reports separately and the
        // paper's timings exclude; the recurring touches are measured.
        out.mem_read(self.footprint_bytes / 8);

        let mut cpu_since_gc = 0u64;
        let mut live_bytes = self.footprint_bytes;
        for op in logical {
            match *op {
                Op::Cpu(n) => {
                    let scaled = (n as f64 * self.dispatch_factor).round() as u64;
                    out.cpu(scaled);
                    let alloc = n / 1_000 * self.alloc_bytes_per_kop;
                    if alloc > 0 {
                        out.alloc(alloc);
                        out.mem_write(alloc); // boxed temporaries are written
                        out.free(alloc); // and die young
                    }
                    cpu_since_gc += n;
                }
                Op::Float(n) => {
                    out.float((n as f64 * self.float_factor).round() as u64);
                    cpu_since_gc += n;
                }
                Op::Alloc(bytes) => {
                    live_bytes += bytes;
                    out.alloc(bytes);
                }
                Op::Free(bytes) => {
                    live_bytes = live_bytes.saturating_sub(bytes);
                    out.free(bytes);
                }
                other => out.push(other),
            }
            // Garbage collection: periodically scan part of the live heap.
            if self.gc_period_ops > 0 && cpu_since_gc >= self.gc_period_ops {
                cpu_since_gc = 0;
                let scanned = (live_bytes as f64 * self.gc_scan_fraction) as u64;
                if scanned > 0 {
                    out.mem_read(scanned);
                    out.cpu(scanned / 16); // mark/sweep work per word
                }
                let released = (live_bytes as f64 * self.gc_release_fraction) as u64;
                if released > 0 {
                    out.page_cycle(released);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logical() -> OpTrace {
        let mut t = OpTrace::new();
        t.cpu(2_000_000);
        t.float(100_000);
        t.alloc(1 << 20);
        t.io_write(4096);
        t
    }

    #[test]
    fn engine_languages_have_no_profile() {
        assert!(RuntimeProfile::for_language(Language::Lua).is_none());
        assert!(RuntimeProfile::for_language(Language::LuaJit).is_none());
        assert!(RuntimeProfile::for_language(Language::Wasm).is_none());
        for l in [Language::Python, Language::Node, Language::Ruby, Language::Go] {
            assert!(RuntimeProfile::for_language(l).is_some());
        }
    }

    #[test]
    fn python_is_heavier_than_go_everywhere() {
        let py = RuntimeProfile::for_language(Language::Python).unwrap();
        let go = RuntimeProfile::for_language(Language::Go).unwrap();
        assert!(py.dispatch_factor > 10.0 * go.dispatch_factor);
        assert!(py.footprint_bytes > 4 * go.footprint_bytes);
        assert!(py.alloc_bytes_per_kop > 10 * go.alloc_bytes_per_kop);
    }

    #[test]
    fn apply_scales_cpu_and_preserves_io() {
        let py = RuntimeProfile::for_language(Language::Python).unwrap();
        let out = py.apply(&logical());
        assert!(out.total_cpu_ops() >= 2_000_000 * 29);
        assert_eq!(out.total_io_bytes(), 4096, "I/O is not multiplied by dispatch");
        // Boxed temporaries: ~2.6 KB per 1k logical ops over 2M ops.
        assert!(out.total_alloc_bytes() > 4 << 20);
    }

    #[test]
    fn gc_adds_memory_traffic_for_long_runs() {
        let node = RuntimeProfile::for_language(Language::Node).unwrap();
        let mut short = OpTrace::new();
        short.cpu(10_000);
        let mut long = OpTrace::new();
        for _ in 0..100 {
            long.cpu(100_000);
        }
        let mem = |t: &OpTrace| {
            t.iter()
                .map(|op| match op {
                    Op::MemRead { bytes, .. } => *bytes,
                    _ => 0,
                })
                .sum::<u64>()
        };
        let short_mem = mem(&node.apply(&short));
        let long_mem = mem(&node.apply(&long));
        assert!(long_mem > short_mem, "GC scans must appear: {long_mem} vs {short_mem}");
    }

    #[test]
    fn go_barely_inflates() {
        let go = RuntimeProfile::for_language(Language::Go).unwrap();
        let out = go.apply(&logical());
        let cpu = out.total_cpu_ops() as f64;
        assert!(cpu < 2_000_000.0 * 1.6, "Go dispatch is near-native: {cpu}");
    }
}

//! The CBScript tree-walking interpreter (the PUC-Lua path).
//!
//! Executing a script does two things at once: it computes the real result
//! (loops run, arrays mutate, strings build) and it records the abstract
//! operations an interpreter of this class performs — dispatch work per AST
//! node, boxed-value memory traffic, allocator churn, and the effects of
//! I/O builtins — into a [`confbench_types::OpTrace`] that a simulated VM
//! then charges for.

use std::collections::HashMap;
use std::rc::Rc;

use confbench_types::OpTrace;

use crate::ast::{BinOp, Expr, FnDecl, Program, Stmt, UnOp};
use crate::error::ScriptError;
use crate::value::Value;

/// Per-AST-node dispatch cost of a tree-walking interpreter, in abstract
/// CPU ops (the PUC-Lua class).
pub const TREE_WALK_DISPATCH: u64 = 14;

/// What a finished script produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptOutcome {
    /// Value passed to the `result(..)` builtin, rendered; empty if unset.
    pub result: String,
    /// Concatenated `log(..)` output.
    pub log: String,
    /// The recorded operation trace.
    pub trace: OpTrace,
    /// Total interpreter steps (AST nodes evaluated).
    pub steps: u64,
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// Runs `program` with string arguments bound to the global `ARGS` array.
///
/// # Errors
///
/// [`ScriptError::Runtime`] on dynamic errors and
/// [`ScriptError::StepLimitExceeded`] past `step_limit`.
pub fn run_program(
    program: &Program,
    args: &[String],
    dispatch_cost: u64,
    step_limit: u64,
) -> Result<ScriptOutcome, ScriptError> {
    let mut interp = Interp::new(program, dispatch_cost, step_limit);
    interp.globals.insert(
        "ARGS".to_owned(),
        Value::array(args.iter().map(|s| Value::Str(Rc::from(s.as_str()))).collect()),
    );
    for stmt in &program.body {
        if let Flow::Return(_) = interp.exec_stmt(stmt, &mut Vec::new())? {
            break;
        }
    }
    interp.flush_pending();
    Ok(ScriptOutcome {
        result: interp.result,
        log: interp.log,
        trace: interp.trace,
        steps: interp.steps,
    })
}

struct Interp<'p> {
    functions: HashMap<&'p str, &'p FnDecl>,
    globals: HashMap<String, Value>,
    trace: OpTrace,
    result: String,
    log: String,
    steps: u64,
    step_limit: u64,
    dispatch_cost: u64,
    call_depth: u32,
    cpu_pending: u64,
    float_pending: u64,
    mem_pending: u64,
    log_pending: u64,
    block_depth: u32,
}

/// Flush batched counters into the trace at this granularity.
const FLUSH_EVERY: u64 = 1 << 16;

/// Maximum script call depth (guards the host stack against runaway
/// recursion in uploaded functions).
const MAX_CALL_DEPTH: u32 = 150;

type Scope = Vec<(String, Value)>;

impl<'p> Interp<'p> {
    fn new(program: &'p Program, dispatch_cost: u64, step_limit: u64) -> Self {
        Interp {
            functions: program.functions.iter().map(|f| (f.name.as_str(), f)).collect(),
            globals: HashMap::new(),
            trace: OpTrace::new(),
            result: String::new(),
            log: String::new(),
            steps: 0,
            step_limit,
            dispatch_cost,
            call_depth: 0,
            cpu_pending: 0,
            float_pending: 0,
            mem_pending: 0,
            log_pending: 0,
            block_depth: 0,
        }
    }

    fn step(&mut self) -> Result<(), ScriptError> {
        self.steps += 1;
        self.cpu_pending += self.dispatch_cost;
        if self.cpu_pending >= FLUSH_EVERY {
            self.flush_pending();
        }
        if self.steps > self.step_limit {
            return Err(ScriptError::StepLimitExceeded(self.step_limit));
        }
        Ok(())
    }

    fn flush_pending(&mut self) {
        if self.cpu_pending > 0 {
            self.trace.cpu(self.cpu_pending);
            self.cpu_pending = 0;
        }
        if self.float_pending > 0 {
            self.trace.float(self.float_pending);
            self.float_pending = 0;
        }
        if self.mem_pending > 0 {
            // Boxed-value heap traffic: reads and writes interleave; model
            // as one combined run over a recycled region.
            self.trace.mem_read(self.mem_pending);
            self.mem_pending = 0;
        }
        if self.log_pending > 0 {
            self.trace.log(self.log_pending);
            self.log_pending = 0;
        }
    }

    fn lookup(&self, scope: &Scope, name: &str) -> Option<Value> {
        scope
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
            .or_else(|| self.globals.get(name).cloned())
    }

    fn assign(&mut self, scope: &mut Scope, name: &str, value: Value) -> Result<(), ScriptError> {
        if let Some(slot) = scope.iter_mut().rev().find(|(n, _)| n == name) {
            slot.1 = value;
            return Ok(());
        }
        if let Some(slot) = self.globals.get_mut(name) {
            *slot = value;
            return Ok(());
        }
        Err(ScriptError::Runtime(format!("assignment to undeclared variable {name}")))
    }

    fn exec_block(&mut self, stmts: &[Stmt], scope: &mut Scope) -> Result<Flow, ScriptError> {
        let depth = scope.len();
        self.block_depth += 1;
        for stmt in stmts {
            match self.exec_stmt(stmt, scope)? {
                Flow::Normal => {}
                flow => {
                    scope.truncate(depth);
                    self.block_depth -= 1;
                    return Ok(flow);
                }
            }
        }
        scope.truncate(depth);
        self.block_depth -= 1;
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, scope: &mut Scope) -> Result<Flow, ScriptError> {
        self.step()?;
        match stmt {
            Stmt::Let(name, expr) => {
                let value = self.eval(expr, scope)?;
                self.mem_pending += 16; // new slot
                if self.block_depth == 0 && scope.is_empty() {
                    self.globals.insert(name.clone(), value);
                } else {
                    scope.push((name.clone(), value));
                }
                Ok(Flow::Normal)
            }
            Stmt::Assign(name, expr) => {
                let value = self.eval(expr, scope)?;
                self.mem_pending += 16;
                self.assign(scope, name, value)?;
                Ok(Flow::Normal)
            }
            Stmt::IndexAssign(name, index, expr) => {
                let value = self.eval(expr, scope)?;
                let index = self.eval_index(index, scope)?;
                let target = self
                    .lookup(scope, name)
                    .ok_or_else(|| ScriptError::Runtime(format!("unknown variable {name}")))?;
                match target {
                    Value::Array(items) => {
                        let mut items = items.borrow_mut();
                        let len = items.len();
                        let slot = items.get_mut(index).ok_or_else(|| {
                            ScriptError::Runtime(format!("index {index} out of range (len {len})"))
                        })?;
                        *slot = value;
                        self.mem_pending += 24; // bounds check + boxed write
                        Ok(Flow::Normal)
                    }
                    other => Err(ScriptError::Runtime(format!(
                        "cannot index {} for assignment",
                        other.type_name()
                    ))),
                }
            }
            Stmt::Expr(expr) => {
                self.eval(expr, scope)?;
                Ok(Flow::Normal)
            }
            Stmt::If(cond, then_branch, else_branch) => {
                if self.eval(cond, scope)?.is_truthy() {
                    self.exec_block(then_branch, scope)
                } else {
                    self.exec_block(else_branch, scope)
                }
            }
            Stmt::While(cond, body) => {
                while self.eval(cond, scope)?.is_truthy() {
                    match self.exec_block(body, scope)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For(var, from, to, body) => {
                let from = self.eval_int(from, scope)?;
                let to = self.eval_int(to, scope)?;
                scope.push((var.clone(), Value::Int(from)));
                let slot = scope.len() - 1;
                let mut i = from;
                while i < to {
                    scope[slot].1 = Value::Int(i);
                    match self.exec_block(body, scope)? {
                        Flow::Break => break,
                        Flow::Return(v) => {
                            scope.truncate(slot);
                            return Ok(Flow::Return(v));
                        }
                        Flow::Normal | Flow::Continue => {}
                    }
                    self.step()?; // loop bookkeeping
                    i += 1;
                }
                scope.truncate(slot);
                Ok(Flow::Normal)
            }
            Stmt::Return(expr) => {
                let value = match expr {
                    Some(e) => self.eval(e, scope)?,
                    None => Value::Nil,
                };
                Ok(Flow::Return(value))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
        }
    }

    fn eval_int(&mut self, expr: &Expr, scope: &mut Scope) -> Result<i64, ScriptError> {
        match self.eval(expr, scope)? {
            Value::Int(n) => Ok(n),
            other => Err(ScriptError::Runtime(format!("expected int, got {}", other.type_name()))),
        }
    }

    fn eval_index(&mut self, expr: &Expr, scope: &mut Scope) -> Result<usize, ScriptError> {
        let n = self.eval_int(expr, scope)?;
        usize::try_from(n).map_err(|_| ScriptError::Runtime(format!("negative index {n}")))
    }

    fn eval(&mut self, expr: &Expr, scope: &mut Scope) -> Result<Value, ScriptError> {
        self.step()?;
        match expr {
            Expr::Int(n) => Ok(Value::Int(*n)),
            Expr::Float(x) => Ok(Value::Float(*x)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Nil => Ok(Value::Nil),
            Expr::Var(name) => self
                .lookup(scope, name)
                .ok_or_else(|| ScriptError::Runtime(format!("unknown variable {name}"))),
            Expr::Array(items) => {
                let values: Result<Vec<Value>, _> =
                    items.iter().map(|e| self.eval(e, scope)).collect();
                let values = values?;
                self.trace.alloc(16 * values.len().max(1) as u64);
                self.mem_pending += 16 * values.len() as u64;
                Ok(Value::array(values))
            }
            Expr::Index(target, index) => {
                let target = self.eval(target, scope)?;
                let index = self.eval_index(index, scope)?;
                self.mem_pending += 24;
                match target {
                    Value::Array(items) => {
                        let items = items.borrow();
                        items.get(index).cloned().ok_or_else(|| {
                            ScriptError::Runtime(format!(
                                "index {index} out of range (len {})",
                                items.len()
                            ))
                        })
                    }
                    Value::Str(s) => {
                        // Byte access returns the code point as an int.
                        s.as_bytes().get(index).map(|&b| Value::Int(b as i64)).ok_or_else(|| {
                            ScriptError::Runtime(format!("string index {index} out of range"))
                        })
                    }
                    other => {
                        Err(ScriptError::Runtime(format!("cannot index {}", other.type_name())))
                    }
                }
            }
            Expr::Unary(op, inner) => {
                let v = self.eval(inner, scope)?;
                match (op, v) {
                    (UnOp::Neg, Value::Int(n)) => Ok(Value::Int(-n)),
                    (UnOp::Neg, Value::Float(x)) => {
                        self.float_pending += 1;
                        Ok(Value::Float(-x))
                    }
                    (UnOp::Not, v) => Ok(Value::Bool(!v.is_truthy())),
                    (UnOp::Neg, v) => {
                        Err(ScriptError::Runtime(format!("cannot negate {}", v.type_name())))
                    }
                }
            }
            Expr::Binary(BinOp::And, left, right) => {
                let l = self.eval(left, scope)?;
                if !l.is_truthy() {
                    return Ok(l);
                }
                self.eval(right, scope)
            }
            Expr::Binary(BinOp::Or, left, right) => {
                let l = self.eval(left, scope)?;
                if l.is_truthy() {
                    return Ok(l);
                }
                self.eval(right, scope)
            }
            Expr::Binary(op, left, right) => {
                let l = self.eval(left, scope)?;
                let r = self.eval(right, scope)?;
                self.binary(*op, l, r)
            }
            Expr::Call(name, args) => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval(a, scope)?);
                }
                self.call(name, values, scope)
            }
        }
    }

    fn binary(&mut self, op: BinOp, l: Value, r: Value) -> Result<Value, ScriptError> {
        use BinOp::*;
        use Value::*;
        match op {
            Add => match (l, r) {
                (Int(a), Int(b)) => Ok(Int(a.wrapping_add(b))),
                (Str(a), b) => {
                    let s = format!("{a}{b}");
                    self.trace.alloc(s.len() as u64);
                    self.mem_pending += s.len() as u64;
                    Ok(Str(s.into()))
                }
                (a, Str(b)) => {
                    let s = format!("{a}{b}");
                    self.trace.alloc(s.len() as u64);
                    self.mem_pending += s.len() as u64;
                    Ok(Str(s.into()))
                }
                (a, b) => self.float_bin(a, b, |x, y| x + y, "+"),
            },
            Sub => match (l, r) {
                (Int(a), Int(b)) => Ok(Int(a.wrapping_sub(b))),
                (a, b) => self.float_bin(a, b, |x, y| x - y, "-"),
            },
            Mul => match (l, r) {
                (Int(a), Int(b)) => Ok(Int(a.wrapping_mul(b))),
                (a, b) => self.float_bin(a, b, |x, y| x * y, "*"),
            },
            Div => match (l, r) {
                (Int(a), Int(b)) => {
                    if b == 0 {
                        Err(ScriptError::Runtime("integer division by zero".into()))
                    } else {
                        Ok(Int(a / b))
                    }
                }
                (a, b) => self.float_bin(a, b, |x, y| x / y, "/"),
            },
            Rem => match (l, r) {
                (Int(a), Int(b)) => {
                    if b == 0 {
                        Err(ScriptError::Runtime("integer modulo by zero".into()))
                    } else {
                        Ok(Int(a % b))
                    }
                }
                (a, b) => self.float_bin(a, b, |x, y| x % y, "%"),
            },
            Eq => Ok(Bool(l == r)),
            Ne => Ok(Bool(l != r)),
            Lt | Le | Gt | Ge => {
                let ord = match (&l, &r) {
                    (Int(a), Int(b)) => a.partial_cmp(b),
                    (Str(a), Str(b)) => a.partial_cmp(b),
                    (a, b) => match (a.as_f64(), b.as_f64()) {
                        (Some(x), Some(y)) => x.partial_cmp(&y),
                        _ => None,
                    },
                };
                let ord = ord.ok_or_else(|| {
                    ScriptError::Runtime(format!(
                        "cannot compare {} and {}",
                        l.type_name(),
                        r.type_name()
                    ))
                })?;
                let result = match op {
                    Lt => ord.is_lt(),
                    Le => ord.is_le(),
                    Gt => ord.is_gt(),
                    _ => ord.is_ge(),
                };
                Ok(Bool(result))
            }
            And | Or => unreachable!("short-circuit ops handled in eval"),
        }
    }

    fn float_bin(
        &mut self,
        l: Value,
        r: Value,
        f: impl Fn(f64, f64) -> f64,
        op: &str,
    ) -> Result<Value, ScriptError> {
        match (l.as_f64(), r.as_f64()) {
            (Some(x), Some(y)) => {
                self.float_pending += 1;
                Ok(Value::Float(f(x, y)))
            }
            _ => Err(ScriptError::Runtime(format!(
                "cannot apply {op} to {} and {}",
                l.type_name(),
                r.type_name()
            ))),
        }
    }

    fn call(
        &mut self,
        name: &str,
        args: Vec<Value>,
        _scope: &mut Scope,
    ) -> Result<Value, ScriptError> {
        // User-defined functions shadow nothing: builtins use reserved names.
        if let Some(decl) = self.functions.get(name).copied() {
            if decl.params.len() != args.len() {
                return Err(ScriptError::Runtime(format!(
                    "{name} expects {} arguments, got {}",
                    decl.params.len(),
                    args.len()
                )));
            }
            // Call frame: fresh scope seeded with parameters. Depth is
            // bounded so runaway recursion in an uploaded script errors out
            // instead of overflowing the host's stack.
            self.call_depth += 1;
            if self.call_depth > MAX_CALL_DEPTH {
                self.call_depth -= 1;
                return Err(ScriptError::Runtime(format!(
                    "call depth exceeded ({MAX_CALL_DEPTH})"
                )));
            }
            self.mem_pending += 32 + 16 * args.len() as u64;
            let mut frame: Scope = decl.params.iter().cloned().zip(args).collect();
            let flow = self.exec_block(&decl.body, &mut frame);
            self.call_depth -= 1;
            return Ok(match flow? {
                Flow::Return(v) => v,
                _ => Value::Nil,
            });
        }
        crate::builtins::call_builtin(self, name, args)
    }
}

impl crate::builtins::BuiltinHost for Interp<'_> {
    fn trace_mut(&mut self) -> &mut OpTrace {
        &mut self.trace
    }

    fn flush_pending(&mut self) {
        Interp::flush_pending(self);
    }

    fn add_mem(&mut self, bytes: u64) {
        self.mem_pending += bytes;
    }

    fn add_float(&mut self, ops: u64) {
        self.float_pending += ops;
    }

    fn add_log(&mut self, text: &str) {
        self.log.push_str(text);
        self.log.push('\n');
        self.log_pending += text.len() as u64 + 1;
        if self.log_pending >= FLUSH_EVERY {
            Interp::flush_pending(self);
        }
    }

    fn set_result(&mut self, value: String) {
        self.result = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str) -> ScriptOutcome {
        run_program(&parse(src).unwrap(), &[], TREE_WALK_DISPATCH, 100_000_000).unwrap()
    }

    fn run_err(src: &str) -> ScriptError {
        run_program(&parse(src).unwrap(), &[], TREE_WALK_DISPATCH, 100_000_000).unwrap_err()
    }

    #[test]
    fn arithmetic_and_result() {
        let out = run("result(2 + 3 * 4 - 10 / 2);");
        assert_eq!(out.result, "9");
    }

    #[test]
    fn fibonacci_recursion() {
        let out = run(
            "fn fib(n) { if n < 2 { return n; } return fib(n-1) + fib(n-2); } result(fib(15));",
        );
        assert_eq!(out.result, "610");
    }

    #[test]
    fn while_loop_and_assignment() {
        let out = run("let s = 0; let i = 0; while i < 100 { s = s + i; i = i + 1; } result(s);");
        assert_eq!(out.result, "4950");
    }

    #[test]
    fn for_range_with_break_continue() {
        let out = run("let s = 0;
             for i in 0, 100 {
               if i % 2 == 0 { continue; }
               if i > 10 { break; }
               s = s + i;
             }
             result(s);");
        assert_eq!(out.result, "25"); // 1+3+5+7+9
    }

    #[test]
    fn arrays_index_and_mutation() {
        let out = run("let a = array_new(10, 0);
             for i in 0, 10 { a[i] = i * i; }
             let s = 0;
             for i in 0, 10 { s = s + a[i]; }
             result(s);");
        assert_eq!(out.result, "285");
    }

    #[test]
    fn string_concat_indexing_and_chr() {
        let out = run(r#"let s = "ab" + "cd"; result(s + str(len(s)) + chr(33) + str(s[0]));"#);
        assert_eq!(out.result, "abcd4!97");
    }

    #[test]
    fn floats_and_math_builtins() {
        let out = run("result(floor(sqrt(2.0) * 100.0));");
        assert_eq!(out.result, "141.0");
    }

    #[test]
    fn scoping_inner_blocks_do_not_leak() {
        let err = run_err("if true { let x = 1; } result(x);");
        assert!(matches!(err, ScriptError::Runtime(_)));
    }

    #[test]
    fn args_are_bound() {
        let program = parse("result(int(ARGS[0]) * 2);").unwrap();
        let out = run_program(&program, &["21".into()], TREE_WALK_DISPATCH, 1_000_000).unwrap();
        assert_eq!(out.result, "42");
    }

    #[test]
    fn log_accumulates_and_traces() {
        let out = run(r#"for i in 0, 5 { log("line", i); }"#);
        assert_eq!(out.log.lines().count(), 5);
        assert!(out.trace.iter().any(|op| matches!(op, confbench_types::Op::Log(_))));
    }

    #[test]
    fn io_builtins_emit_trace_ops() {
        let out = run("io_write(1048576); io_read(4096);");
        assert_eq!(out.trace.total_io_bytes(), 1048576 + 4096);
        assert_eq!(out.trace.total_syscalls(), 2);
    }

    #[test]
    fn division_by_zero_is_caught() {
        assert!(matches!(run_err("result(1 / 0);"), ScriptError::Runtime(_)));
    }

    #[test]
    fn index_out_of_range_is_caught() {
        assert!(matches!(run_err("let a = [1]; result(a[5]);"), ScriptError::Runtime(_)));
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let program = parse("while true { }").unwrap();
        let err = run_program(&program, &[], TREE_WALK_DISPATCH, 10_000).unwrap_err();
        assert_eq!(err, ScriptError::StepLimitExceeded(10_000));
    }

    #[test]
    fn trace_scales_with_work() {
        let small = run("let s = 0; for i in 0, 100 { s = s + i; }");
        let large = run("let s = 0; for i in 0, 10000 { s = s + i; }");
        assert!(large.trace.total_cpu_ops() > 50 * small.trace.total_cpu_ops());
        assert!(large.steps > 50 * small.steps);
    }

    #[test]
    fn short_circuit_evaluation() {
        // Division by zero on the right must not execute.
        let out = run("let x = false; result(x && 1 / 0 == 0);");
        assert_eq!(out.result, "false");
        let out = run("result(true || 1 / 0 == 0);");
        assert_eq!(out.result, "true");
    }

    #[test]
    fn wrong_arity_reported() {
        let err = run_err("fn f(a, b) { return a; } result(f(1));");
        assert!(matches!(err, ScriptError::Runtime(m) if m.contains("expects 2")));
    }
}

//! Errors for script processing and launching.

use std::fmt;

/// Errors from lexing, parsing, compiling, or executing CBScript.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptError {
    /// Lexical error.
    Lex {
        /// 1-based source line.
        line: u32,
        /// What went wrong.
        message: String,
    },
    /// Parse error.
    Parse {
        /// 1-based source line.
        line: u32,
        /// What went wrong.
        message: String,
    },
    /// Runtime error (type error, unknown name, index out of range, …).
    Runtime(String),
    /// The script exceeded its step budget (runaway-loop guard).
    StepLimitExceeded(u64),
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::Lex { line, message } => write!(f, "lex error at line {line}: {message}"),
            ScriptError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            ScriptError::Runtime(message) => write!(f, "runtime error: {message}"),
            ScriptError::StepLimitExceeded(limit) => {
                write!(f, "script exceeded step limit of {limit}")
            }
        }
    }
}

impl std::error::Error for ScriptError {}

//! CBScript abstract syntax tree.

use std::rc::Rc;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (numeric addition or string concatenation)
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(Rc<str>),
    /// Boolean literal.
    Bool(bool),
    /// `nil`.
    Nil,
    /// Variable reference.
    Var(String),
    /// `[a, b, c]` array literal.
    Array(Vec<Expr>),
    /// `a[i]` indexing.
    Index(Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Function or builtin call.
    Call(String, Vec<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let name = expr;`
    Let(String, Expr),
    /// `name = expr;`
    Assign(String, Expr),
    /// `a[i] = expr;`
    IndexAssign(String, Expr, Expr),
    /// Bare expression statement.
    Expr(Expr),
    /// `if cond { .. } else { .. }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while cond { .. }`
    While(Expr, Vec<Stmt>),
    /// `for i in a, b { .. }` — iterates `i` over `[a, b)`.
    For(String, Expr, Expr, Vec<Stmt>),
    /// `return expr;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
}

/// A user-defined function.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDecl {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A parsed program: function declarations plus top-level statements.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Declared functions.
    pub functions: Vec<FnDecl>,
    /// Top-level statements, run in order.
    pub body: Vec<Stmt>,
}

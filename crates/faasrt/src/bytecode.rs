//! Bytecode compiler and stack VM — the WebAssembly (Wasmi) and LuaJIT
//! execution paths.
//!
//! CBScript compiles to a compact stack bytecode, mirroring how the paper's
//! Wasm workloads are compiled to WebAssembly and run under the Wasmi
//! interpreter. The same [`StackVm`] doubles as the LuaJIT path: in
//! [`JitMode::Tracing`], hot code (past a back-edge threshold) is "trace
//! compiled" — a one-time compile charge, then a much lower per-instruction
//! dispatch cost — which is exactly the cost structure that makes LuaJIT's
//! heatmap row darker than Lua's in Fig. 6.

use std::collections::HashMap;
use std::rc::Rc;

use confbench_types::OpTrace;

use crate::ast::{BinOp, Expr, Program, Stmt, UnOp};
use crate::builtins::{call_builtin, BuiltinHost, BUILTIN_NAMES};
use crate::error::ScriptError;
use crate::interp::ScriptOutcome;
use crate::value::Value;

/// One bytecode instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Push an integer constant.
    ConstInt(i64),
    /// Push a float constant.
    ConstFloat(f64),
    /// Push a string constant (by pool index).
    ConstStr(u32),
    /// Push a boolean.
    ConstBool(bool),
    /// Push nil.
    ConstNil,
    /// Push local slot.
    LoadLocal(u32),
    /// Pop into local slot.
    StoreLocal(u32),
    /// Push global (by name-pool index).
    LoadGlobal(u32),
    /// Pop into global.
    StoreGlobal(u32),
    /// Pop N items into a new array.
    NewArray(u32),
    /// Pop index, target; push element.
    Index,
    /// Pop value, index, target; store element.
    IndexSet,
    /// Binary operation on the top two stack values.
    Bin(BinOp),
    /// Unary operation.
    Un(UnOp),
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump when falsy.
    JumpIfFalse(u32),
    /// Peek; jump when falsy (for `&&`).
    JumpIfFalsePeek(u32),
    /// Peek; jump when truthy (for `||`).
    JumpIfTruePeek(u32),
    /// Discard the top of stack.
    Pop,
    /// Call user function `fn_index` with `argc` arguments.
    Call(u32, u32),
    /// Call builtin (by name-pool index) with `argc` arguments.
    CallBuiltin(u32, u32),
    /// Return the top of stack.
    Return,
}

/// A compiled function: code plus frame size.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFn {
    /// Function name (diagnostics).
    pub name: String,
    /// Parameter count.
    pub arity: u32,
    /// Local-slot count (including parameters).
    pub locals: u32,
    /// Instructions.
    pub code: Vec<Instr>,
}

/// A compiled module: the top-level body is function 0.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// All functions; index 0 is the synthesized `__main__`.
    pub functions: Vec<CompiledFn>,
    /// String constants.
    pub strings: Vec<Rc<str>>,
    /// Names referenced as globals or builtins.
    pub names: Vec<String>,
}

impl Module {
    /// Total instruction count across all functions (a code-size proxy).
    pub fn code_len(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }
}

/// Compiles a parsed program to bytecode.
///
/// # Errors
///
/// [`ScriptError::Runtime`] for compile-time name errors (e.g. `break`
/// outside a loop).
pub fn compile(program: &Program) -> Result<Module, ScriptError> {
    let mut module = Module { functions: Vec::new(), strings: Vec::new(), names: Vec::new() };
    let fn_ids: HashMap<&str, u32> = program
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), (i + 1) as u32))
        .collect();

    // Function 0: top level.
    let main =
        FnCompiler::new(&fn_ids, &[]).compile_body("__main__", &program.body, &mut module)?;
    module.functions.push(main);
    for decl in &program.functions {
        let f = FnCompiler::new(&fn_ids, &decl.params).compile_body(
            &decl.name,
            &decl.body,
            &mut module,
        )?;
        module.functions.push(f);
    }
    // Fix function order: we appended main first, then declarations; ids in
    // fn_ids assumed main at 0 and declarations from 1, which holds.
    Ok(module)
}

struct FnCompiler<'a> {
    fn_ids: &'a HashMap<&'a str, u32>,
    locals: Vec<String>,
    scope_starts: Vec<usize>,
    code: Vec<Instr>,
    loop_stack: Vec<LoopLabels>,
    max_locals: u32,
}

struct LoopLabels {
    breaks: Vec<usize>,
    continues: Vec<usize>,
}

impl<'a> FnCompiler<'a> {
    fn new(fn_ids: &'a HashMap<&'a str, u32>, params: &[String]) -> Self {
        FnCompiler {
            fn_ids,
            locals: params.to_vec(),
            scope_starts: Vec::new(),
            code: Vec::new(),
            loop_stack: Vec::new(),
            max_locals: params.len() as u32,
        }
    }

    fn compile_body(
        mut self,
        name: &str,
        body: &[Stmt],
        module: &mut Module,
    ) -> Result<CompiledFn, ScriptError> {
        let arity = self.locals.len() as u32;
        for stmt in body {
            self.stmt(stmt, module)?;
        }
        self.code.push(Instr::ConstNil);
        self.code.push(Instr::Return);
        Ok(CompiledFn { name: name.to_owned(), arity, locals: self.max_locals, code: self.code })
    }

    fn intern_str(module: &mut Module, s: &Rc<str>) -> u32 {
        if let Some(i) = module.strings.iter().position(|x| x == s) {
            return i as u32;
        }
        module.strings.push(s.clone());
        (module.strings.len() - 1) as u32
    }

    fn intern_name(module: &mut Module, name: &str) -> u32 {
        if let Some(i) = module.names.iter().position(|x| x == name) {
            return i as u32;
        }
        module.names.push(name.to_owned());
        (module.names.len() - 1) as u32
    }

    fn local_slot(&self, name: &str) -> Option<u32> {
        self.locals.iter().rposition(|n| n == name).map(|i| i as u32)
    }

    fn declare_local(&mut self, name: &str) -> u32 {
        self.locals.push(name.to_owned());
        self.max_locals = self.max_locals.max(self.locals.len() as u32);
        (self.locals.len() - 1) as u32
    }

    fn enter_scope(&mut self) {
        self.scope_starts.push(self.locals.len());
    }

    fn exit_scope(&mut self) {
        let start = self.scope_starts.pop().expect("balanced scopes");
        self.locals.truncate(start);
    }

    fn stmt(&mut self, stmt: &Stmt, module: &mut Module) -> Result<(), ScriptError> {
        match stmt {
            Stmt::Let(name, expr) => {
                self.expr(expr, module)?;
                let slot = self.declare_local(name);
                self.code.push(Instr::StoreLocal(slot));
            }
            Stmt::Assign(name, expr) => {
                self.expr(expr, module)?;
                match self.local_slot(name) {
                    Some(slot) => self.code.push(Instr::StoreLocal(slot)),
                    None => {
                        let idx = Self::intern_name(module, name);
                        self.code.push(Instr::StoreGlobal(idx));
                    }
                }
            }
            Stmt::IndexAssign(name, index, expr) => {
                // Stack order for IndexSet: target, index, value.
                self.load_var(name, module);
                self.expr(index, module)?;
                self.expr(expr, module)?;
                self.code.push(Instr::IndexSet);
            }
            Stmt::Expr(expr) => {
                self.expr(expr, module)?;
                self.code.push(Instr::Pop);
            }
            Stmt::If(cond, then_branch, else_branch) => {
                self.expr(cond, module)?;
                let jump_else = self.emit_placeholder();
                self.block(then_branch, module)?;
                if else_branch.is_empty() {
                    let end = self.code.len() as u32;
                    self.patch(jump_else, Instr::JumpIfFalse(end));
                } else {
                    let jump_end = self.code.len();
                    self.code.push(Instr::Jump(0));
                    let else_start = self.code.len() as u32;
                    self.patch(jump_else, Instr::JumpIfFalse(else_start));
                    self.block(else_branch, module)?;
                    let end = self.code.len() as u32;
                    self.patch(jump_end, Instr::Jump(end));
                }
            }
            Stmt::While(cond, body) => {
                let top = self.code.len() as u32;
                self.expr(cond, module)?;
                let exit = self.emit_placeholder();
                self.loop_stack.push(LoopLabels { breaks: Vec::new(), continues: Vec::new() });
                self.block(body, module)?;
                let labels = self.loop_stack.pop().expect("loop stack");
                for c in labels.continues {
                    self.patch(c, Instr::Jump(top));
                }
                self.code.push(Instr::Jump(top));
                let end = self.code.len() as u32;
                self.patch(exit, Instr::JumpIfFalse(end));
                for b in labels.breaks {
                    self.patch(b, Instr::Jump(end));
                }
            }
            Stmt::For(var, from, to, body) => {
                self.enter_scope();
                self.expr(from, module)?;
                let ivar = self.declare_local(var);
                self.code.push(Instr::StoreLocal(ivar));
                self.expr(to, module)?;
                let limit = self.declare_local("__limit");
                self.code.push(Instr::StoreLocal(limit));
                let top = self.code.len() as u32;
                self.code.push(Instr::LoadLocal(ivar));
                self.code.push(Instr::LoadLocal(limit));
                self.code.push(Instr::Bin(BinOp::Lt));
                let exit = self.emit_placeholder();
                self.loop_stack.push(LoopLabels { breaks: Vec::new(), continues: Vec::new() });
                self.block(body, module)?;
                let labels = self.loop_stack.pop().expect("loop stack");
                let incr = self.code.len() as u32;
                for c in labels.continues {
                    self.patch(c, Instr::Jump(incr));
                }
                self.code.push(Instr::LoadLocal(ivar));
                self.code.push(Instr::ConstInt(1));
                self.code.push(Instr::Bin(BinOp::Add));
                self.code.push(Instr::StoreLocal(ivar));
                self.code.push(Instr::Jump(top));
                let end = self.code.len() as u32;
                self.patch(exit, Instr::JumpIfFalse(end));
                for b in labels.breaks {
                    self.patch(b, Instr::Jump(end));
                }
                self.exit_scope();
            }
            Stmt::Return(expr) => {
                match expr {
                    Some(e) => self.expr(e, module)?,
                    None => self.code.push(Instr::ConstNil),
                }
                self.code.push(Instr::Return);
            }
            Stmt::Break => {
                let at = self.code.len();
                self.code.push(Instr::Jump(0));
                match self.loop_stack.last_mut() {
                    Some(labels) => labels.breaks.push(at),
                    None => return Err(ScriptError::Runtime("break outside loop".into())),
                }
            }
            Stmt::Continue => {
                let at = self.code.len();
                self.code.push(Instr::Jump(0));
                match self.loop_stack.last_mut() {
                    Some(labels) => labels.continues.push(at),
                    None => return Err(ScriptError::Runtime("continue outside loop".into())),
                }
            }
        }
        Ok(())
    }

    fn block(&mut self, stmts: &[Stmt], module: &mut Module) -> Result<(), ScriptError> {
        self.enter_scope();
        for s in stmts {
            self.stmt(s, module)?;
        }
        self.exit_scope();
        Ok(())
    }

    fn emit_placeholder(&mut self) -> usize {
        let at = self.code.len();
        self.code.push(Instr::JumpIfFalse(0));
        at
    }

    fn patch(&mut self, at: usize, instr: Instr) {
        self.code[at] = instr;
    }

    fn load_var(&mut self, name: &str, module: &mut Module) {
        match self.local_slot(name) {
            Some(slot) => self.code.push(Instr::LoadLocal(slot)),
            None => {
                let idx = Self::intern_name(module, name);
                self.code.push(Instr::LoadGlobal(idx));
            }
        }
    }

    fn expr(&mut self, expr: &Expr, module: &mut Module) -> Result<(), ScriptError> {
        match expr {
            Expr::Int(n) => self.code.push(Instr::ConstInt(*n)),
            Expr::Float(x) => self.code.push(Instr::ConstFloat(*x)),
            Expr::Str(s) => {
                let idx = Self::intern_str(module, s);
                self.code.push(Instr::ConstStr(idx));
            }
            Expr::Bool(b) => self.code.push(Instr::ConstBool(*b)),
            Expr::Nil => self.code.push(Instr::ConstNil),
            Expr::Var(name) => self.load_var(name, module),
            Expr::Array(items) => {
                for item in items {
                    self.expr(item, module)?;
                }
                self.code.push(Instr::NewArray(items.len() as u32));
            }
            Expr::Index(target, index) => {
                self.expr(target, module)?;
                self.expr(index, module)?;
                self.code.push(Instr::Index);
            }
            Expr::Unary(op, inner) => {
                self.expr(inner, module)?;
                self.code.push(Instr::Un(*op));
            }
            Expr::Binary(BinOp::And, left, right) => {
                self.expr(left, module)?;
                let short = self.code.len();
                self.code.push(Instr::JumpIfFalsePeek(0));
                self.code.push(Instr::Pop);
                self.expr(right, module)?;
                let end = self.code.len() as u32;
                self.patch(short, Instr::JumpIfFalsePeek(end));
            }
            Expr::Binary(BinOp::Or, left, right) => {
                self.expr(left, module)?;
                let short = self.code.len();
                self.code.push(Instr::JumpIfTruePeek(0));
                self.code.push(Instr::Pop);
                self.expr(right, module)?;
                let end = self.code.len() as u32;
                self.patch(short, Instr::JumpIfTruePeek(end));
            }
            Expr::Binary(op, left, right) => {
                self.expr(left, module)?;
                self.expr(right, module)?;
                self.code.push(Instr::Bin(*op));
            }
            Expr::Call(name, args) => {
                for a in args {
                    self.expr(a, module)?;
                }
                if let Some(&id) = self.fn_ids.get(name.as_str()) {
                    self.code.push(Instr::Call(id, args.len() as u32));
                } else if BUILTIN_NAMES.contains(&name.as_str()) {
                    let idx = Self::intern_name(module, name);
                    self.code.push(Instr::CallBuiltin(idx, args.len() as u32));
                } else {
                    return Err(ScriptError::Runtime(format!("unknown function {name}")));
                }
            }
        }
        Ok(())
    }
}

/// JIT behaviour of the stack VM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JitMode {
    /// Pure interpretation at `dispatch_cost` per instruction (Wasmi-class).
    Interpret {
        /// Abstract CPU ops per bytecode instruction.
        dispatch_cost: u64,
    },
    /// Trace compilation: interpret at `cold_cost` for the first
    /// `threshold` instructions, then charge `compile_cost` once and run at
    /// `hot_cost` (LuaJIT-class).
    Tracing {
        /// Dispatch cost before the threshold.
        cold_cost: u64,
        /// Instructions before trace compilation kicks in.
        threshold: u64,
        /// One-time compile charge (abstract CPU ops).
        compile_cost: u64,
        /// Dispatch cost for compiled code.
        hot_cost: u64,
    },
}

impl JitMode {
    /// The Wasmi-interpreter configuration used for the Wasm language row.
    pub fn wasmi() -> Self {
        JitMode::Interpret { dispatch_cost: 4 }
    }

    /// The LuaJIT configuration used for the LuaJIT language row.
    pub fn luajit() -> Self {
        JitMode::Tracing { cold_cost: 8, threshold: 150_000, compile_cost: 400_000, hot_cost: 2 }
    }
}

/// The stack virtual machine.
#[derive(Debug)]
pub struct StackVm {
    jit: JitMode,
    step_limit: u64,
}

impl StackVm {
    /// Creates a VM with the given JIT mode and instruction budget.
    pub fn new(jit: JitMode, step_limit: u64) -> Self {
        StackVm { jit, step_limit }
    }

    /// Runs a module's `__main__` with `ARGS` bound.
    ///
    /// # Errors
    ///
    /// Runtime errors and [`ScriptError::StepLimitExceeded`].
    pub fn run(&self, module: &Module, args: &[String]) -> Result<ScriptOutcome, ScriptError> {
        let mut state = VmState {
            module,
            globals: HashMap::new(),
            trace: OpTrace::new(),
            result: String::new(),
            log: String::new(),
            steps: 0,
            step_limit: self.step_limit,
            jit: self.jit,
            compiled: false,
            call_depth: 0,
            cpu_pending: 0,
            float_pending: 0,
            mem_pending: 0,
            log_pending: 0,
        };
        state.globals.insert(
            "ARGS".to_owned(),
            Value::array(args.iter().map(|s| Value::Str(Rc::from(s.as_str()))).collect()),
        );
        state.call_function(0, Vec::new())?;
        state.flush();
        Ok(ScriptOutcome {
            result: state.result,
            log: state.log,
            trace: state.trace,
            steps: state.steps,
        })
    }
}

/// Maximum bytecode call depth (mirrors the interpreter's guard).
const MAX_CALL_DEPTH: u32 = 150;

struct VmState<'m> {
    module: &'m Module,
    globals: HashMap<String, Value>,
    trace: OpTrace,
    result: String,
    log: String,
    steps: u64,
    step_limit: u64,
    jit: JitMode,
    compiled: bool,
    call_depth: u32,
    cpu_pending: u64,
    float_pending: u64,
    mem_pending: u64,
    log_pending: u64,
}

const FLUSH_EVERY: u64 = 1 << 16;

impl VmState<'_> {
    fn flush(&mut self) {
        if self.cpu_pending > 0 {
            self.trace.cpu(self.cpu_pending);
            self.cpu_pending = 0;
        }
        if self.float_pending > 0 {
            self.trace.float(self.float_pending);
            self.float_pending = 0;
        }
        if self.mem_pending > 0 {
            self.trace.mem_read(self.mem_pending);
            self.mem_pending = 0;
        }
        if self.log_pending > 0 {
            self.trace.log(self.log_pending);
            self.log_pending = 0;
        }
    }

    fn charge_dispatch(&mut self) {
        let cost = match self.jit {
            JitMode::Interpret { dispatch_cost } => dispatch_cost,
            JitMode::Tracing { cold_cost, threshold, compile_cost, hot_cost } => {
                if self.steps == threshold && !self.compiled {
                    self.compiled = true;
                    self.cpu_pending += compile_cost;
                }
                if self.compiled {
                    hot_cost
                } else {
                    cold_cost
                }
            }
        };
        self.cpu_pending += cost;
        if self.cpu_pending >= FLUSH_EVERY {
            self.flush();
        }
    }

    fn call_function(&mut self, fn_index: u32, args: Vec<Value>) -> Result<Value, ScriptError> {
        self.call_depth += 1;
        if self.call_depth > MAX_CALL_DEPTH {
            self.call_depth -= 1;
            return Err(ScriptError::Runtime(format!("call depth exceeded ({MAX_CALL_DEPTH})")));
        }
        let result = self.call_function_inner(fn_index, args);
        self.call_depth -= 1;
        result
    }

    fn call_function_inner(
        &mut self,
        fn_index: u32,
        args: Vec<Value>,
    ) -> Result<Value, ScriptError> {
        let f = &self.module.functions[fn_index as usize];
        if args.len() as u32 != f.arity {
            return Err(ScriptError::Runtime(format!(
                "{} expects {} arguments, got {}",
                f.name,
                f.arity,
                args.len()
            )));
        }
        let mut locals = vec![Value::Nil; f.locals as usize];
        locals[..args.len()].clone_from_slice(&args);
        self.mem_pending += 16 * f.locals as u64;
        let mut stack: Vec<Value> = Vec::with_capacity(16);
        let mut pc = 0usize;

        while pc < f.code.len() {
            self.steps += 1;
            if self.steps > self.step_limit {
                return Err(ScriptError::StepLimitExceeded(self.step_limit));
            }
            self.charge_dispatch();
            match &f.code[pc] {
                Instr::ConstInt(n) => stack.push(Value::Int(*n)),
                Instr::ConstFloat(x) => stack.push(Value::Float(*x)),
                Instr::ConstStr(i) => {
                    stack.push(Value::Str(self.module.strings[*i as usize].clone()))
                }
                Instr::ConstBool(b) => stack.push(Value::Bool(*b)),
                Instr::ConstNil => stack.push(Value::Nil),
                Instr::LoadLocal(slot) => stack.push(locals[*slot as usize].clone()),
                Instr::StoreLocal(slot) => {
                    let v = pop(&mut stack)?;
                    locals[*slot as usize] = v;
                }
                Instr::LoadGlobal(i) => {
                    let name = &self.module.names[*i as usize];
                    let v =
                        self.globals.get(name).cloned().ok_or_else(|| {
                            ScriptError::Runtime(format!("unknown variable {name}"))
                        })?;
                    stack.push(v);
                }
                Instr::StoreGlobal(i) => {
                    let v = pop(&mut stack)?;
                    let name = self.module.names[*i as usize].clone();
                    self.globals.insert(name, v);
                }
                Instr::NewArray(n) => {
                    let at = stack.len() - *n as usize;
                    let items: Vec<Value> = stack.split_off(at);
                    self.trace.alloc(16 * (*n).max(1) as u64);
                    self.mem_pending += 16 * *n as u64;
                    stack.push(Value::array(items));
                }
                Instr::Index => {
                    let index = pop(&mut stack)?;
                    let target = pop(&mut stack)?;
                    self.mem_pending += 24;
                    stack.push(index_value(&target, &index)?);
                }
                Instr::IndexSet => {
                    let value = pop(&mut stack)?;
                    let index = pop(&mut stack)?;
                    let target = pop(&mut stack)?;
                    self.mem_pending += 24;
                    index_set(&target, &index, value)?;
                }
                Instr::Bin(op) => {
                    let r = pop(&mut stack)?;
                    let l = pop(&mut stack)?;
                    stack.push(self.binary(*op, l, r)?);
                }
                Instr::Un(op) => {
                    let v = pop(&mut stack)?;
                    let out = match (op, v) {
                        (UnOp::Neg, Value::Int(n)) => Value::Int(-n),
                        (UnOp::Neg, Value::Float(x)) => {
                            self.float_pending += 1;
                            Value::Float(-x)
                        }
                        (UnOp::Not, v) => Value::Bool(!v.is_truthy()),
                        (UnOp::Neg, v) => {
                            return Err(ScriptError::Runtime(format!(
                                "cannot negate {}",
                                v.type_name()
                            )))
                        }
                    };
                    stack.push(out);
                }
                Instr::Jump(t) => {
                    pc = *t as usize;
                    continue;
                }
                Instr::JumpIfFalse(t) => {
                    let v = pop(&mut stack)?;
                    if !v.is_truthy() {
                        pc = *t as usize;
                        continue;
                    }
                }
                Instr::JumpIfFalsePeek(t) => {
                    let falsy = !stack.last().map(Value::is_truthy).unwrap_or(false);
                    if falsy {
                        pc = *t as usize;
                        continue;
                    }
                }
                Instr::JumpIfTruePeek(t) => {
                    let truthy = stack.last().map(Value::is_truthy).unwrap_or(false);
                    if truthy {
                        pc = *t as usize;
                        continue;
                    }
                }
                Instr::Pop => {
                    pop(&mut stack)?;
                }
                Instr::Call(id, argc) => {
                    let at = stack.len() - *argc as usize;
                    let args: Vec<Value> = stack.split_off(at);
                    self.mem_pending += 32;
                    let ret = self.call_function(*id, args)?;
                    stack.push(ret);
                }
                Instr::CallBuiltin(i, argc) => {
                    let at = stack.len() - *argc as usize;
                    let args: Vec<Value> = stack.split_off(at);
                    let name = self.module.names[*i as usize].clone();
                    let ret = call_builtin(self, &name, args)?;
                    stack.push(ret);
                }
                Instr::Return => return pop(&mut stack),
            }
            pc += 1;
        }
        Ok(Value::Nil)
    }

    fn binary(&mut self, op: BinOp, l: Value, r: Value) -> Result<Value, ScriptError> {
        use BinOp::*;
        use Value::*;
        match op {
            Add => match (l, r) {
                (Int(a), Int(b)) => Ok(Int(a.wrapping_add(b))),
                (Str(a), b) => {
                    let s = format!("{a}{b}");
                    self.trace.alloc(s.len() as u64);
                    self.mem_pending += s.len() as u64;
                    Ok(Str(s.into()))
                }
                (a, Str(b)) => {
                    let s = format!("{a}{b}");
                    self.trace.alloc(s.len() as u64);
                    self.mem_pending += s.len() as u64;
                    Ok(Str(s.into()))
                }
                (a, b) => self.float_bin(a, b, |x, y| x + y, "+"),
            },
            Sub => match (l, r) {
                (Int(a), Int(b)) => Ok(Int(a.wrapping_sub(b))),
                (a, b) => self.float_bin(a, b, |x, y| x - y, "-"),
            },
            Mul => match (l, r) {
                (Int(a), Int(b)) => Ok(Int(a.wrapping_mul(b))),
                (a, b) => self.float_bin(a, b, |x, y| x * y, "*"),
            },
            Div => match (l, r) {
                (Int(a), Int(b)) => {
                    if b == 0 {
                        Err(ScriptError::Runtime("integer division by zero".into()))
                    } else {
                        Ok(Int(a / b))
                    }
                }
                (a, b) => self.float_bin(a, b, |x, y| x / y, "/"),
            },
            Rem => match (l, r) {
                (Int(a), Int(b)) => {
                    if b == 0 {
                        Err(ScriptError::Runtime("integer modulo by zero".into()))
                    } else {
                        Ok(Int(a % b))
                    }
                }
                (a, b) => self.float_bin(a, b, |x, y| x % y, "%"),
            },
            Eq => Ok(Bool(l == r)),
            Ne => Ok(Bool(l != r)),
            Lt | Le | Gt | Ge => {
                let ord = match (&l, &r) {
                    (Int(a), Int(b)) => a.partial_cmp(b),
                    (Str(a), Str(b)) => a.partial_cmp(b),
                    (a, b) => match (a.as_f64(), b.as_f64()) {
                        (Some(x), Some(y)) => x.partial_cmp(&y),
                        _ => None,
                    },
                };
                let ord = ord.ok_or_else(|| {
                    ScriptError::Runtime(format!(
                        "cannot compare {} and {}",
                        l.type_name(),
                        r.type_name()
                    ))
                })?;
                Ok(Bool(match op {
                    Lt => ord.is_lt(),
                    Le => ord.is_le(),
                    Gt => ord.is_gt(),
                    _ => ord.is_ge(),
                }))
            }
            And | Or => Err(ScriptError::Runtime("unlowered logical operator".into())),
        }
    }

    fn float_bin(
        &mut self,
        l: Value,
        r: Value,
        f: impl Fn(f64, f64) -> f64,
        op: &str,
    ) -> Result<Value, ScriptError> {
        match (l.as_f64(), r.as_f64()) {
            (Some(x), Some(y)) => {
                self.float_pending += 1;
                Ok(Value::Float(f(x, y)))
            }
            _ => Err(ScriptError::Runtime(format!(
                "cannot apply {op} to {} and {}",
                l.type_name(),
                r.type_name()
            ))),
        }
    }
}

impl BuiltinHost for VmState<'_> {
    fn trace_mut(&mut self) -> &mut OpTrace {
        &mut self.trace
    }

    fn flush_pending(&mut self) {
        self.flush();
    }

    fn add_mem(&mut self, bytes: u64) {
        self.mem_pending += bytes;
    }

    fn add_float(&mut self, ops: u64) {
        self.float_pending += ops;
    }

    fn add_log(&mut self, text: &str) {
        self.log.push_str(text);
        self.log.push('\n');
        self.log_pending += text.len() as u64 + 1;
        if self.log_pending >= FLUSH_EVERY {
            self.flush();
        }
    }

    fn set_result(&mut self, value: String) {
        self.result = value;
    }
}

fn pop(stack: &mut Vec<Value>) -> Result<Value, ScriptError> {
    stack.pop().ok_or_else(|| ScriptError::Runtime("stack underflow".into()))
}

fn index_value(target: &Value, index: &Value) -> Result<Value, ScriptError> {
    let i = match index {
        Value::Int(n) if *n >= 0 => *n as usize,
        other => {
            return Err(ScriptError::Runtime(format!("bad index {other}")));
        }
    };
    match target {
        Value::Array(items) => {
            let items = items.borrow();
            items.get(i).cloned().ok_or_else(|| {
                ScriptError::Runtime(format!("index {i} out of range (len {})", items.len()))
            })
        }
        Value::Str(s) => s
            .as_bytes()
            .get(i)
            .map(|&b| Value::Int(b as i64))
            .ok_or_else(|| ScriptError::Runtime(format!("string index {i} out of range"))),
        other => Err(ScriptError::Runtime(format!("cannot index {}", other.type_name()))),
    }
}

fn index_set(target: &Value, index: &Value, value: Value) -> Result<(), ScriptError> {
    let i = match index {
        Value::Int(n) if *n >= 0 => *n as usize,
        other => return Err(ScriptError::Runtime(format!("bad index {other}"))),
    };
    match target {
        Value::Array(items) => {
            let mut items = items.borrow_mut();
            let len = items.len();
            match items.get_mut(i) {
                Some(slot) => {
                    *slot = value;
                    Ok(())
                }
                None => Err(ScriptError::Runtime(format!("index {i} out of range (len {len})"))),
            }
        }
        other => {
            Err(ScriptError::Runtime(format!("cannot index {} for assignment", other.type_name())))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_program, TREE_WALK_DISPATCH};
    use crate::parser::parse;

    fn run_vm(src: &str, jit: JitMode) -> ScriptOutcome {
        let program = parse(src).unwrap();
        let module = compile(&program).unwrap();
        StackVm::new(jit, 200_000_000).run(&module, &[]).unwrap()
    }

    fn run_both(src: &str) -> (String, String) {
        let program = parse(src).unwrap();
        let interp = run_program(&program, &[], TREE_WALK_DISPATCH, 200_000_000).unwrap();
        let vm = run_vm(src, JitMode::wasmi());
        (interp.result, vm.result)
    }

    #[test]
    fn vm_matches_interpreter_on_core_programs() {
        for src in [
            "result(2 + 3 * 4);",
            "fn fib(n) { if n < 2 { return n; } return fib(n-1) + fib(n-2); } result(fib(14));",
            "let s = 0; for i in 0, 1000 { if i % 3 == 0 { s = s + i; } } result(s);",
            "let a = array_new(50, 1); for i in 1, 50 { a[i] = a[i-1] * 2 % 997; } result(a[49]);",
            r#"let s = ""; for i in 0, 5 { s = s + str(i); } result(s);"#,
            "let x = 5; let y = x > 3 && x < 10; result(y);",
            "let s = 0; let i = 0; while true { i = i + 1; if i > 10 { break; } if i % 2 == 0 { continue; } s = s + i; } result(s);",
            "result(floor(sqrt(144.0)));",
        ] {
            let (i, v) = run_both(src);
            assert_eq!(i, v, "divergence on {src}");
        }
    }

    #[test]
    fn vm_respects_args() {
        let program = parse("result(int(ARGS[0]) + int(ARGS[1]));").unwrap();
        let module = compile(&program).unwrap();
        let out = StackVm::new(JitMode::wasmi(), 1_000_000)
            .run(&module, &["20".into(), "22".into()])
            .unwrap();
        assert_eq!(out.result, "42");
    }

    #[test]
    fn wasmi_dispatch_is_cheaper_than_tree_walking() {
        let src = "let s = 0; for i in 0, 20000 { s = s + i; } result(s);";
        let program = parse(src).unwrap();
        let interp = run_program(&program, &[], TREE_WALK_DISPATCH, 100_000_000).unwrap();
        let vm = run_vm(src, JitMode::wasmi());
        assert_eq!(interp.result, vm.result);
        assert!(
            vm.trace.total_cpu_ops() < interp.trace.total_cpu_ops(),
            "vm {} vs interp {}",
            vm.trace.total_cpu_ops(),
            interp.trace.total_cpu_ops()
        );
    }

    #[test]
    fn luajit_beats_wasmi_on_hot_loops() {
        let src = "let s = 0; for i in 0, 300000 { s = s + i; } result(s);";
        let jit = run_vm(src, JitMode::luajit());
        let wasmi = run_vm(src, JitMode::wasmi());
        assert_eq!(jit.result, wasmi.result);
        assert!(
            jit.trace.total_cpu_ops() * 3 < wasmi.trace.total_cpu_ops() * 2,
            "jit {} vs wasmi {}",
            jit.trace.total_cpu_ops(),
            wasmi.trace.total_cpu_ops()
        );
    }

    #[test]
    fn luajit_pays_warmup_on_short_programs() {
        let src = "result(1 + 1);";
        let jit = run_vm(src, JitMode::luajit());
        let wasmi = run_vm(src, JitMode::wasmi());
        // Too short to compile: cold cost (8) > wasmi cost (4).
        assert!(jit.trace.total_cpu_ops() > wasmi.trace.total_cpu_ops());
    }

    #[test]
    fn break_outside_loop_is_compile_error() {
        let program = parse("break;").unwrap();
        assert!(compile(&program).is_err());
    }

    #[test]
    fn unknown_function_is_compile_error() {
        let program = parse("bogus(1);").unwrap();
        assert!(compile(&program).is_err());
    }

    #[test]
    fn step_limit_enforced() {
        let program = parse("while true { }").unwrap();
        let module = compile(&program).unwrap();
        let err = StackVm::new(JitMode::wasmi(), 1_000).run(&module, &[]).unwrap_err();
        assert!(matches!(err, ScriptError::StepLimitExceeded(_)));
    }

    #[test]
    fn nested_loops_with_breaks() {
        let src = "
            let hits = 0;
            for i in 0, 10 {
                for j in 0, 10 {
                    if j == 5 { break; }
                    hits = hits + 1;
                }
            }
            result(hits);";
        let (i, v) = run_both(src);
        assert_eq!(i, "50");
        assert_eq!(v, "50");
    }

    #[test]
    fn io_builtins_reach_trace_through_vm() {
        let out = run_vm("io_write(65536); log(\"done\");", JitMode::wasmi());
        assert_eq!(out.trace.total_io_bytes(), 65536);
        assert_eq!(out.log, "done\n");
    }

    #[test]
    fn module_code_len_reports_size() {
        let program = parse("fn f() { return 1; } result(f());").unwrap();
        let module = compile(&program).unwrap();
        assert!(module.code_len() > 4);
        assert_eq!(module.functions.len(), 2);
    }
}

//! Sample summaries and percentiles.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
///
/// Percentiles use the *inclusive* linear-interpolation convention
/// (`rank = p/100 · (n−1)`, interpolating between the bracketing order
/// statistics) — numpy's default `method="linear"` — matching how the
/// paper's stacked-percentile plots are built.
///
/// # Example
///
/// ```
/// use confbench_stats::Summary;
///
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
/// assert_eq!(s.median(), 3.0);
/// assert_eq!(s.percentile(25.0), 2.0);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n = 1).
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    sorted: Vec<f64>,
}

impl Summary {
    /// Summarizes `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains non-finite values.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize an empty sample");
        assert!(samples.iter().all(|x| x.is_finite()), "samples must be finite");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Summary { n, mean, stddev: var.sqrt(), min: sorted[0], max: sorted[n - 1], sorted }
    }

    /// The `p`-th percentile, `0 <= p <= 100`, with inclusive linear
    /// interpolation (numpy's default).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.n == 1 {
            return self.sorted[0];
        }
        let rank = p / 100.0 * (self.n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// The 50th percentile.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Interquartile range (p75 − p25).
    pub fn iqr(&self) -> f64 {
        self.percentile(75.0) - self.percentile(25.0)
    }

    /// Relative spread: stddev / mean (0 when the mean is 0).
    pub fn rel_spread(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }

    /// The five values of the paper's stacked-percentile representation:
    /// min, p25, median, p95, max (Fig. 3's grays).
    pub fn stacked_five(&self) -> [f64; 5] {
        [self.min, self.percentile(25.0), self.median(), self.percentile(95.0), self.max]
    }
}

/// Geometric mean of strictly-positive values.
///
/// # Panics
///
/// Panics if `values` is empty or any value is non-positive.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of nothing");
    assert!(values.iter().all(|&v| v > 0.0), "geometric mean needs positive values");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - 2.138089935299395).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let s = Summary::from_samples(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(s.percentile(0.0), 10.0);
        assert_eq!(s.percentile(100.0), 40.0);
        assert!((s.median() - 25.0).abs() < 1e-12);
        assert!((s.percentile(75.0) - 32.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_pin_numpy_inclusive_linear() {
        // Values produced by numpy's default percentile method
        // (`np.percentile(x, p)`, method="linear", the inclusive
        // rank = p/100·(n−1) convention). The "exclusive" convention would
        // give different answers — e.g. p25 of [15, 20, 35, 40, 50] is
        // 17.5 exclusive but 20.0 inclusive.
        let s = Summary::from_samples(&[15.0, 20.0, 35.0, 40.0, 50.0]);
        assert!((s.percentile(25.0) - 20.0).abs() < 1e-12);
        assert!((s.percentile(40.0) - 29.0).abs() < 1e-12);
        assert!((s.percentile(50.0) - 35.0).abs() < 1e-12);
        assert!((s.percentile(90.0) - 46.0).abs() < 1e-12);
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.percentile(25.0) - 1.75).abs() < 1e-12);
        assert!((s.percentile(75.0) - 3.25).abs() < 1e-12);
    }

    #[test]
    fn single_sample_degenerates_gracefully() {
        let s = Summary::from_samples(&[7.0]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.percentile(95.0), 7.0);
        assert_eq!(s.iqr(), 0.0);
    }

    #[test]
    fn stacked_five_is_monotone() {
        let samples: Vec<f64> = (1..=100).map(|i| (i as f64).sqrt()).collect();
        let five = Summary::from_samples(&samples).stacked_five();
        for pair in five.windows(2) {
            assert!(pair[0] <= pair[1], "{five:?}");
        }
    }

    #[test]
    fn unsorted_input_is_fine() {
        let s = Summary::from_samples(&[5.0, 1.0, 3.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median(), 3.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_panics() {
        Summary::from_samples(&[]);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_panics() {
        Summary::from_samples(&[1.0, f64::NAN]);
    }

    #[test]
    fn geometric_mean_known() {
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rel_spread_is_cv() {
        let s = Summary::from_samples(&[9.0, 10.0, 11.0]);
        assert!((s.rel_spread() - 0.1).abs() < 1e-12);
    }
}

//! ASCII renderers for the paper's figure styles: ratio heatmaps (Figs. 6
//! and 7), box-and-whiskers (Fig. 8), stacked percentiles (Fig. 3), and
//! aligned tables.

use crate::summary::Summary;

/// Renders an aligned text table.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn table(headers: &[String], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| {
        let parts: Vec<String> =
            cells.iter().zip(widths).map(|(c, w)| format!("{c:<w$}", w = w)).collect();
        format!("| {} |\n", parts.join(" | "))
    };
    out.push_str(&render_row(headers, &widths));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// Shade for a secure/normal ratio, mirroring the paper's blue-to-red
/// palette: darker = better (closer to or below 1).
fn ratio_shade(ratio: f64) -> char {
    match ratio {
        r if r < 0.995 => '#', // faster in the TEE (the counter-intuitive cells)
        r if r < 1.05 => '@',
        r if r < 1.15 => '+',
        r if r < 1.5 => '-',
        r if r < 3.0 => '.',
        _ => ' ', // the light/red cells
    }
}

/// Renders a ratio heatmap: one row per `row_labels`, one column per
/// `col_labels`, `values` row-major. Each cell shows the ratio to two
/// decimals plus a shade glyph.
///
/// # Panics
///
/// Panics if `values.len() != rows * cols`.
pub fn heatmap(row_labels: &[String], col_labels: &[String], values: &[f64]) -> String {
    assert_eq!(values.len(), row_labels.len() * col_labels.len(), "heatmap shape mismatch");
    let row_w = row_labels.iter().map(|l| l.len()).max().unwrap_or(0).max(8);
    let col_w = col_labels.iter().map(|l| l.len()).max().unwrap_or(0).max(7);
    let mut out = String::new();
    out.push_str(&format!("{:row_w$} ", ""));
    for c in col_labels {
        out.push_str(&format!("{c:>col_w$} "));
    }
    out.push('\n');
    for (r, label) in row_labels.iter().enumerate() {
        out.push_str(&format!("{label:<row_w$} "));
        for c in 0..col_labels.len() {
            let v = values[r * col_labels.len() + c];
            let cell = format!("{:.2}{}", v, ratio_shade(v));
            out.push_str(&format!("{cell:>col_w$} "));
        }
        out.push('\n');
    }
    out.push_str("\nshade: # <1.00  @ ~1.00  + <1.15  - <1.5  . <3  (blank) >=3\n");
    out
}

/// Renders horizontal box-and-whiskers (min, p25, median, p75, max) for
/// each labelled summary, on a shared linear scale of `width` characters.
///
/// # Panics
///
/// Panics if `entries` is empty or `width < 20`.
pub fn boxplot(entries: &[(String, Summary)], width: usize) -> String {
    assert!(!entries.is_empty(), "no boxplot entries");
    assert!(width >= 20, "boxplot needs at least 20 columns");
    let lo = entries.iter().map(|(_, s)| s.min).fold(f64::INFINITY, f64::min);
    let hi = entries.iter().map(|(_, s)| s.max).fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    let label_w = entries.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let pos = |x: f64| (((x - lo) / span) * (width - 1) as f64).round() as usize;

    let mut out = String::new();
    for (label, s) in entries {
        let mut lane = vec![' '; width];
        let (p_min, p25, p50, p75, p_max) = (
            pos(s.min),
            pos(s.percentile(25.0)),
            pos(s.median()),
            pos(s.percentile(75.0)),
            pos(s.max),
        );
        for cell in lane.iter_mut().take(p25).skip(p_min) {
            *cell = '-';
        }
        for cell in lane.iter_mut().take(p75 + 1).skip(p25) {
            *cell = '=';
        }
        for cell in lane.iter_mut().take(p_max + 1).skip(p75 + 1) {
            *cell = '-';
        }
        lane[p_min] = '|';
        lane[p_max] = '|';
        lane[p50] = 'O';
        let lane: String = lane.into_iter().collect();
        out.push_str(&format!("{label:<label_w$} [{lane}]\n"));
    }
    out.push_str(&format!(
        "{:label_w$}  {:<.4} .. {:<.4}  (|-min  ==iqr  O median  max-|)\n",
        "", lo, hi
    ));
    out
}

/// Renders the paper's Fig. 3 representation: stacked percentiles
/// (min / p25 / median / p95 / max) per labelled sample, as a table.
pub fn stacked_percentiles(entries: &[(String, Summary)]) -> String {
    let headers: Vec<String> =
        ["series", "min", "p25", "median", "p95", "max"].iter().map(|s| s.to_string()).collect();
    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|(label, s)| {
            let five = s.stacked_five();
            let mut row = vec![label.clone()];
            row.extend(five.iter().map(|v| format!("{v:.3}")));
            row
        })
        .collect();
    table(&headers, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name".into(), "value".into()],
            &[vec!["a".into(), "1".into()], vec!["longer".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()), "{t}");
        assert!(t.contains("| longer | 22    |"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_table_panics() {
        table(&["a".into()], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn heatmap_contains_values_and_legend() {
        let h = heatmap(
            &["python".into(), "go".into()],
            &["cpustress".into(), "iostress".into()],
            &[1.31, 2.05, 0.98, 1.42],
        );
        assert!(h.contains("1.31"));
        assert!(h.contains("0.98#"), "sub-1.0 cells get the dark shade: {h}");
        assert!(h.contains("2.05."));
        assert!(h.contains("shade:"));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn heatmap_shape_checked() {
        heatmap(&["a".into()], &["b".into()], &[1.0, 2.0]);
    }

    #[test]
    fn boxplot_marks_median_and_extremes() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0, 10.0]);
        let plot = boxplot(&[("run".into(), s)], 40);
        let lane = plot.lines().next().unwrap();
        assert_eq!(lane.matches('|').count(), 2);
        assert_eq!(lane.matches('O').count(), 1);
        assert!(lane.contains('='));
    }

    #[test]
    fn boxplot_shares_scale_across_entries() {
        let small = Summary::from_samples(&[1.0, 2.0]);
        let large = Summary::from_samples(&[9.0, 10.0]);
        let plot = boxplot(&[("small".into(), small), ("large".into(), large)], 50);
        let lines: Vec<&str> = plot.lines().collect();
        // Small sits left, large sits right.
        let small_first = lines[0].find('|').unwrap();
        let large_first = lines[1].find('|').unwrap();
        assert!(small_first < large_first, "{plot}");
    }

    #[test]
    fn stacked_percentiles_table_has_five_columns() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0]);
        let t = stacked_percentiles(&[("tdx/secure".into(), s)]);
        assert!(t.contains("median"));
        assert!(t.contains("tdx/secure"));
        assert!(t.contains("2.000"));
    }
}

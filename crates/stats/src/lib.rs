//! Statistics and figure rendering for ConfBench results.
//!
//! Provides [`Summary`] (means, percentiles, the paper's stacked-percentile
//! five-tuple) and ASCII renderers for each figure style the paper uses:
//! [`heatmap`] for Figs. 6/7, [`boxplot`] for Fig. 8,
//! [`stacked_percentiles`] for Fig. 3, and [`table`] for everything
//! tabular.
//!
//! # Example
//!
//! ```
//! use confbench_stats::{boxplot, Summary};
//!
//! let secure = Summary::from_samples(&[10.2, 11.0, 10.8, 12.1]);
//! let normal = Summary::from_samples(&[9.1, 9.3, 9.0, 9.4]);
//! let plot = boxplot(&[("secure".into(), secure), ("normal".into(), normal)], 60);
//! assert!(plot.contains('O')); // medians marked
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod render;
mod summary;

pub use render::{boxplot, heatmap, stacked_percentiles, table};
pub use summary::{geometric_mean, Summary};

//! Property tests on summary statistics and renderers.

use confbench_stats::{boxplot, geometric_mean, heatmap, Summary};
use proptest::prelude::*;

fn arb_samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.001f64..1e6, 1..200)
}

proptest! {
    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentiles_monotone(samples in arb_samples(),
                            mut ps in proptest::collection::vec(0.0f64..=100.0, 2..8)) {
        let s = Summary::from_samples(&samples);
        ps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let values: Vec<f64> = ps.iter().map(|&p| s.percentile(p)).collect();
        for pair in values.windows(2) {
            prop_assert!(pair[0] <= pair[1] + 1e-9);
        }
        prop_assert!(s.percentile(0.0) >= s.min - 1e-9);
        prop_assert!(s.percentile(100.0) <= s.max + 1e-9);
    }

    /// The mean sits inside [min, max]; stddev is non-negative.
    #[test]
    fn moments_bounded(samples in arb_samples()) {
        let s = Summary::from_samples(&samples);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.stddev >= 0.0);
        prop_assert_eq!(s.n, samples.len());
    }

    /// AM–GM inequality.
    #[test]
    fn geometric_le_arithmetic(samples in proptest::collection::vec(0.001f64..1e4, 1..50)) {
        let arith = samples.iter().sum::<f64>() / samples.len() as f64;
        let geo = geometric_mean(&samples);
        prop_assert!(geo <= arith * (1.0 + 1e-9), "gm {} > am {}", geo, arith);
    }

    /// The stacked five-tuple is sorted.
    #[test]
    fn stacked_five_sorted(samples in arb_samples()) {
        let five = Summary::from_samples(&samples).stacked_five();
        for pair in five.windows(2) {
            prop_assert!(pair[0] <= pair[1] + 1e-9);
        }
    }

    /// Renderers never panic and include every label.
    #[test]
    fn renderers_total(rows in proptest::collection::vec("[a-z]{1,8}", 1..5),
                       cols in proptest::collection::vec("[a-z]{1,8}", 1..5),
                       seed_vals in proptest::collection::vec(0.01f64..20.0, 1..25)) {
        let needed = rows.len() * cols.len();
        let values: Vec<f64> =
            (0..needed).map(|i| seed_vals[i % seed_vals.len()]).collect();
        let out = heatmap(&rows, &cols, &values);
        for r in &rows {
            prop_assert!(out.contains(r.as_str()));
        }

        let entries: Vec<(String, Summary)> = rows
            .iter()
            .map(|r| (r.clone(), Summary::from_samples(&values)))
            .collect();
        let plot = boxplot(&entries, 40);
        prop_assert_eq!(plot.lines().count(), rows.len() + 1);
    }
}

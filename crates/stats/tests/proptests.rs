//! Property tests on summary statistics and renderers.
//!
//! Deterministic seeded sweeps: each property draws its inputs from a
//! `SplitMix64` stream, so every CI run exercises the identical case set.

use confbench_crypto::SplitMix64;
use confbench_stats::{boxplot, geometric_mean, heatmap, Summary};

const CASES: u64 = 96;

fn samples_in(rng: &mut SplitMix64, lo: f64, hi: f64, max_len: u64) -> Vec<f64> {
    let n = 1 + rng.next_below(max_len) as usize;
    (0..n).map(|_| lo + rng.next_f64() * (hi - lo)).collect()
}

/// Percentiles are monotone in p and bounded by min/max.
#[test]
fn percentiles_monotone() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x57A7_0001 ^ case);
        let samples = samples_in(&mut rng, 0.001, 1e6, 199);
        let s = Summary::from_samples(&samples);
        let mut ps: Vec<f64> = (0..2 + rng.next_below(6)).map(|_| rng.next_f64() * 100.0).collect();
        ps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let values: Vec<f64> = ps.iter().map(|&p| s.percentile(p)).collect();
        for pair in values.windows(2) {
            assert!(pair[0] <= pair[1] + 1e-9, "case {case}: {pair:?}");
        }
        assert!(s.percentile(0.0) >= s.min - 1e-9);
        assert!(s.percentile(100.0) <= s.max + 1e-9);
    }
}

/// The mean sits inside [min, max]; stddev is non-negative.
#[test]
fn moments_bounded() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x57A7_0002 ^ case);
        let samples = samples_in(&mut rng, 0.001, 1e6, 199);
        let s = Summary::from_samples(&samples);
        assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9, "case {case}");
        assert!(s.stddev >= 0.0);
        assert_eq!(s.n, samples.len());
    }
}

/// AM–GM inequality.
#[test]
fn geometric_le_arithmetic() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x57A7_0003 ^ case);
        let samples = samples_in(&mut rng, 0.001, 1e4, 49);
        let arith = samples.iter().sum::<f64>() / samples.len() as f64;
        let geo = geometric_mean(&samples);
        assert!(geo <= arith * (1.0 + 1e-9), "case {case}: gm {geo} > am {arith}");
    }
}

/// The stacked five-tuple is sorted.
#[test]
fn stacked_five_sorted() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x57A7_0004 ^ case);
        let samples = samples_in(&mut rng, 0.001, 1e6, 199);
        let five = Summary::from_samples(&samples).stacked_five();
        for pair in five.windows(2) {
            assert!(pair[0] <= pair[1] + 1e-9, "case {case}: {five:?}");
        }
    }
}

/// Renderers never panic and include every label.
#[test]
fn renderers_total() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x57A7_0005 ^ case);
        let label = |rng: &mut SplitMix64| -> String {
            let len = 1 + rng.next_below(8);
            (0..len).map(|_| (b'a' + rng.next_below(26) as u8) as char).collect()
        };
        let rows: Vec<String> = (0..1 + rng.next_below(4)).map(|_| label(&mut rng)).collect();
        let cols: Vec<String> = (0..1 + rng.next_below(4)).map(|_| label(&mut rng)).collect();
        let seed_vals = samples_in(&mut rng, 0.01, 20.0, 24);

        let needed = rows.len() * cols.len();
        let values: Vec<f64> = (0..needed).map(|i| seed_vals[i % seed_vals.len()]).collect();
        let out = heatmap(&rows, &cols, &values);
        for r in &rows {
            assert!(out.contains(r.as_str()), "case {case}: missing row {r}");
        }

        let entries: Vec<(String, Summary)> =
            rows.iter().map(|r| (r.clone(), Summary::from_samples(&values))).collect();
        let plot = boxplot(&entries, 40);
        assert_eq!(plot.lines().count(), rows.len() + 1, "case {case}");
    }
}

//! Shared REST-surface plumbing for the gateway and host agents.
//!
//! Canonical routes live under the `/v1` prefix. The original unversioned
//! paths remain as deprecated aliases: same handler, same body, plus a
//! `Deprecation: true` header and a `Link: </v1/...>; rel="successor-version"`
//! pointer so clients can discover the replacement mechanically.

use std::collections::HashMap;
use std::sync::Arc;

use confbench_httpd::{Method, Request, Response, Router};

/// The current REST API version prefix.
pub const API_PREFIX: &str = "/v1";

/// Registers `handler` at both `/v1<path>` (canonical) and `<path>` (legacy
/// alias). The alias serves the identical response with deprecation headers
/// attached; the `Link` successor points at the canonical route template
/// (params unsubstituted).
pub(crate) fn add_versioned<F>(router: &mut Router, method: Method, path: &str, handler: F)
where
    F: Fn(&Request, &HashMap<String, String>) -> Response + Send + Sync + 'static,
{
    let handler = Arc::new(handler);
    let canonical = Arc::clone(&handler);
    router.add(method, &format!("{API_PREFIX}{path}"), move |req, params| canonical(req, params));
    let successor = format!("<{API_PREFIX}{path}>; rel=\"successor-version\"");
    router.add(method, path, move |req, params| {
        let mut response = handler(req, params);
        response.headers.insert("deprecation".into(), "true".into());
        response.headers.insert("link".into(), successor.clone());
        response
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router() -> Router {
        let mut r = Router::new();
        add_versioned(&mut r, Method::Get, "/widgets/:name", |_, params| {
            Response::text(params["name"].clone())
        });
        r
    }

    #[test]
    fn canonical_path_serves_clean_response() {
        let resp = router().dispatch(&Request::new(Method::Get, "/v1/widgets/spanner"));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"spanner");
        assert!(!resp.headers.contains_key("deprecation"));
    }

    #[test]
    fn legacy_alias_carries_deprecation_headers() {
        let resp = router().dispatch(&Request::new(Method::Get, "/widgets/spanner"));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"spanner", "alias serves the identical body");
        assert_eq!(resp.headers.get("deprecation").map(String::as_str), Some("true"));
        assert_eq!(
            resp.headers.get("link").map(String::as_str),
            Some("</v1/widgets/:name>; rel=\"successor-version\""),
        );
    }
}

//! **ConfBench** — a tool for easy evaluation of confidential virtual
//! machines (Rust reproduction of the DSN 2025 paper).
//!
//! ConfBench executes FaaS and classic workloads across heterogeneous TEE
//! platforms (Intel TDX, AMD SEV-SNP, ARM CCA) and their non-confidential
//! baselines, managing the full lifecycle: function upload, dispatch to
//! TEE-enabled hosts, execution through per-language launchers inside
//! secure or normal VMs, and collection of timing plus perf counters.
//!
//! Architecture (paper Fig. 2):
//!
//! * [`Gateway`] — REST entry point; owns the [`FunctionStore`] and the
//!   per-platform [`TeePool`]s, dispatching to in-process or remote hosts;
//! * [`HostAgent`] — a TEE-enabled host with one secure and one normal VM,
//!   executing requests under the perf monitor;
//! * [`ConfBench`] — a batteries-included facade that boots local hosts for
//!   all three platforms, used by the examples and the figure harness.
//!
//! In this reproduction the confidential VMs are deterministic simulations
//! (see `confbench-vmm` and DESIGN.md): all timing is virtual and
//! seed-reproducible, while every architectural layer of the real tool —
//! REST gateway, pools, launchers, attestation, perf piggybacking — runs
//! for real.
//!
//! # Example
//!
//! ```
//! use confbench::ConfBench;
//! use confbench_types::{Language, TeePlatform};
//!
//! let bench = ConfBench::local(7);
//! let m = bench.measure_ratio("factors", Language::Go, TeePlatform::Tdx, 3)?;
//! assert!(m.ratio > 0.5 && m.ratio < 2.0, "factors is CPU-bound: {}", m.ratio);
//! # Ok::<(), confbench_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attest_api;
mod gateway;
mod host;
mod pool;
mod rest;
mod store;
mod supervisor;

pub use attest_api::{
    AttestConfig, AttestService, AttestSessionInfo, AttestSessionRequest, ExtendRequest,
};
pub use gateway::{Gateway, GatewayBuilder, RetryPolicy, UploadRequest};
pub use host::{HostAgent, HostConfig, GPU_INFERENCE};
pub use pool::{
    BalancePolicy, CircuitState, Clock, HealthPolicy, ManualClock, PoolGuard, SystemClock, TeePool,
};
pub use rest::API_PREFIX;
pub use store::{FunctionStore, StoreError, StoredFunction, UploadedFunction, MAX_SCRIPT_BYTES};
pub use supervisor::{VmSupervisor, DEFAULT_REBUILD_BUDGET};

// Chaos-engineering surface, re-exported so gateway embedders (and the
// `confbench-gateway` binary) can build fault plans without a direct
// `confbench-vmm` dependency.
pub use confbench_vmm::{TeeFault, TeeFaultPlan};

use confbench_types::{
    FunctionSpec, Language, Result, RunRequest, RunResult, TeePlatform, VmTarget,
};

/// A secure/normal measurement pair with its ratio (the paper's standard
/// reporting unit).
#[derive(Debug, Clone)]
pub struct RatioMeasurement {
    /// Result from the confidential VM.
    pub secure: RunResult,
    /// Result from the baseline VM.
    pub normal: RunResult,
    /// `secure.mean_ms / normal.mean_ms`.
    pub ratio: f64,
}

/// Batteries-included ConfBench instance: a gateway with one local host per
/// TEE platform, deterministic under `seed`.
pub struct ConfBench {
    gateway: Gateway,
    seed: u64,
}

impl ConfBench {
    /// Boots local hosts for all three platforms.
    pub fn local(seed: u64) -> Self {
        let gateway = Gateway::builder()
            .seed(seed)
            .local_host(TeePlatform::Tdx)
            .local_host(TeePlatform::SevSnp)
            .local_host(TeePlatform::Cca)
            .build();
        ConfBench { gateway, seed }
    }

    /// The underlying gateway.
    pub fn gateway(&self) -> &Gateway {
        &self.gateway
    }

    /// Runs one request.
    ///
    /// # Errors
    ///
    /// As [`Gateway::run`].
    pub fn run(&self, request: &RunRequest) -> Result<RunResult> {
        self.gateway.run(request)
    }

    /// Runs `function` (with its default or given args) in `language` on
    /// both VM kinds of `platform` for `trials` trials each, returning the
    /// mean-time ratio.
    ///
    /// # Errors
    ///
    /// As [`Gateway::run`].
    pub fn measure_ratio(
        &self,
        function: &str,
        language: Language,
        platform: TeePlatform,
        trials: u32,
    ) -> Result<RatioMeasurement> {
        let args = confbench_workloads::find_workload(function)
            .map(|w| w.default_args())
            .unwrap_or_default();
        self.measure_ratio_with_args(function, &args, language, platform, trials)
    }

    /// As [`ConfBench::measure_ratio`] with explicit arguments.
    ///
    /// # Errors
    ///
    /// As [`Gateway::run`].
    pub fn measure_ratio_with_args(
        &self,
        function: &str,
        args: &[String],
        language: Language,
        platform: TeePlatform,
        trials: u32,
    ) -> Result<RatioMeasurement> {
        let mut spec = FunctionSpec::new(function, language);
        spec.args = args.to_vec();
        let request = RunRequest {
            function: spec,
            target: VmTarget::secure(platform),
            trials,
            seed: self.seed,
            deadline_ms: None,
            attest_session: None,
            device: None,
        };
        let (secure, normal) = self.gateway.run_pair(request, platform)?;
        let ratio = secure.stats.mean_ms / normal.stats.mean_ms;
        Ok(RatioMeasurement { secure, normal, ratio })
    }

    /// Runs the `gpu-inference` workload on both VM kinds of `platform`
    /// with the TEE-IO GPU attached (full TDISP bring-up on the secure
    /// side), returning the mean-time ratio. The headline TEE-IO result:
    /// with attested direct DMA the ratio stays near 1.0 even though the
    /// traffic is accelerator DMA, not emulated I/O.
    ///
    /// # Errors
    ///
    /// As [`Gateway::run`].
    pub fn measure_gpu_ratio(
        &self,
        platform: TeePlatform,
        trials: u32,
    ) -> Result<RatioMeasurement> {
        let request = RunRequest {
            function: FunctionSpec::new("gpu-inference", Language::Go),
            target: VmTarget::secure(platform),
            trials,
            seed: self.seed,
            deadline_ms: None,
            attest_session: None,
            device: Some(confbench_types::DeviceKind::Gpu),
        };
        let (secure, normal) = self.gateway.run_pair(request, platform)?;
        let ratio = secure.stats.mean_ms / normal.stats.mean_ms;
        Ok(RatioMeasurement { secure, normal, ratio })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_instance_serves_all_platforms() {
        let bench = ConfBench::local(1);
        assert_eq!(
            bench.gateway().platforms(),
            vec![TeePlatform::Tdx, TeePlatform::SevSnp, TeePlatform::Cca]
        );
    }

    #[test]
    fn ratio_measurement_shapes() {
        let bench = ConfBench::local(2);
        // I/O-bound on TDX: clearly above 1.
        let io = bench
            .measure_ratio_with_args("iostress", &["4".into()], Language::Go, TeePlatform::Tdx, 4)
            .unwrap();
        assert!(io.ratio > 1.2, "tdx iostress {}", io.ratio);
        assert_eq!(io.secure.output, io.normal.output);
        // CPU-bound on TDX: near 1.
        let cpu = bench
            .measure_ratio_with_args(
                "checksum",
                &["30000".into()],
                Language::Go,
                TeePlatform::Tdx,
                4,
            )
            .unwrap();
        assert!(cpu.ratio < 1.15, "tdx checksum {}", cpu.ratio);
    }

    #[test]
    fn unknown_workload_without_args_fails_cleanly() {
        let bench = ConfBench::local(1);
        let err =
            bench.measure_ratio("does-not-exist", Language::Go, TeePlatform::Tdx, 1).unwrap_err();
        assert!(matches!(err, confbench_types::Error::UnknownFunction(_)));
    }
}

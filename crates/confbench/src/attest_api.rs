//! The gateway's attestation-session service: the `/v1/attest` resource
//! and the machinery behind [`RunRequest::attest_session`].
//!
//! One [`AttestService`] owns the platform verification stacks
//! ([`TdxEcosystem`], [`SnpEcosystem`]), a per-platform probe VM standing
//! in for the fleet's launch + runtime identity, the gateway-wide
//! [`SessionCache`] (verified-session tokens, single-flight), and the
//! [`CollateralRefresher`] that keeps TDX collateral warm so steady-state
//! verification never blocks on the PCS.
//!
//! Every verification and refresh is recorded as an `attest.verify` /
//! `attest.refresh` span (last few retained, see
//! [`AttestService::recent_spans`]) and counted in the `attest_*` metrics
//! family.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use confbench_attest::{
    extend_runtime, quote_runtime, AttestError, AttestSession, CollateralRefresher, DeviceVerifier,
    Evidence, SessionCache, SessionConfig, SessionOutcome, SessionSource, SnpEcosystem,
    TdxEcosystem, Verifier,
};
use confbench_obs::{Counter, MetricsRegistry, SpanRecorder};
use confbench_types::{Clock, Error, Result, RunRequest, TeePlatform, TraceSpan, VmKind, VmTarget};
use confbench_vmm::{MeasurementReport, TeeVmBuilder, Vm};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Environment variable overriding the default session TTL (milliseconds).
pub const ATTEST_TTL_ENV: &str = "CONFBENCH_ATTEST_TTL_MS";
/// Environment variable overriding the default session-cache capacity.
pub const ATTEST_CAPACITY_ENV: &str = "CONFBENCH_ATTEST_CACHE_CAPACITY";

/// Spans retained by [`AttestService::recent_spans`].
const SPAN_RING: usize = 16;

/// Tuning for the gateway's attestation-session layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttestConfig {
    /// Session lifetime in milliseconds (default 5 minutes).
    pub ttl_ms: u64,
    /// Maximum retained sessions (default 1024).
    pub capacity: usize,
}

impl Default for AttestConfig {
    fn default() -> Self {
        AttestConfig { ttl_ms: 300_000, capacity: 1024 }
    }
}

impl AttestConfig {
    /// Defaults overridden by `CONFBENCH_ATTEST_TTL_MS` /
    /// `CONFBENCH_ATTEST_CACHE_CAPACITY` (same pattern as the
    /// `CONFBENCH_CHAOS_*` family): unparsable or missing values keep the
    /// built-in defaults.
    pub fn from_env() -> Self {
        let mut config = AttestConfig::default();
        if let Some(ttl) = std::env::var(ATTEST_TTL_ENV).ok().and_then(|v| v.parse().ok()) {
            config.ttl_ms = ttl;
        }
        if let Some(cap) = std::env::var(ATTEST_CAPACITY_ENV).ok().and_then(|v| v.parse().ok()) {
            config.capacity = cap;
        }
        config
    }
}

/// Body of `POST /v1/attest/sessions`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttestSessionRequest {
    /// Platform to attest (`tdx` or `sev-snp`; CCA has no attestation
    /// stack, paper §IV-C).
    pub platform: TeePlatform,
    /// Optional caller-chosen freshness nonce; the gateway picks one when
    /// absent.
    #[serde(default)]
    pub nonce: Option<u64>,
}

/// Body of `POST /v1/attest/sessions/{id}/extend`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtendRequest {
    /// Runtime measurement register to extend (0..8).
    pub index: usize,
    /// Data measured into the register.
    pub data: String,
}

/// REST representation of an attestation session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttestSessionInfo {
    /// Session id (the resource name).
    pub id: String,
    /// Verified platform.
    pub platform: TeePlatform,
    /// Session state (`live`, `expired`, `revoked`, `extended`,
    /// `tcb-stale`).
    pub state: String,
    /// Verified launch measurement (lowercase hex).
    pub measurement: String,
    /// Verified TCB level.
    pub tcb_level: u64,
    /// Folded e-vTPM runtime-measurement digest (lowercase hex; all zeros
    /// when the evidence carried no runtime snapshot).
    pub runtime_digest: String,
    /// Issuance time on the gateway clock (ms).
    pub created_ms: u64,
    /// Expiry time on the gateway clock (ms).
    pub expires_ms: u64,
    /// How this response was satisfied (`cache-hit`, `verified`,
    /// `single-flight`); only set by session-creating calls.
    #[serde(default)]
    pub source: Option<String>,
    /// Verification latency charged to this call (ms); only set by
    /// session-creating calls.
    #[serde(default)]
    pub latency_ms: Option<f64>,
    /// Portion of `latency_ms` spent on PCS round trips (0 proves the hot
    /// path never touched the network); only set by session-creating calls.
    #[serde(default)]
    pub network_ms: Option<f64>,
}

impl AttestSessionInfo {
    /// Renders a cache snapshot (status reads).
    pub fn from_session(session: &AttestSession) -> Self {
        AttestSessionInfo {
            id: session.id.clone(),
            platform: session.identity.platform,
            state: session.state.as_str().to_owned(),
            measurement: session.identity.measurement.to_string(),
            tcb_level: session.identity.tcb_level,
            runtime_digest: session.identity.runtime_digest.to_string(),
            created_ms: session.created_ms,
            expires_ms: session.expires_ms,
            source: None,
            latency_ms: None,
            network_ms: None,
        }
    }

    /// Renders a verification outcome (session-creating calls).
    pub fn from_outcome(outcome: &SessionOutcome) -> Self {
        let mut info = Self::from_session(&outcome.session);
        info.source = Some(outcome.source.as_str().to_owned());
        info.latency_ms = Some(outcome.timing.latency_ms);
        info.network_ms = Some(outcome.timing.network_ms);
        info
    }
}

/// The gateway's attestation-session layer. See the module docs.
pub struct AttestService {
    seed: u64,
    cache: Arc<SessionCache>,
    tdx: Arc<TdxEcosystem>,
    snp: Arc<SnpEcosystem>,
    refresher: CollateralRefresher,
    /// One long-lived probe VM per platform: the fleet's shared launch +
    /// runtime identity (every pool member boots the same image, so one
    /// probe's evidence stands for all of them).
    probes: Mutex<HashMap<TeePlatform, Vm>>,
    recorder: SpanRecorder,
    spans: Mutex<VecDeque<TraceSpan>>,
    nonce: AtomicU64,
    devio_attests: Option<Arc<Counter>>,
}

impl AttestService {
    /// Builds the service: fresh ecosystems seeded with `seed`, a session
    /// cache on `clock` per `config`, and a collateral refresher on half
    /// the session TTL (refresh-ahead: collateral is always younger than
    /// the sessions it backs). Metrics land in `registry` when given.
    pub fn new(
        seed: u64,
        config: AttestConfig,
        clock: Arc<dyn Clock>,
        registry: Option<&Arc<MetricsRegistry>>,
    ) -> Self {
        let session_config = SessionConfig {
            ttl_ms: config.ttl_ms,
            capacity: config.capacity,
            ..SessionConfig::default()
        };
        let mut cache = SessionCache::new(Arc::clone(&clock), session_config);
        let tdx = Arc::new(TdxEcosystem::new(seed));
        let interval = (config.ttl_ms / 2).max(1);
        if let Some(registry) = registry {
            cache = cache.with_metrics(registry);
        }
        let cache = Arc::new(cache);
        let mut refresher = CollateralRefresher::new(
            Arc::clone(&tdx),
            Arc::clone(&cache),
            Arc::clone(&clock),
            interval,
        );
        if let Some(registry) = registry {
            refresher = refresher.with_metrics(registry);
        }
        AttestService {
            seed,
            cache,
            tdx,
            snp: Arc::new(SnpEcosystem::new(seed)),
            refresher,
            probes: Mutex::new(HashMap::new()),
            recorder: SpanRecorder::new(clock),
            spans: Mutex::new(VecDeque::new()),
            nonce: AtomicU64::new(seed.wrapping_mul(2) | 1),
            devio_attests: registry.map(|r| r.counter("devio_attest_total")),
        }
    }

    /// The session cache (tests and diagnostics).
    pub fn cache(&self) -> &Arc<SessionCache> {
        &self.cache
    }

    /// The TDX verification stack (PCS counters live here).
    pub fn tdx(&self) -> &Arc<TdxEcosystem> {
        &self.tdx
    }

    /// The background collateral refresher.
    pub fn refresher(&self) -> &CollateralRefresher {
        &self.refresher
    }

    /// The most recent `attest.verify` / `attest.refresh` spans (newest
    /// last, bounded ring).
    pub fn recent_spans(&self) -> Vec<TraceSpan> {
        self.spans.lock().iter().cloned().collect()
    }

    fn push_span(&self, span: TraceSpan) {
        let mut ring = self.spans.lock();
        if ring.len() >= SPAN_RING {
            ring.pop_front();
        }
        ring.push_back(span);
    }

    fn next_nonce(&self) -> u64 {
        self.nonce.fetch_add(1, Ordering::Relaxed)
    }

    /// Generates evidence for `platform` from its probe VM: hardware quote
    /// or report, plus the e-vTPM runtime snapshot.
    fn evidence_for(&self, platform: TeePlatform, nonce: u64) -> Result<(Evidence, [u8; 64])> {
        let report_data = TdxEcosystem::report_data_for_nonce(nonce);
        let mut probes = self.probes.lock();
        let vm = probes.entry(platform).or_insert_with(|| {
            TeeVmBuilder::new(VmTarget::secure(platform)).seed(self.seed).build()
        });
        let body = match platform {
            TeePlatform::Tdx => {
                let (quote, _) = self.tdx.generate_quote(vm, report_data).map_err(attest_error)?;
                Evidence::tdx(quote)
            }
            TeePlatform::SevSnp => {
                let (report, _) = self.snp.request_report(vm, report_data).map_err(attest_error)?;
                Evidence::snp(report)
            }
            TeePlatform::Cca => {
                return Err(Error::InvalidRequest(
                    "cca has no attestation stack (paper §IV-C); use tdx or sev-snp".into(),
                ))
            }
        };
        let (runtime, _) = quote_runtime(vm).map_err(attest_error)?;
        Ok((body.with_runtime(runtime), report_data))
    }

    fn verifier_for(&self, platform: TeePlatform) -> Result<&dyn Verifier> {
        match platform {
            TeePlatform::Tdx => Ok(self.tdx.as_ref()),
            TeePlatform::SevSnp => Ok(self.snp.as_ref()),
            TeePlatform::Cca => Err(Error::InvalidRequest(
                "cca has no attestation stack (paper §IV-C); use tdx or sev-snp".into(),
            )),
        }
    }

    /// Verifies `platform` through the session cache: a live session for
    /// the fleet's current TCB identity short-circuits; otherwise this call
    /// leads (or joins) a full verification and mints a session token.
    ///
    /// Opportunistically ticks the collateral refresher first, so
    /// steady-state traffic keeps collateral warm without a timer thread.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidRequest`] for CCA; [`Error::Attestation`] when
    /// verification fails.
    pub fn open_session(
        &self,
        platform: TeePlatform,
        nonce: Option<u64>,
    ) -> Result<SessionOutcome> {
        if platform == TeePlatform::Tdx {
            self.tick_refresh();
        }
        let verifier = self.verifier_for(platform)?;
        let nonce = nonce.unwrap_or_else(|| self.next_nonce());
        let (evidence, report_data) = self.evidence_for(platform, nonce)?;
        let mut span = self.recorder.root("attest.verify");
        let outcome = self.cache.verify_or_join(verifier, &evidence, report_data);
        match &outcome {
            Ok(outcome) => {
                span.set_attr("cached", u64::from(outcome.source == SessionSource::CacheHit));
                span.set_attr(
                    "single_flight",
                    u64::from(outcome.source == SessionSource::SingleFlight),
                );
                span.set_attr("network_us", (outcome.timing.network_ms * 1_000.0) as u64);
            }
            Err(_) => span.set_attr("failed", 1),
        }
        self.push_span(span.finish());
        outcome.map_err(attest_error)
    }

    /// Reads a session (None = unknown id).
    pub fn session(&self, id: &str) -> Option<AttestSession> {
        self.cache.get(id)
    }

    /// Revokes a session (None = unknown id). The next dispatch presenting
    /// it re-verifies.
    pub fn revoke(&self, id: &str) -> Option<AttestSession> {
        self.cache.revoke(id)
    }

    /// Extends runtime measurement register `index` of the session's
    /// platform with `data`: the e-vTPM of the platform's probe VM is
    /// extended and the session invalidated (its visible runtime digest
    /// updated to the new bank). Returns `Ok(None)` for an unknown id.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidRequest`] on an out-of-range register index.
    pub fn extend(&self, id: &str, index: usize, data: &[u8]) -> Result<Option<AttestSession>> {
        if index >= confbench_vmm::EVTPM_PCRS {
            return Err(Error::InvalidRequest(format!(
                "e-vTPM register {index} out of range (0..{})",
                confbench_vmm::EVTPM_PCRS
            )));
        }
        let Some(session) = self.cache.get(id) else { return Ok(None) };
        let platform = session.identity.platform;
        let new_digest = {
            let mut probes = self.probes.lock();
            let vm = probes.entry(platform).or_insert_with(|| {
                TeeVmBuilder::new(VmTarget::secure(platform)).seed(self.seed).build()
            });
            extend_runtime(vm, index, data).map_err(attest_error)?;
            quote_runtime(vm).map_err(attest_error)?.0.digest()
        };
        Ok(self.cache.mark_extended(id, new_digest))
    }

    /// The dispatch gate behind [`RunRequest::attest_session`]: a live
    /// session skips verification (one cache lookup); a dead one
    /// re-verifies through the cache; an unknown id is rejected.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidRequest`] for unknown ids, normal-VM targets, and
    /// platform mismatches; verification errors as
    /// [`AttestService::open_session`].
    pub fn ensure_session(&self, id: &str, target: VmTarget) -> Result<SessionOutcome> {
        let Some(session) = self.cache.get(id) else {
            return Err(Error::InvalidRequest(format!("unknown attest session {id:?}")));
        };
        if target.kind != VmKind::Secure {
            return Err(Error::InvalidRequest(
                "attest_session applies to secure targets only".into(),
            ));
        }
        if session.identity.platform != target.platform {
            return Err(Error::InvalidRequest(format!(
                "attest session {id:?} covers {}, request targets {}",
                session.identity.platform, target.platform
            )));
        }
        if let Some(outcome) = self.cache.hit(id) {
            return Ok(outcome);
        }
        // Expired / revoked / extended / TCB-stale: full re-verification of
        // the fleet's *current* identity, minting a fresh session.
        self.open_session(target.platform, None)
    }

    /// Re-attests `platform` through the session cache (the supervisors'
    /// rebuild path): pool members share the probe's TCB identity, so a
    /// rebuild storm re-verifies once and every other slot reuses the live
    /// session.
    ///
    /// # Errors
    ///
    /// As [`AttestService::open_session`].
    pub fn reattest(&self, platform: TeePlatform) -> Result<SessionOutcome> {
        self.open_session(platform, None)
    }

    /// Verifies a TDISP device measurement report through the session
    /// cache: the whole fleet's accelerators carry one firmware identity,
    /// so one verification (or one single-flighted leader) mints a session
    /// every later VM bring-up rides until the TTL expires. Works for all
    /// three platforms — device evidence is SPDM-signed by the vendor key,
    /// not by the host's quoting enclave, so even CCA hosts (which have no
    /// platform attestation stack) verify their accelerators.
    ///
    /// Recorded as a `devio.attest` span and counted in
    /// `devio_attest_total`; cache behaviour (hits, single-flight joins)
    /// lands in the shared `attest_sessions_*` metrics family.
    ///
    /// # Errors
    ///
    /// [`Error::Attestation`] when the report fails policy (forged
    /// signature, stale firmware SVN, wrong digests, nonce mismatch).
    pub fn open_device_session(
        &self,
        platform: TeePlatform,
        report: MeasurementReport,
        nonce: [u8; 32],
    ) -> Result<SessionOutcome> {
        let verifier = DeviceVerifier::new(platform);
        let evidence = Evidence::device(platform, report);
        let mut report_data = [0u8; 64];
        report_data[..32].copy_from_slice(&nonce);
        let mut span = self.recorder.root("devio.attest");
        let outcome = self.cache.verify_or_join(&verifier, &evidence, report_data);
        match &outcome {
            Ok(outcome) => {
                span.set_attr("cached", u64::from(outcome.source == SessionSource::CacheHit));
                span.set_attr(
                    "single_flight",
                    u64::from(outcome.source == SessionSource::SingleFlight),
                );
            }
            Err(_) => span.set_attr("failed", 1),
        }
        self.push_span(span.finish());
        if let Some(counter) = &self.devio_attests {
            counter.inc();
        }
        outcome.map_err(attest_error)
    }

    /// Runs the collateral refresher if its interval has elapsed, recording
    /// an `attest.refresh` span when it fires. Cheap when not due (an
    /// atomic load) — called opportunistically from the verification path
    /// and from the gateway binary's timer loop.
    pub fn tick_refresh(&self) {
        let Some(result) = self.refresher.tick() else { return };
        let mut span = self.recorder.root("attest.refresh");
        match result {
            Ok((required_tcb, net_ms)) => {
                span.set_attr("required_tcb", required_tcb);
                span.set_attr("network_us", (net_ms * 1_000.0) as u64);
            }
            Err(_) => span.set_attr("failed", 1),
        }
        self.push_span(span.finish());
    }
}

/// Maps attestation failures onto the REST error table: misuse
/// ([`AttestError::Unsupported`], normal-VM evidence) is the caller's
/// fault (400), everything else is a verification failure (500).
fn attest_error(e: AttestError) -> Error {
    match e {
        AttestError::Unsupported | AttestError::WrongVmKind => {
            Error::InvalidRequest(format!("attestation unavailable: {e}"))
        }
        other => Error::Attestation(other.to_string()),
    }
}

/// Routes a [`RunRequest`]'s optional attestation gate: no-op without a
/// token, otherwise [`AttestService::ensure_session`].
///
/// # Errors
///
/// As [`AttestService::ensure_session`].
pub(crate) fn gate_request(
    service: &AttestService,
    request: &RunRequest,
) -> Result<Option<SessionOutcome>> {
    match &request.attest_session {
        None => Ok(None),
        Some(id) => service.ensure_session(id, request.target).map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_types::ManualClock;

    fn service(clock: &Arc<ManualClock>) -> AttestService {
        AttestService::new(
            7,
            AttestConfig { ttl_ms: 10_000, capacity: 64 },
            Arc::clone(clock) as Arc<dyn Clock>,
            None,
        )
    }

    #[test]
    fn open_session_verifies_then_hits() {
        let clock = Arc::new(ManualClock::new());
        let svc = service(&clock);
        let cold = svc.open_session(TeePlatform::Tdx, None).unwrap();
        assert_eq!(cold.source, SessionSource::Verified);
        let warm = svc.open_session(TeePlatform::Tdx, None).unwrap();
        assert_eq!(warm.source, SessionSource::CacheHit);
        assert_eq!(warm.session.id, cold.session.id);
        assert_eq!(warm.timing.network_ms, 0.0);
        // Both calls recorded verify spans; the cold one may be preceded by
        // an attest.refresh from the opportunistic tick.
        let spans = svc.recent_spans();
        assert!(spans.iter().any(|s| s.name == "attest.verify"));
        assert!(spans.iter().any(|s| s.name == "attest.refresh"));
    }

    #[test]
    fn snp_sessions_are_local_and_separate_from_tdx() {
        let clock = Arc::new(ManualClock::new());
        let svc = service(&clock);
        let snp = svc.open_session(TeePlatform::SevSnp, None).unwrap();
        assert_eq!(snp.timing.network_ms, 0.0, "VCEK flow is all-local");
        let tdx = svc.open_session(TeePlatform::Tdx, None).unwrap();
        assert_ne!(snp.session.id, tdx.session.id);
        assert_eq!(svc.tdx().pcs().requests(), 3, "only the TDX session fetched collateral");
    }

    #[test]
    fn cca_sessions_rejected_as_invalid() {
        let clock = Arc::new(ManualClock::new());
        let svc = service(&clock);
        let err = svc.open_session(TeePlatform::Cca, None).unwrap_err();
        assert!(matches!(err, Error::InvalidRequest(_)), "got {err}");
        assert_eq!(err.rest_status(), 400);
    }

    #[test]
    fn ensure_session_gates_dispatch() {
        let clock = Arc::new(ManualClock::new());
        let svc = service(&clock);
        let opened = svc.open_session(TeePlatform::SevSnp, None).unwrap();
        let id = opened.session.id;

        // Live: cheap skip.
        let ok = svc.ensure_session(&id, VmTarget::secure(TeePlatform::SevSnp)).unwrap();
        assert_eq!(ok.source, SessionSource::CacheHit);

        // Wrong platform and normal targets: rejected.
        let err = svc.ensure_session(&id, VmTarget::secure(TeePlatform::Tdx)).unwrap_err();
        assert!(matches!(err, Error::InvalidRequest(_)), "got {err}");
        let err = svc.ensure_session(&id, VmTarget::normal(TeePlatform::SevSnp)).unwrap_err();
        assert!(matches!(err, Error::InvalidRequest(_)), "got {err}");

        // Unknown id: rejected.
        let err = svc.ensure_session("as-none", VmTarget::secure(TeePlatform::SevSnp)).unwrap_err();
        assert!(matches!(err, Error::InvalidRequest(_)), "got {err}");

        // Expired: re-verifies and mints a new session.
        clock.advance(10_000);
        let renewed = svc.ensure_session(&id, VmTarget::secure(TeePlatform::SevSnp)).unwrap();
        assert_eq!(renewed.source, SessionSource::Verified);
        assert_ne!(renewed.session.id, id);
    }

    #[test]
    fn extend_invalidates_and_reverification_tracks_new_bank() {
        let clock = Arc::new(ManualClock::new());
        let svc = service(&clock);
        let first = svc.open_session(TeePlatform::Tdx, None).unwrap();
        let extended = svc.extend(&first.session.id, 2, b"hotfix-layer").unwrap().unwrap();
        assert_eq!(extended.state.as_str(), "extended");
        assert!(svc.extend("as-none", 0, b"x").unwrap().is_none(), "unknown id is None");

        let second = svc.open_session(TeePlatform::Tdx, None).unwrap();
        assert_eq!(second.source, SessionSource::Verified, "new bank, new identity");
        assert_eq!(
            second.session.identity.runtime_digest, extended.identity.runtime_digest,
            "re-verified identity matches the digest the extend advertised"
        );
        let err = svc.extend(&second.session.id, 99, b"x").unwrap_err();
        assert_eq!(err.rest_status(), 400, "bad register index is the caller's fault: {err}");
    }

    #[test]
    fn device_sessions_amortize_across_bringups() {
        let clock = Arc::new(ManualClock::new());
        let registry = Arc::new(MetricsRegistry::new());
        let svc = AttestService::new(
            7,
            AttestConfig { ttl_ms: 10_000, capacity: 64 },
            Arc::clone(&clock) as Arc<dyn Clock>,
            Some(&registry),
        );
        let mut gpu = confbench_vmm::GpuDevice::new();
        gpu.lock().unwrap();

        // CCA host on purpose: the platform has no attestation stack, but
        // its accelerator is still verifiable (vendor-signed SPDM report).
        let nonce = [5u8; 32];
        let report = gpu.measurement_report(nonce).unwrap();
        let cold = svc.open_device_session(TeePlatform::Cca, report, nonce).unwrap();
        assert_eq!(cold.source, SessionSource::Verified);

        // A second bring-up with a fresh nonce maps to the same firmware
        // identity: one cache lookup, no re-verification.
        let nonce = [6u8; 32];
        let report = gpu.measurement_report(nonce).unwrap();
        let warm = svc.open_device_session(TeePlatform::Cca, report, nonce).unwrap();
        assert_eq!(warm.source, SessionSource::CacheHit);
        assert_eq!(warm.session.id, cold.session.id);

        assert_eq!(registry.counter_value("devio_attest_total"), Some(2));
        assert!(svc.recent_spans().iter().any(|s| s.name == "devio.attest"));
    }

    #[test]
    fn config_env_parsing() {
        // Serial-safe: unique var values, restored after.
        std::env::set_var(ATTEST_TTL_ENV, "1234");
        std::env::set_var(ATTEST_CAPACITY_ENV, "77");
        let config = AttestConfig::from_env();
        std::env::remove_var(ATTEST_TTL_ENV);
        std::env::remove_var(ATTEST_CAPACITY_ENV);
        assert_eq!(config, AttestConfig { ttl_ms: 1234, capacity: 77 });
        assert_eq!(AttestConfig::from_env(), AttestConfig::default());
    }
}

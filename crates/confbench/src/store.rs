//! The gateway's function database (paper §III-C: "the gateway maintains a
//! database of available functions per supported language").
//!
//! The store starts with the 25 built-in suite workloads and accepts user
//! uploads as CBScript source. Uploaded functions run on every language
//! path: the engine languages execute the script directly, and the emulated
//! managed runtimes derive the function's *logical* behaviour by
//! interpreting the script at dispatch cost 1 (pure semantics), then
//! applying the runtime profile.

use std::collections::HashMap;

use confbench_faasrt::{parse, run_program, FaasFunction};
use confbench_types::{Error, OpTrace};
use confbench_workloads::{faas_registry, FaasWorkload};
use parking_lot::RwLock;

/// Upper bound on an uploaded script's size. Scripts in the paper's suite
/// are a few hundred bytes; 256 KiB leaves three orders of magnitude of
/// headroom while keeping a hostile upload from parking megabytes in the
/// store (the HTTP layer's 16 MiB body cap alone would allow that).
pub const MAX_SCRIPT_BYTES: usize = 256 * 1024;

/// A user-uploaded function: named CBScript source.
#[derive(Debug, Clone)]
pub struct UploadedFunction {
    name: String,
    script: String,
}

/// Step budget for uploaded scripts (tighter than the built-in suite's).
const UPLOAD_STEP_LIMIT: u64 = 100_000_000;

impl FaasFunction for UploadedFunction {
    fn name(&self) -> &str {
        &self.name
    }

    fn script(&self) -> &str {
        &self.script
    }

    fn run_native(&self, args: &[String], trace: &mut OpTrace) -> Result<String, String> {
        // Dispatch cost 1 = the function's pure semantics, which the
        // managed-runtime profiles then inflate.
        let program = parse(&self.script).map_err(|e| e.to_string())?;
        let outcome =
            run_program(&program, args, 1, UPLOAD_STEP_LIMIT).map_err(|e| e.to_string())?;
        trace.extend_from(&outcome.trace);
        Ok(outcome.result)
    }
}

/// A registered function: built-in or uploaded.
#[derive(Debug, Clone)]
pub enum StoredFunction {
    /// One of the 25 suite workloads.
    Builtin(FaasWorkload),
    /// User-uploaded CBScript.
    Uploaded(UploadedFunction),
}

impl FaasFunction for StoredFunction {
    fn name(&self) -> &str {
        match self {
            StoredFunction::Builtin(w) => w.name(),
            StoredFunction::Uploaded(u) => u.name(),
        }
    }

    fn script(&self) -> &str {
        match self {
            StoredFunction::Builtin(w) => w.script(),
            StoredFunction::Uploaded(u) => u.script(),
        }
    }

    fn run_native(&self, args: &[String], trace: &mut OpTrace) -> Result<String, String> {
        match self {
            StoredFunction::Builtin(w) => w.run_native(args, trace),
            StoredFunction::Uploaded(u) => u.run_native(args, trace),
        }
    }
}

/// Errors from store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A function with this name already exists.
    NameTaken(String),
    /// The uploaded script failed to parse.
    BadScript(String),
    /// The function name is empty (or whitespace-only).
    EmptyName,
    /// The uploaded script is empty.
    EmptyScript,
    /// The script exceeds [`MAX_SCRIPT_BYTES`].
    ScriptTooLarge(usize),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NameTaken(name) => write!(f, "function name already taken: {name}"),
            StoreError::BadScript(msg) => write!(f, "uploaded script rejected: {msg}"),
            StoreError::EmptyName => write!(f, "function name must not be empty"),
            StoreError::EmptyScript => write!(f, "uploaded script must not be empty"),
            StoreError::ScriptTooLarge(n) => {
                write!(f, "script of {n} bytes exceeds the {MAX_SCRIPT_BYTES}-byte limit")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<StoreError> for Error {
    /// Every store rejection is the uploader's fault: map to
    /// [`Error::InvalidRequest`] so the REST layer answers 400.
    fn from(e: StoreError) -> Self {
        Error::InvalidRequest(e.to_string())
    }
}

/// The function database.
#[derive(Debug)]
pub struct FunctionStore {
    functions: RwLock<HashMap<String, StoredFunction>>,
}

impl Default for FunctionStore {
    fn default() -> Self {
        FunctionStore::new()
    }
}

impl FunctionStore {
    /// Creates a store pre-populated with the built-in suite.
    pub fn new() -> Self {
        let functions = faas_registry()
            .into_iter()
            .map(|w| (w.name().to_owned(), StoredFunction::Builtin(w)))
            .collect();
        FunctionStore { functions: RwLock::new(functions) }
    }

    /// Uploads a CBScript function (paper Fig. 2, step 1). The script is
    /// size-capped at [`MAX_SCRIPT_BYTES`] and parse-checked at upload time;
    /// names must be non-empty and unique.
    ///
    /// # Errors
    ///
    /// [`StoreError::EmptyName`] / [`StoreError::EmptyScript`] /
    /// [`StoreError::ScriptTooLarge`] / [`StoreError::BadScript`] /
    /// [`StoreError::NameTaken`] — all of which convert into a 400-mapped
    /// [`enum@Error`].
    pub fn upload(&self, name: &str, script: &str) -> Result<(), StoreError> {
        if name.trim().is_empty() {
            return Err(StoreError::EmptyName);
        }
        if script.is_empty() {
            return Err(StoreError::EmptyScript);
        }
        if script.len() > MAX_SCRIPT_BYTES {
            return Err(StoreError::ScriptTooLarge(script.len()));
        }
        parse(script).map_err(|e| StoreError::BadScript(e.to_string()))?;
        let mut functions = self.functions.write();
        if functions.contains_key(name) {
            return Err(StoreError::NameTaken(name.to_owned()));
        }
        functions.insert(
            name.to_owned(),
            StoredFunction::Uploaded(UploadedFunction {
                name: name.to_owned(),
                script: script.to_owned(),
            }),
        );
        Ok(())
    }

    /// Fetches a function by name.
    pub fn get(&self, name: &str) -> Option<StoredFunction> {
        self.functions.read().get(name).cloned()
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.functions.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.functions.read().len()
    }

    /// Whether the store is empty (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.functions.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_faasrt::FunctionLauncher;
    use confbench_types::Language;

    #[test]
    fn starts_with_the_builtin_suite() {
        let store = FunctionStore::new();
        assert_eq!(store.len(), 25);
        assert!(store.get("cpustress").is_some());
        assert!(store.get("nope").is_none());
    }

    #[test]
    fn upload_and_run_across_languages() {
        let store = FunctionStore::new();
        store.upload("triple", "result(int(ARGS[0]) * 3);").unwrap();
        let f = store.get("triple").unwrap();
        for language in Language::ALL {
            let out = FunctionLauncher::new(language).launch(&f, &["14".into()]).unwrap();
            assert_eq!(out.output, "42", "{language}");
        }
    }

    #[test]
    fn bad_script_rejected_at_upload() {
        let store = FunctionStore::new();
        let err = store.upload("broken", "let = nonsense").unwrap_err();
        assert!(matches!(err, StoreError::BadScript(_)));
        assert!(store.get("broken").is_none());
    }

    #[test]
    fn duplicate_names_rejected() {
        let store = FunctionStore::new();
        assert_eq!(
            store.upload("cpustress", "result(1);"),
            Err(StoreError::NameTaken("cpustress".into()))
        );
        store.upload("mine", "result(1);").unwrap();
        assert_eq!(store.upload("mine", "result(2);"), Err(StoreError::NameTaken("mine".into())));
    }

    #[test]
    fn names_are_sorted_and_complete() {
        let store = FunctionStore::new();
        store.upload("aaa_first", "result(0);").unwrap();
        let names = store.names();
        assert_eq!(names.len(), 26);
        assert_eq!(names[0], "aaa_first");
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn empty_name_and_script_rejected() {
        let store = FunctionStore::new();
        assert_eq!(store.upload("", "result(1);"), Err(StoreError::EmptyName));
        assert_eq!(store.upload("   ", "result(1);"), Err(StoreError::EmptyName));
        assert_eq!(store.upload("hollow", ""), Err(StoreError::EmptyScript));
        assert!(store.get("hollow").is_none());
    }

    #[test]
    fn oversized_script_rejected() {
        let store = FunctionStore::new();
        // A syntactically valid script padded past the limit with comments.
        let padding = "#".repeat(MAX_SCRIPT_BYTES);
        let script = format!("result(1);\n{padding}");
        let err = store.upload("huge", &script).unwrap_err();
        assert_eq!(err, StoreError::ScriptTooLarge(script.len()));
        assert!(store.get("huge").is_none());
        // At exactly the limit the upload goes through.
        let at_limit = format!("result(1);{}", " ".repeat(MAX_SCRIPT_BYTES - "result(1);".len()));
        assert_eq!(at_limit.len(), MAX_SCRIPT_BYTES);
        store.upload("at_limit", &at_limit).unwrap();
    }

    #[test]
    fn store_errors_map_to_400() {
        for e in [
            StoreError::NameTaken("fib".into()),
            StoreError::BadScript("boom".into()),
            StoreError::EmptyName,
            StoreError::EmptyScript,
            StoreError::ScriptTooLarge(MAX_SCRIPT_BYTES + 1),
        ] {
            let mapped: Error = e.into();
            assert_eq!(mapped.rest_status(), 400);
        }
    }

    #[test]
    fn uploaded_function_traces_io_builtins() {
        let store = FunctionStore::new();
        store.upload("writer", "io_write(4096); result(1);").unwrap();
        let f = store.get("writer").unwrap();
        let out = FunctionLauncher::new(Language::Go).launch(&f, &[]).unwrap();
        assert_eq!(out.trace.total_io_bytes(), 4096);
    }
}

//! The ConfBench gateway server.
//!
//! Boots local simulated TEE hosts and serves the REST API (paper §III):
//!
//! ```text
//! confbench-gateway [--listen ADDR] [--platforms tdx,sev-snp,cca]
//!                   [--seed N] [--policy round-robin|least-loaded]
//!                   [--remote-host PLATFORM=ADDR]...
//!                   [--queue-capacity N] [--workers N]
//!                   [--cache-capacity N] [--http-workers N] [--http-backlog N]
//!                   [--attest-ttl-ms N] [--attest-cache-capacity N]
//!                   [--chaos-seed N] [--chaos-rate F]
//! ```
//!
//! `--chaos-seed` (nonzero) arms deterministic TEE fault injection at
//! `--chaos-rate` (default 0.1) per mechanism crossing; the per-VM
//! supervisors absorb the faults (retry, rebuild, quarantine) and surface
//! them in `/v1/metrics`.
//!
//! `--attest-ttl-ms` / `--attest-cache-capacity` size the attestation
//! session cache behind `/v1/attest/sessions`; they default from the
//! `CONFBENCH_ATTEST_TTL_MS` / `CONFBENCH_ATTEST_CACHE_CAPACITY`
//! environment variables (flags win when both are given).

use std::process::ExitCode;
use std::sync::Arc;

use confbench::{AttestConfig, BalancePolicy, Gateway, SystemClock, TeeFaultPlan};
use confbench_httpd::ServerConfig;
use confbench_sched::{Scheduler, SchedulerConfig};
use confbench_types::TeePlatform;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("confbench-gateway: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen = "127.0.0.1:7700".to_owned();
    let mut platforms = vec![TeePlatform::Tdx, TeePlatform::SevSnp, TeePlatform::Cca];
    let mut seed = 0u64;
    let mut policy = BalancePolicy::RoundRobin;
    let mut remote_hosts: Vec<(TeePlatform, std::net::SocketAddr)> = Vec::new();
    let mut queue_capacity = SchedulerConfig::default().queue_capacity;
    let mut workers = 1usize;
    let mut cache_capacity = SchedulerConfig::default().cache_capacity;
    let mut http = ServerConfig::default();
    let mut attest = AttestConfig::from_env();
    let mut chaos_seed = 0u64;
    let mut chaos_rate = 0.1f64;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => {
                listen = take_value(&args, &mut i, "--listen")?;
            }
            "--platforms" => {
                let list = take_value(&args, &mut i, "--platforms")?;
                platforms = list
                    .split(',')
                    .map(|p| p.parse().map_err(|e| format!("{e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--seed" => {
                seed = take_value(&args, &mut i, "--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--policy" => {
                policy = match take_value(&args, &mut i, "--policy")?.as_str() {
                    "round-robin" => BalancePolicy::RoundRobin,
                    "least-loaded" => BalancePolicy::LeastLoaded,
                    other => return Err(format!("unknown policy {other}")),
                };
            }
            "--remote-host" => {
                let spec = take_value(&args, &mut i, "--remote-host")?;
                let (platform, addr) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--remote-host wants PLATFORM=ADDR, got {spec}"))?;
                remote_hosts.push((
                    platform.parse().map_err(|e| format!("{e}"))?,
                    addr.parse().map_err(|e| format!("bad address {addr}: {e}"))?,
                ));
            }
            "--queue-capacity" => {
                queue_capacity = take_value(&args, &mut i, "--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("bad queue capacity: {e}"))?;
                if queue_capacity == 0 {
                    return Err("--queue-capacity must be at least 1".into());
                }
            }
            "--workers" => {
                workers = take_value(&args, &mut i, "--workers")?
                    .parse()
                    .map_err(|e| format!("bad worker count: {e}"))?;
                if workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--cache-capacity" => {
                cache_capacity = take_value(&args, &mut i, "--cache-capacity")?
                    .parse()
                    .map_err(|e| format!("bad cache capacity: {e}"))?;
                if cache_capacity == 0 {
                    return Err("--cache-capacity must be at least 1".into());
                }
            }
            "--http-workers" => {
                http.workers = take_value(&args, &mut i, "--http-workers")?
                    .parse()
                    .map_err(|e| format!("bad http worker count: {e}"))?;
                if http.workers == 0 {
                    return Err("--http-workers must be at least 1".into());
                }
            }
            "--http-backlog" => {
                http.backlog = take_value(&args, &mut i, "--http-backlog")?
                    .parse()
                    .map_err(|e| format!("bad http backlog: {e}"))?;
                if http.backlog == 0 {
                    return Err("--http-backlog must be at least 1".into());
                }
            }
            "--attest-ttl-ms" => {
                attest.ttl_ms = take_value(&args, &mut i, "--attest-ttl-ms")?
                    .parse()
                    .map_err(|e| format!("bad attest TTL: {e}"))?;
                if attest.ttl_ms == 0 {
                    return Err("--attest-ttl-ms must be at least 1".into());
                }
            }
            "--attest-cache-capacity" => {
                attest.capacity = take_value(&args, &mut i, "--attest-cache-capacity")?
                    .parse()
                    .map_err(|e| format!("bad attest cache capacity: {e}"))?;
                if attest.capacity == 0 {
                    return Err("--attest-cache-capacity must be at least 1".into());
                }
            }
            "--chaos-seed" => {
                chaos_seed = take_value(&args, &mut i, "--chaos-seed")?
                    .parse()
                    .map_err(|e| format!("bad chaos seed: {e}"))?;
            }
            "--chaos-rate" => {
                chaos_rate = take_value(&args, &mut i, "--chaos-rate")?
                    .parse()
                    .map_err(|e| format!("bad chaos rate: {e}"))?;
                if !(0.0..=1.0).contains(&chaos_rate) {
                    return Err("--chaos-rate must be in [0, 1]".into());
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: confbench-gateway [--listen ADDR] [--platforms LIST] [--seed N]\n\
                     \x20                        [--policy round-robin|least-loaded]\n\
                     \x20                        [--remote-host PLATFORM=ADDR]...\n\
                     \x20                        [--queue-capacity N] [--workers N]\n\
                     \x20                        [--cache-capacity N] (result-cache LRU bound)\n\
                     \x20                        [--http-workers N] [--http-backlog N]\n\
                     \x20                        [--attest-ttl-ms N] [--attest-cache-capacity N]\n\
                     \x20                        [--chaos-seed N] [--chaos-rate F] (TEE fault injection)"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument {other} (try --help)")),
        }
        i += 1;
    }

    let mut builder = Gateway::builder().seed(seed).policy(policy).http(http).attest(attest);
    if chaos_seed != 0 {
        eprintln!("chaos armed: seed {chaos_seed}, fault rate {chaos_rate} per TEE crossing");
        builder = builder.chaos(Arc::new(TeeFaultPlan::new(chaos_seed, chaos_rate)));
    }
    for platform in &platforms {
        eprintln!("booting local host for {platform} (secure + normal VMs)...");
        builder = builder.local_host(*platform);
    }
    for (platform, addr) in remote_hosts {
        eprintln!("registering remote {platform} host at {addr}");
        builder = builder.remote_host(platform, addr);
    }
    let gateway = Arc::new(builder.build());
    let config = SchedulerConfig {
        queue_capacity,
        retry_after_secs: gateway.retry_policy().retry_after_secs(),
        cache_capacity,
        ..SchedulerConfig::default()
    };
    let sched = Arc::new(Scheduler::with_metrics(
        Arc::clone(&gateway) as Arc<dyn confbench_sched::Executor>,
        Arc::new(SystemClock),
        config,
        Arc::clone(gateway.metrics()),
    ));
    sched.spawn_workers(workers);
    let server = Arc::clone(&gateway)
        .serve_with_scheduler(Arc::clone(&sched), &listen)
        .map_err(|e| format!("cannot listen on {listen}: {e}"))?;
    println!("confbench gateway listening on http://{}", server.addr());
    println!("  POST /v1/run            run a function (JSON RunRequest)");
    println!("  POST /v1/functions      upload CBScript source");
    println!("  GET  /v1/functions      list registered functions");
    println!("  POST /v1/campaigns      submit a campaign matrix (202 + receipt)");
    println!("  GET  /v1/campaigns/ID   poll campaign status");
    println!("  DELETE /v1/campaigns/ID cancel a campaign");
    println!("  GET  /v1/jobs/ID        per-job status + trace");
    println!("  POST /v1/attest/sessions     open a verified attestation session");
    println!("  GET  /v1/attest/sessions/ID  inspect a session");
    println!("  DELETE /v1/attest/sessions/ID revoke a session");
    println!("  POST /v1/attest/sessions/ID/extend  extend a runtime measurement");
    println!("  GET  /v1/metrics        counters + histograms (?format=json for JSON)");
    println!("  GET  /v1/health         liveness");
    println!("  (unversioned paths still answer, marked Deprecation: true)");
    println!("scheduler: queue capacity {queue_capacity}, {workers} worker(s) per platform");
    println!(
        "http: {} handler worker(s), admission window {} connections, \
         result cache capped at {cache_capacity} entries",
        http.workers,
        http.workers + http.backlog
    );

    // Serve until interrupted.
    loop {
        std::thread::park();
    }
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    *i += 1;
    args.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
}

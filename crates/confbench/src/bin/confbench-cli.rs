//! Command-line client for a running ConfBench gateway.
//!
//! ```text
//! confbench-cli [--gateway ADDR] list
//! confbench-cli [--gateway ADDR] upload NAME FILE.cb
//! confbench-cli [--gateway ADDR] run FUNCTION [--lang L] [--tee P]
//!               [--normal] [--trials N] [--seed N] [--args A,B,...]
//!               [--device gpu]
//! confbench-cli [--gateway ADDR] compare FUNCTION [--lang L] [--trials N]
//! confbench-cli [--gateway ADDR] campaign submit --functions F[:ARG...],...
//!               [--langs L,...] [--tees P,...] [--modes secure,normal]
//!               [--trials N] [--seed N] [--priority low|normal|high]
//!               [--deadline-ms N] [--device gpu] [--wait]
//! confbench-cli [--gateway ADDR] campaign status|cancel|wait ID
//! confbench-cli [--gateway ADDR] attest verify [--tee P] [--nonce N]
//! confbench-cli [--gateway ADDR] attest status|revoke ID
//! confbench-cli [--gateway ADDR] attest extend ID --index N --data S
//! confbench-cli [--gateway ADDR] fleet status
//! confbench-cli [--gateway ADDR] fleet drain|kill SHARD
//! confbench-cli [--gateway ADDR] migrate [--tee P] [--normal] [--max-rounds N]
//! ```
//!
//! `attest verify` opens (or joins) a verified attestation session and
//! prints its token; pass that token to `run --attest-session ID` to skip
//! hot-path quote verification while the session stays live.

use std::process::ExitCode;

use confbench::{AttestSessionInfo, AttestSessionRequest, ExtendRequest, UploadRequest};
use confbench_httpd::{Client, Method, Request};
use confbench_types::{
    CampaignFunction, CampaignReceipt, CampaignSpec, CampaignStatus, FunctionSpec, Language,
    Priority, RunRequest, RunResult, TeePlatform, VmKind, VmTarget,
};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("confbench-cli: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct Cli {
    client: Client,
    args: Vec<String>,
    pos: usize,
}

impl Cli {
    fn flag_value(&self, flag: &str) -> Option<String> {
        self.args.iter().position(|a| a == flag).and_then(|i| self.args.get(i + 1)).cloned()
    }

    fn has_flag(&self, flag: &str) -> bool {
        self.args.iter().any(|a| a == flag)
    }

    fn next_positional(&mut self) -> Option<String> {
        // Flags that take no value; every other --flag consumes the next
        // token as its value.
        const BOOLEAN_FLAGS: [&str; 2] = ["--normal", "--wait"];
        while self.pos < self.args.len() {
            let current = self.pos;
            self.pos += 1;
            let arg = &self.args[current];
            if arg.starts_with("--") {
                if !BOOLEAN_FLAGS.contains(&arg.as_str()) {
                    self.pos += 1; // skip its value
                }
                continue;
            }
            return Some(arg.clone());
        }
        None
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        println!(
            "usage: confbench-cli [--gateway ADDR] <list|upload NAME FILE|run FN|compare FN|campaign ...>\n\
             run/compare flags: --lang LANG --tee PLATFORM --normal --trials N --seed N --args A,B --device gpu\n\
             campaign submit --functions F[:ARG...],... [--langs L,..] [--tees P,..]\n\
             \x20        [--modes secure,normal] [--trials N] [--seed N]\n\
             \x20        [--priority low|normal|high] [--deadline-ms N] [--wait]\n\
             campaign status|cancel|wait ID\n\
             attest verify [--tee PLATFORM] [--nonce N]\n\
             attest status|revoke ID\n\
             attest extend ID --index N --data S\n\
             fleet status            (against a confbench-fleetd)\n\
             fleet drain|kill SHARD\n\
             migrate [--tee PLATFORM] [--normal] [--max-rounds N]\n\
             run also takes --attest-session ID to ride a live session"
        );
        return Ok(());
    }
    let gateway = args.iter().position(|a| a == "--gateway").and_then(|i| args.get(i + 1)).cloned();
    let addr = gateway.unwrap_or_else(|| "127.0.0.1:7700".to_owned());
    let client = Client::connect(addr.as_str()).map_err(|e| format!("cannot reach {addr}: {e}"))?;
    let mut cli = Cli { client, args, pos: 0 };

    let command = cli.next_positional().ok_or("missing command (try --help)")?;
    match command.as_str() {
        "list" => list(&cli),
        "upload" => {
            let name = cli.next_positional().ok_or("upload needs NAME")?;
            let file = cli.next_positional().ok_or("upload needs FILE")?;
            upload(&cli, &name, &file)
        }
        "run" => {
            let function = cli.next_positional().ok_or("run needs FUNCTION")?;
            let request = build_request(&cli, &function)?;
            let result = post_run(&cli, &request)?;
            print_result(&result);
            Ok(())
        }
        "compare" => {
            let function = cli.next_positional().ok_or("compare needs FUNCTION")?;
            compare(&cli, &function)
        }
        "campaign" => {
            let action = cli.next_positional().ok_or("campaign needs submit|status|cancel|wait")?;
            match action.as_str() {
                "submit" => campaign_submit(&cli),
                "status" => {
                    let id = cli.next_positional().ok_or("campaign status needs ID")?;
                    print_campaign(&campaign_status(&cli, &id)?);
                    Ok(())
                }
                "cancel" => {
                    let id = cli.next_positional().ok_or("campaign cancel needs ID")?;
                    campaign_cancel(&cli, &id)
                }
                "wait" => {
                    let id = cli.next_positional().ok_or("campaign wait needs ID")?;
                    print_campaign(&campaign_wait(&cli, &id)?);
                    Ok(())
                }
                other => Err(format!("unknown campaign action {other} (try --help)")),
            }
        }
        "attest" => {
            let action = cli.next_positional().ok_or("attest needs verify|status|revoke|extend")?;
            match action.as_str() {
                "verify" => attest_verify(&cli),
                "status" => {
                    let id = cli.next_positional().ok_or("attest status needs ID")?;
                    attest_status(&cli, &id)
                }
                "revoke" => {
                    let id = cli.next_positional().ok_or("attest revoke needs ID")?;
                    attest_revoke(&cli, &id)
                }
                "extend" => {
                    let id = cli.next_positional().ok_or("attest extend needs ID")?;
                    attest_extend(&cli, &id)
                }
                other => Err(format!("unknown attest action {other} (try --help)")),
            }
        }
        "fleet" => {
            let action = cli.next_positional().ok_or("fleet needs status|drain|kill")?;
            match action.as_str() {
                "status" => fleet_status(&cli),
                "drain" | "kill" => {
                    let shard = cli.next_positional().ok_or("fleet drain/kill needs SHARD")?;
                    fleet_shard_action(&cli, &action, &shard)
                }
                other => Err(format!("unknown fleet action {other} (try --help)")),
            }
        }
        "migrate" => migrate_vm(&cli),
        other => Err(format!("unknown command {other} (try --help)")),
    }
}

/// Plain rendering of a JSON scalar for table output.
fn jv(value: &serde_json::Value) -> String {
    if let Some(s) = value.as_str() {
        return s.to_owned();
    }
    if let Some(n) = value.as_u64() {
        return n.to_string();
    }
    if let Some(b) = value.as_bool() {
        return b.to_string();
    }
    format!("{value:?}")
}

fn fleet_status(cli: &Cli) -> Result<(), String> {
    let resp = cli
        .client
        .send(&Request::new(Method::Get, "/v1/fleet"))
        .map_err(|e| format!("request failed: {e}"))?;
    if resp.status != 200 {
        return Err(format!("fleet said {}: {}", resp.status, String::from_utf8_lossy(&resp.body)));
    }
    let view: serde_json::Value = resp.body_json().map_err(|e| format!("bad response: {e}"))?;
    println!(
        "fleet: {} alive, {} steals, {} cells re-placed, {} migrations",
        jv(&view["alive"]),
        jv(&view["steals"]),
        jv(&view["cells_replaced"]),
        jv(&view["migrations"])
    );
    println!(
        "{:<6} {:<6} {:>7} {:>9} {:>7} {:>8}",
        "shard", "alive", "queued", "cached", "hits", "misses"
    );
    for shard in view["shards"].as_array().map(Vec::as_slice).unwrap_or_default() {
        println!(
            "{:<6} {:<6} {:>7} {:>9} {:>7} {:>8}",
            jv(&shard["shard"]),
            jv(&shard["alive"]),
            jv(&shard["queue_depth"]),
            jv(&shard["cache_entries"]),
            jv(&shard["cache_hits"]),
            jv(&shard["cache_misses"]),
        );
    }
    Ok(())
}

fn fleet_shard_action(cli: &Cli, action: &str, shard: &str) -> Result<(), String> {
    let resp = cli
        .client
        .send(&Request::new(Method::Post, &format!("/v1/fleet/shards/{shard}/{action}")))
        .map_err(|e| format!("request failed: {e}"))?;
    if resp.status != 200 {
        return Err(format!("fleet said {}: {}", resp.status, String::from_utf8_lossy(&resp.body)));
    }
    let view: serde_json::Value = resp.body_json().map_err(|e| format!("bad response: {e}"))?;
    println!(
        "shard {} {}: alive={}, {} cells re-placed",
        jv(&view["shard"]),
        if action == "drain" { "drained" } else { "killed" },
        jv(&view["alive"]),
        jv(&view["cells_replaced"])
    );
    Ok(())
}

fn migrate_vm(cli: &Cli) -> Result<(), String> {
    let platform: TeePlatform = cli
        .flag_value("--tee")
        .unwrap_or_else(|| "tdx".to_owned())
        .parse()
        .map_err(|e| format!("{e}"))?;
    let kind = if cli.has_flag("--normal") { "normal" } else { "secure" };
    let max_rounds: Option<u32> = cli
        .flag_value("--max-rounds")
        .map(|v| v.parse().map_err(|e| format!("bad max rounds: {e}")))
        .transpose()?;
    let body = serde_json::json!({
        "platform": platform,
        "kind": kind,
        "max_rounds": max_rounds,
    });
    let resp = cli
        .client
        .send(&Request::new(Method::Post, "/v1/migrations").json(&body))
        .map_err(|e| format!("request failed: {e}"))?;
    if resp.status != 200 {
        return Err(format!("fleet said {}: {}", resp.status, String::from_utf8_lossy(&resp.body)));
    }
    let view: serde_json::Value = resp.body_json().map_err(|e| format!("bad response: {e}"))?;
    println!("migrated {platform}/{kind}");
    println!("downtime : {} us (stop-and-copy + re-attest blackout)", jv(&view["downtime_us"]));
    println!(
        "pre-copy : {} rounds, {} pages total, {} wire bytes in {} frames",
        jv(&view["precopy_rounds"]),
        jv(&view["pages_total"]),
        jv(&view["wire_bytes"]),
        jv(&view["frames"])
    );
    println!("session  : {}", view["session"].as_str().unwrap_or("?"));
    Ok(())
}

fn list(cli: &Cli) -> Result<(), String> {
    let resp = cli
        .client
        .send(&Request::new(Method::Get, "/v1/functions"))
        .map_err(|e| format!("request failed: {e}"))?;
    let names: Vec<String> = resp.body_json().map_err(|e| format!("bad response: {e}"))?;
    for name in names {
        println!("{name}");
    }
    Ok(())
}

fn upload(cli: &Cli, name: &str, file: &str) -> Result<(), String> {
    let script = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let req = Request::new(Method::Post, "/v1/functions")
        .json(&UploadRequest { name: name.to_owned(), script });
    let resp = cli.client.send(&req).map_err(|e| format!("request failed: {e}"))?;
    if resp.status == 201 {
        println!("uploaded {name}");
        Ok(())
    } else {
        Err(format!("gateway said {}: {}", resp.status, String::from_utf8_lossy(&resp.body)))
    }
}

fn build_request(cli: &Cli, function: &str) -> Result<RunRequest, String> {
    let language: Language = cli
        .flag_value("--lang")
        .unwrap_or_else(|| "lua".to_owned())
        .parse()
        .map_err(|e| format!("{e}"))?;
    let platform: TeePlatform = cli
        .flag_value("--tee")
        .unwrap_or_else(|| "tdx".to_owned())
        .parse()
        .map_err(|e| format!("{e}"))?;
    let kind = if cli.has_flag("--normal") { VmKind::Normal } else { VmKind::Secure };
    let trials: u32 = cli
        .flag_value("--trials")
        .map(|v| v.parse().map_err(|e| format!("bad trials: {e}")))
        .transpose()?
        .unwrap_or(10);
    let seed: u64 = cli
        .flag_value("--seed")
        .map(|v| v.parse().map_err(|e| format!("bad seed: {e}")))
        .transpose()?
        .unwrap_or(0);
    let args = cli
        .flag_value("--args")
        .map(|v| v.split(',').map(str::to_owned).collect())
        .unwrap_or_default();
    let device =
        cli.flag_value("--device").map(|v| v.parse().map_err(|e| format!("{e}"))).transpose()?;
    let mut spec = FunctionSpec::new(function, language);
    spec.args = args;
    Ok(RunRequest {
        function: spec,
        target: VmTarget { platform, kind },
        trials,
        seed,
        deadline_ms: None,
        attest_session: cli.flag_value("--attest-session"),
        device,
    })
}

fn attest_verify(cli: &Cli) -> Result<(), String> {
    let platform: TeePlatform = cli
        .flag_value("--tee")
        .unwrap_or_else(|| "tdx".to_owned())
        .parse()
        .map_err(|e| format!("{e}"))?;
    let nonce = cli
        .flag_value("--nonce")
        .map(|v| v.parse().map_err(|e| format!("bad nonce: {e}")))
        .transpose()?;
    let req = Request::new(Method::Post, "/v1/attest/sessions")
        .json(&AttestSessionRequest { platform, nonce });
    let resp = cli.client.send(&req).map_err(|e| format!("request failed: {e}"))?;
    if resp.status != 201 {
        return Err(format!(
            "gateway said {}: {}",
            resp.status,
            String::from_utf8_lossy(&resp.body)
        ));
    }
    let info: AttestSessionInfo = resp.body_json().map_err(|e| format!("bad response: {e}"))?;
    print_session(&info);
    Ok(())
}

fn attest_status(cli: &Cli, id: &str) -> Result<(), String> {
    let resp = cli
        .client
        .send(&Request::new(Method::Get, &format!("/v1/attest/sessions/{id}")))
        .map_err(|e| format!("request failed: {e}"))?;
    if resp.status != 200 {
        return Err(format!(
            "gateway said {}: {}",
            resp.status,
            String::from_utf8_lossy(&resp.body)
        ));
    }
    let info: AttestSessionInfo = resp.body_json().map_err(|e| format!("bad response: {e}"))?;
    print_session(&info);
    Ok(())
}

fn attest_revoke(cli: &Cli, id: &str) -> Result<(), String> {
    let resp = cli
        .client
        .send(&Request::new(Method::Delete, &format!("/v1/attest/sessions/{id}")))
        .map_err(|e| format!("request failed: {e}"))?;
    if resp.status != 200 {
        return Err(format!(
            "gateway said {}: {}",
            resp.status,
            String::from_utf8_lossy(&resp.body)
        ));
    }
    let info: AttestSessionInfo = resp.body_json().map_err(|e| format!("bad response: {e}"))?;
    println!("revoked {}", info.id);
    print_session(&info);
    Ok(())
}

fn attest_extend(cli: &Cli, id: &str) -> Result<(), String> {
    let index: usize = cli
        .flag_value("--index")
        .ok_or("attest extend needs --index")?
        .parse()
        .map_err(|e| format!("bad index: {e}"))?;
    let data = cli.flag_value("--data").ok_or("attest extend needs --data")?;
    let req = Request::new(Method::Post, &format!("/v1/attest/sessions/{id}/extend"))
        .json(&ExtendRequest { index, data });
    let resp = cli.client.send(&req).map_err(|e| format!("request failed: {e}"))?;
    if resp.status != 200 {
        return Err(format!(
            "gateway said {}: {}",
            resp.status,
            String::from_utf8_lossy(&resp.body)
        ));
    }
    let info: AttestSessionInfo = resp.body_json().map_err(|e| format!("bad response: {e}"))?;
    println!("extended register {index}; session {} is now {}", info.id, info.state);
    print_session(&info);
    Ok(())
}

fn print_session(info: &AttestSessionInfo) {
    println!("session  : {}", info.id);
    println!("platform : {}", info.platform);
    println!("state    : {}", info.state);
    println!("tcb      : level {}, measurement {}", info.tcb_level, info.measurement);
    println!("runtime  : {}", info.runtime_digest);
    println!("expires  : {} ms (issued {} ms)", info.expires_ms, info.created_ms);
    if let Some(source) = &info.source {
        let timing = match (info.latency_ms, info.network_ms) {
            (Some(lat), Some(net)) => format!(" ({lat:.3} ms, {net:.3} ms on the network)"),
            _ => String::new(),
        };
        println!("source   : {source}{timing}");
    }
}

fn post_run(cli: &Cli, request: &RunRequest) -> Result<RunResult, String> {
    let resp = cli
        .client
        .send(&Request::new(Method::Post, "/v1/run").json(request))
        .map_err(|e| format!("request failed: {e}"))?;
    if resp.status != 200 {
        return Err(format!(
            "gateway said {}: {}",
            resp.status,
            String::from_utf8_lossy(&resp.body)
        ));
    }
    resp.body_json().map_err(|e| format!("bad response: {e}"))
}

fn print_result(result: &RunResult) {
    println!("function : {} ({})", result.function, result.language);
    println!("target   : {}", result.target);
    println!("output   : {}", result.output);
    println!(
        "timing   : mean {:.4} ms (min {:.4}, max {:.4}, stddev {:.4}) over {} trials",
        result.stats.mean_ms,
        result.stats.min_ms,
        result.stats.max_ms,
        result.stats.stddev_ms,
        result.trial_ms.len()
    );
    println!(
        "perf     : {} instructions, {} cycles, {} cache misses, {} vm exits ({})",
        result.perf.instructions,
        result.perf.cycles,
        result.perf.cache_misses,
        result.perf.vm_exits,
        if result.perf.from_hw_counters { "perf stat" } else { "custom script" },
    );
}

/// Parses `--functions fib:10,factors:360360` into campaign entries
/// (colon-separated: name, then positional arguments).
fn parse_functions(raw: &str) -> Result<Vec<CampaignFunction>, String> {
    raw.split(',')
        .map(|entry| {
            let mut parts = entry.split(':');
            let name = parts.next().filter(|n| !n.is_empty()).ok_or_else(|| {
                format!("bad --functions entry {entry:?}: want NAME[:ARG[:ARG...]]")
            })?;
            let mut function = CampaignFunction::new(name);
            function.args = parts.map(str::to_owned).collect();
            Ok(function)
        })
        .collect()
}

fn parse_list<T: std::str::FromStr>(raw: &str, what: &str) -> Result<Vec<T>, String>
where
    T::Err: std::fmt::Display,
{
    raw.split(',').map(|p| p.parse().map_err(|e| format!("bad {what} {p:?}: {e}"))).collect()
}

fn campaign_submit(cli: &Cli) -> Result<(), String> {
    let functions = parse_functions(
        &cli.flag_value("--functions").ok_or("campaign submit needs --functions")?,
    )?;
    let languages = parse_list(&cli.flag_value("--langs").unwrap_or_else(|| "lua".into()), "lang")?;
    let platforms = parse_list(&cli.flag_value("--tees").unwrap_or_else(|| "tdx".into()), "tee")?;
    let modes = cli
        .flag_value("--modes")
        .unwrap_or_else(|| "secure,normal".into())
        .split(',')
        .map(|m| match m {
            "secure" => Ok(VmKind::Secure),
            "normal" => Ok(VmKind::Normal),
            other => Err(format!("bad mode {other:?}: want secure or normal")),
        })
        .collect::<Result<Vec<_>, _>>()?;
    let priority = match cli.flag_value("--priority").as_deref() {
        None | Some("normal") => Priority::Normal,
        Some("low") => Priority::Low,
        Some("high") => Priority::High,
        Some(other) => return Err(format!("bad priority {other:?}: want low, normal, or high")),
    };
    let spec = CampaignSpec {
        functions,
        languages,
        platforms,
        modes,
        trials: cli
            .flag_value("--trials")
            .map(|v| v.parse().map_err(|e| format!("bad trials: {e}")))
            .transpose()?
            .unwrap_or(10),
        seed: cli
            .flag_value("--seed")
            .map(|v| v.parse().map_err(|e| format!("bad seed: {e}")))
            .transpose()?
            .unwrap_or(0),
        priority,
        deadline_ms: cli
            .flag_value("--deadline-ms")
            .map(|v| v.parse().map_err(|e| format!("bad deadline: {e}")))
            .transpose()?,
        device: cli
            .flag_value("--device")
            .map(|v| v.parse().map_err(|e| format!("{e}")))
            .transpose()?,
    };

    let resp = cli
        .client
        .send(&Request::new(Method::Post, "/v1/campaigns").json(&spec))
        .map_err(|e| format!("request failed: {e}"))?;
    if resp.status != 202 {
        let hint = resp
            .headers
            .get("retry-after")
            .map(|s| format!(" (retry after {s}s)"))
            .unwrap_or_default();
        return Err(format!(
            "gateway said {}: {}{hint}",
            resp.status,
            String::from_utf8_lossy(&resp.body)
        ));
    }
    let receipt: CampaignReceipt = resp.body_json().map_err(|e| format!("bad response: {e}"))?;
    println!("campaign {} accepted: {} jobs", receipt.id, receipt.jobs);
    if cli.has_flag("--wait") {
        print_campaign(&campaign_wait(cli, &receipt.id.0)?);
    }
    Ok(())
}

fn campaign_status(cli: &Cli, id: &str) -> Result<CampaignStatus, String> {
    let resp = cli
        .client
        .send(&Request::new(Method::Get, &format!("/v1/campaigns/{id}")))
        .map_err(|e| format!("request failed: {e}"))?;
    if resp.status != 200 {
        return Err(format!(
            "gateway said {}: {}",
            resp.status,
            String::from_utf8_lossy(&resp.body)
        ));
    }
    resp.body_json().map_err(|e| format!("bad response: {e}"))
}

fn campaign_cancel(cli: &Cli, id: &str) -> Result<(), String> {
    let resp = cli
        .client
        .send(&Request::new(Method::Delete, &format!("/v1/campaigns/{id}")))
        .map_err(|e| format!("request failed: {e}"))?;
    if resp.status != 200 {
        return Err(format!(
            "gateway said {}: {}",
            resp.status,
            String::from_utf8_lossy(&resp.body)
        ));
    }
    let status: CampaignStatus = resp.body_json().map_err(|e| format!("bad response: {e}"))?;
    println!("campaign {id} cancelled ({} jobs never ran)", status.cancelled);
    Ok(())
}

fn campaign_wait(cli: &Cli, id: &str) -> Result<CampaignStatus, String> {
    loop {
        let status = campaign_status(cli, id)?;
        if status.is_done() {
            return Ok(status);
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
}

fn print_campaign(status: &CampaignStatus) {
    println!(
        "campaign {}: {} ({}/{} done — {} completed, {} failed, {} cancelled, {} expired; {} cache hits)",
        status.id,
        status.state,
        status.terminal_jobs(),
        status.total_jobs,
        status.completed,
        status.failed,
        status.cancelled,
        status.expired,
        status.cache_hits,
    );
    if status.cells.is_empty() {
        return;
    }
    println!(
        "{:<14} {:<8} {:<8} {:<7} {:>12} {:>12} {:>7}",
        "function", "lang", "tee", "mode", "mean ms", "stddev ms", "cached"
    );
    for cell in &status.cells {
        println!(
            "{:<14} {:<8} {:<8} {:<7} {:>12.4} {:>12.4} {:>7}",
            cell.cell.function.name,
            cell.cell.language.to_string(),
            cell.cell.platform.to_string(),
            cell.cell.kind.to_string(),
            cell.mean_ms,
            cell.stddev_ms,
            if cell.from_cache { "yes" } else { "no" },
        );
    }
}

fn compare(cli: &Cli, function: &str) -> Result<(), String> {
    let mut request = build_request(cli, function)?;
    println!("{:<10} {:>12} {:>12} {:>8}", "platform", "secure ms", "normal ms", "ratio");
    for platform in TeePlatform::ALL {
        request.target = VmTarget::secure(platform);
        let secure = post_run(cli, &request)?;
        request.target = VmTarget::normal(platform);
        let normal = post_run(cli, &request)?;
        println!(
            "{:<10} {:>12.4} {:>12.4} {:>7.2}x",
            platform.to_string(),
            secure.stats.mean_ms,
            normal.stats.mean_ms,
            secure.stats.mean_ms / normal.stats.mean_ms
        );
    }
    Ok(())
}

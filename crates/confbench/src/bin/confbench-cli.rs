//! Command-line client for a running ConfBench gateway.
//!
//! ```text
//! confbench-cli [--gateway ADDR] list
//! confbench-cli [--gateway ADDR] upload NAME FILE.cb
//! confbench-cli [--gateway ADDR] run FUNCTION [--lang L] [--tee P]
//!               [--normal] [--trials N] [--seed N] [--args A,B,...]
//! confbench-cli [--gateway ADDR] compare FUNCTION [--lang L] [--trials N]
//! ```

use std::process::ExitCode;

use confbench::UploadRequest;
use confbench_httpd::{Client, Method, Request};
use confbench_types::{
    FunctionSpec, Language, RunRequest, RunResult, TeePlatform, VmKind, VmTarget,
};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("confbench-cli: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct Cli {
    client: Client,
    args: Vec<String>,
    pos: usize,
}

impl Cli {
    fn flag_value(&self, flag: &str) -> Option<String> {
        self.args.iter().position(|a| a == flag).and_then(|i| self.args.get(i + 1)).cloned()
    }

    fn has_flag(&self, flag: &str) -> bool {
        self.args.iter().any(|a| a == flag)
    }

    fn next_positional(&mut self) -> Option<String> {
        // Flags that take no value; every other --flag consumes the next
        // token as its value.
        const BOOLEAN_FLAGS: [&str; 1] = ["--normal"];
        while self.pos < self.args.len() {
            let current = self.pos;
            self.pos += 1;
            let arg = &self.args[current];
            if arg.starts_with("--") {
                if !BOOLEAN_FLAGS.contains(&arg.as_str()) {
                    self.pos += 1; // skip its value
                }
                continue;
            }
            return Some(arg.clone());
        }
        None
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        println!(
            "usage: confbench-cli [--gateway ADDR] <list|upload NAME FILE|run FN|compare FN>\n\
             run/compare flags: --lang LANG --tee PLATFORM --normal --trials N --seed N --args A,B"
        );
        return Ok(());
    }
    let gateway = args.iter().position(|a| a == "--gateway").and_then(|i| args.get(i + 1)).cloned();
    let addr = gateway.unwrap_or_else(|| "127.0.0.1:7700".to_owned());
    let client = Client::connect(addr.as_str()).map_err(|e| format!("cannot reach {addr}: {e}"))?;
    let mut cli = Cli { client, args, pos: 0 };

    let command = cli.next_positional().ok_or("missing command (try --help)")?;
    match command.as_str() {
        "list" => list(&cli),
        "upload" => {
            let name = cli.next_positional().ok_or("upload needs NAME")?;
            let file = cli.next_positional().ok_or("upload needs FILE")?;
            upload(&cli, &name, &file)
        }
        "run" => {
            let function = cli.next_positional().ok_or("run needs FUNCTION")?;
            let request = build_request(&cli, &function)?;
            let result = post_run(&cli, &request)?;
            print_result(&result);
            Ok(())
        }
        "compare" => {
            let function = cli.next_positional().ok_or("compare needs FUNCTION")?;
            compare(&cli, &function)
        }
        other => Err(format!("unknown command {other} (try --help)")),
    }
}

fn list(cli: &Cli) -> Result<(), String> {
    let resp = cli
        .client
        .send(&Request::new(Method::Get, "/v1/functions"))
        .map_err(|e| format!("request failed: {e}"))?;
    let names: Vec<String> = resp.body_json().map_err(|e| format!("bad response: {e}"))?;
    for name in names {
        println!("{name}");
    }
    Ok(())
}

fn upload(cli: &Cli, name: &str, file: &str) -> Result<(), String> {
    let script = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let req = Request::new(Method::Post, "/v1/functions")
        .json(&UploadRequest { name: name.to_owned(), script });
    let resp = cli.client.send(&req).map_err(|e| format!("request failed: {e}"))?;
    if resp.status == 201 {
        println!("uploaded {name}");
        Ok(())
    } else {
        Err(format!("gateway said {}: {}", resp.status, String::from_utf8_lossy(&resp.body)))
    }
}

fn build_request(cli: &Cli, function: &str) -> Result<RunRequest, String> {
    let language: Language = cli
        .flag_value("--lang")
        .unwrap_or_else(|| "lua".to_owned())
        .parse()
        .map_err(|e| format!("{e}"))?;
    let platform: TeePlatform = cli
        .flag_value("--tee")
        .unwrap_or_else(|| "tdx".to_owned())
        .parse()
        .map_err(|e| format!("{e}"))?;
    let kind = if cli.has_flag("--normal") { VmKind::Normal } else { VmKind::Secure };
    let trials: u32 = cli
        .flag_value("--trials")
        .map(|v| v.parse().map_err(|e| format!("bad trials: {e}")))
        .transpose()?
        .unwrap_or(10);
    let seed: u64 = cli
        .flag_value("--seed")
        .map(|v| v.parse().map_err(|e| format!("bad seed: {e}")))
        .transpose()?
        .unwrap_or(0);
    let args = cli
        .flag_value("--args")
        .map(|v| v.split(',').map(str::to_owned).collect())
        .unwrap_or_default();
    let mut spec = FunctionSpec::new(function, language);
    spec.args = args;
    Ok(RunRequest {
        function: spec,
        target: VmTarget { platform, kind },
        trials,
        seed,
        deadline_ms: None,
    })
}

fn post_run(cli: &Cli, request: &RunRequest) -> Result<RunResult, String> {
    let resp = cli
        .client
        .send(&Request::new(Method::Post, "/v1/run").json(request))
        .map_err(|e| format!("request failed: {e}"))?;
    if resp.status != 200 {
        return Err(format!(
            "gateway said {}: {}",
            resp.status,
            String::from_utf8_lossy(&resp.body)
        ));
    }
    resp.body_json().map_err(|e| format!("bad response: {e}"))
}

fn print_result(result: &RunResult) {
    println!("function : {} ({})", result.function, result.language);
    println!("target   : {}", result.target);
    println!("output   : {}", result.output);
    println!(
        "timing   : mean {:.4} ms (min {:.4}, max {:.4}, stddev {:.4}) over {} trials",
        result.stats.mean_ms,
        result.stats.min_ms,
        result.stats.max_ms,
        result.stats.stddev_ms,
        result.trial_ms.len()
    );
    println!(
        "perf     : {} instructions, {} cycles, {} cache misses, {} vm exits ({})",
        result.perf.instructions,
        result.perf.cycles,
        result.perf.cache_misses,
        result.perf.vm_exits,
        if result.perf.from_hw_counters { "perf stat" } else { "custom script" },
    );
}

fn compare(cli: &Cli, function: &str) -> Result<(), String> {
    let mut request = build_request(cli, function)?;
    println!("{:<10} {:>12} {:>12} {:>8}", "platform", "secure ms", "normal ms", "ratio");
    for platform in TeePlatform::ALL {
        request.target = VmTarget::secure(platform);
        let secure = post_run(cli, &request)?;
        request.target = VmTarget::normal(platform);
        let normal = post_run(cli, &request)?;
        println!(
            "{:<10} {:>12.4} {:>12.4} {:>7.2}x",
            platform.to_string(),
            secure.stats.mean_ms,
            normal.stats.mean_ms,
            secure.stats.mean_ms / normal.stats.mean_ms
        );
    }
    Ok(())
}

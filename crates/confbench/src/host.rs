//! The TEE-enabled host agent.
//!
//! A host owns one confidential VM and one normal VM for its platform
//! (paper §IV-A: "in each host we created two VMs"), receives execution
//! requests from the gateway, routes them to the right VM, runs the
//! function under `perf stat`, and returns timing plus counters.

use std::sync::Arc;
use std::time::{Duration, Instant};

use confbench_faasrt::FunctionLauncher;
use confbench_httpd::{Method, Response, Router, Server, ServerConfig};
use confbench_obs::{MetricsRegistry, SpanRecorder};
use confbench_perfmon::PerfStat;
use confbench_types::{Error, Result, RunRequest, RunResult, TeePlatform, VmKind, VmTarget};
use confbench_vmm::TeeFaultPlan;
use confbench_workloads::GpuInferenceWorkload;

/// Name of the host-level GPU-offload scenario: not a FaaS function (it has
/// no CBScript twin) but a native workload the host runs directly, with the
/// forward pass offloaded to the TEE-IO accelerator when the request asks
/// for a device.
pub const GPU_INFERENCE: &str = "gpu-inference";

use crate::attest_api::AttestService;
use crate::gateway::RetryPolicy;
use crate::rest::add_versioned;
use crate::store::FunctionStore;
use crate::supervisor::{VmSupervisor, DEFAULT_REBUILD_BUDGET};

/// Construction-time tuning for a [`HostAgent`]: VM seeding, chaos
/// schedule, recovery policy, and where supervision metrics land.
#[derive(Clone)]
pub struct HostConfig {
    /// Deterministic seed for both VMs' jitter streams.
    pub seed: u64,
    /// Backoff policy for transient-fault retries inside the supervisors.
    pub retry: RetryPolicy,
    /// Fatal rebuilds tolerated per VM slot before quarantine.
    pub rebuild_budget: u32,
    /// Chaos schedule injected into boots and executions (None = no
    /// injection; defaults from `CONFBENCH_CHAOS_SEED` via
    /// [`TeeFaultPlan::from_env`]).
    pub faults: Option<Arc<TeeFaultPlan>>,
    /// Registry receiving `vmm_faults_total` / `vm_rebuilds_total` /
    /// `vm_quarantined` (None = unmetered).
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Attestation-session service shared with the gateway: supervisor
    /// rebuilds re-attest through its session cache, so a rebuild storm on
    /// a fleet sharing one TCB identity verifies once (None = each rebuild
    /// verifies standalone).
    pub attest: Option<Arc<AttestService>>,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            seed: 0,
            retry: RetryPolicy::default(),
            rebuild_budget: DEFAULT_REBUILD_BUDGET,
            faults: TeeFaultPlan::from_env(),
            metrics: None,
            attest: None,
        }
    }
}

/// A host machine capable of instantiating confidential VMs for one
/// platform.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use confbench::{FunctionStore, HostAgent};
/// use confbench_types::{FunctionSpec, Language, RunRequest, TeePlatform, VmTarget};
///
/// let host = HostAgent::new(TeePlatform::Tdx, Arc::new(FunctionStore::new()), 7);
/// let req = RunRequest::new(
///     FunctionSpec::new("factors", Language::Go).arg("360360"),
///     VmTarget::secure(TeePlatform::Tdx),
/// );
/// let result = host.execute(&req)?;
/// assert_eq!(result.output, "1572480");
/// # Ok::<(), confbench_types::Error>(())
/// ```
pub struct HostAgent {
    platform: TeePlatform,
    secure: VmSupervisor,
    normal: VmSupervisor,
    store: Arc<FunctionStore>,
    recorder: SpanRecorder,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl HostAgent {
    /// Builds a host for `platform` with deterministic seeds derived from
    /// `seed`, recording spans on the wall clock.
    pub fn new(platform: TeePlatform, store: Arc<FunctionStore>, seed: u64) -> Self {
        Self::with_config(
            platform,
            store,
            SpanRecorder::default(),
            HostConfig { seed, ..HostConfig::default() },
        )
    }

    /// As [`HostAgent::new`] with an explicit span recorder (tests inject a
    /// [`ManualClock`](crate::ManualClock)-backed one for deterministic
    /// timestamps; the gateway shares its own recorder with local hosts).
    pub fn with_recorder(
        platform: TeePlatform,
        store: Arc<FunctionStore>,
        seed: u64,
        recorder: SpanRecorder,
    ) -> Self {
        Self::with_config(platform, store, recorder, HostConfig { seed, ..HostConfig::default() })
    }

    /// Fully configured construction: chaos schedule, recovery policy, and
    /// metrics registry all injectable (the gateway builds local hosts this
    /// way).
    pub fn with_config(
        platform: TeePlatform,
        store: Arc<FunctionStore>,
        recorder: SpanRecorder,
        config: HostConfig,
    ) -> Self {
        let supervisor = |target: VmTarget| {
            VmSupervisor::new(
                target,
                config.seed,
                config.faults.clone(),
                config.retry,
                config.rebuild_budget,
                config.metrics.as_ref(),
            )
            .with_attest(config.attest.clone())
        };
        HostAgent {
            platform,
            secure: supervisor(VmTarget::secure(platform)),
            normal: supervisor(VmTarget::normal(platform)),
            store,
            recorder,
            metrics: config.metrics,
        }
    }

    /// The host's platform.
    pub fn platform(&self) -> TeePlatform {
        self.platform
    }

    /// The supervisor watching the VM slot of `kind` (diagnostics/tests).
    pub fn supervisor(&self, kind: VmKind) -> &VmSupervisor {
        match kind {
            VmKind::Secure => &self.secure,
            VmKind::Normal => &self.normal,
        }
    }

    /// Executes a request on the targeted VM: launches the function through
    /// its language runtime, replays the launcher bootstrap unmeasured, then
    /// measures `trials` independent executions (the paper's methodology:
    /// 10 trials, bootstrap excluded, averages reported).
    ///
    /// Each request runs on a freshly launched VM under the slot's
    /// [`VmSupervisor`]: injected TEE faults are retried (transient) or
    /// recovered by teardown/rebuild (fatal), and a surviving run's
    /// measurements are bit-identical to a fault-free one.
    ///
    /// # Errors
    ///
    /// Unknown functions, wrong-platform targets, workload failures, and
    /// [`Error::TeeFault`] when the slot's recovery budget is exhausted.
    pub fn execute(&self, request: &RunRequest) -> Result<RunResult> {
        if request.target.platform != self.platform {
            return Err(Error::InvalidRequest(format!(
                "host serves {}, request targets {}",
                self.platform, request.target.platform
            )));
        }
        if request.function.name == GPU_INFERENCE {
            return self.execute_gpu(request);
        }
        let function = self
            .store
            .get(&request.function.name)
            .ok_or_else(|| Error::UnknownFunction(request.function.name.clone()))?;

        let launcher = FunctionLauncher::new(request.function.language);
        let output = launcher
            .launch(&function, &request.function.args)
            .map_err(|e| Error::Workload(e.to_string()))?;

        let supervisor = self.supervisor(request.target.kind);
        let trials = request.trials.max(1);
        let deadline = request.deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));

        let mut span = self.recorder.root("host.execute");
        span.set_attr("trials", u64::from(trials));

        let recorder = &self.recorder;
        let (trial_ms, trial_cycles, mut sample) =
            supervisor.run(&mut span, deadline, request.seed, |vm, span| {
                // Launcher bootstrap runs unmeasured (paper §IV-D).
                let bootstrap = span.child("launcher.bootstrap");
                vm.try_execute(&output.startup_trace)?;
                span.finish_child(bootstrap);

                let mut trial_ms = Vec::with_capacity(trials as usize);
                let mut trial_cycles = Vec::with_capacity(trials as usize);
                for _ in 0..trials - 1 {
                    let report = vm.try_execute(&output.trace)?;
                    trial_ms.push(report.wall_ms);
                    trial_cycles.push(report.cycles);
                }
                // Final trial runs under the perf collector, whose sample —
                // span tree included — is piggybacked on the result (paper
                // §III-B).
                let (report, sample) =
                    PerfStat::for_vm(vm).try_measure_spanned(vm, &output.trace, recorder)?;
                trial_ms.push(report.wall_ms);
                trial_cycles.push(report.cycles);
                Ok((trial_ms, trial_cycles, sample))
            })?;
        if let Some(measured) = sample.trace.take() {
            span.adopt(measured);
        }

        Ok(RunResult {
            function: request.function.name.clone(),
            language: request.function.language,
            target: request.target,
            stats: RunResult::compute_stats(&trial_ms),
            trial_ms,
            trial_cycles,
            perf: sample.report,
            output: output.output,
            trace: Some(span.finish()),
        })
    }

    /// The [`GPU_INFERENCE`] scenario: a native workload executed without
    /// the FaaS store. The classification runs on the host CPU by default;
    /// with [`RunRequest::device`] set, the forward pass is offloaded to the
    /// accelerator and each trial VM goes through the full TDISP bring-up
    /// (secure targets attest the device before its DMA goes direct). DMA
    /// traffic is tallied into `devio_dma_bytes_total{path=...}` — counted
    /// once, from the attempt that succeeded, so fault retries don't
    /// inflate it.
    fn execute_gpu(&self, request: &RunRequest) -> Result<RunResult> {
        let workload = GpuInferenceWorkload::new(request.seed);
        let index = match request.function.args.first() {
            None => 0,
            Some(arg) => arg.parse::<usize>().map_err(|_| {
                Error::InvalidRequest(format!("gpu-inference image index {arg:?} is not a number"))
            })?,
        };
        if index >= workload.dataset_size() {
            return Err(Error::InvalidRequest(format!(
                "gpu-inference image index {index} out of range (dataset has {})",
                workload.dataset_size()
            )));
        }
        let offloaded = request.device.is_some();
        let run =
            if offloaded { workload.classify_device(index) } else { workload.classify_host(index) };

        let supervisor = self.supervisor(request.target.kind);
        let trials = request.trials.max(1);
        let deadline = request.deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));

        let mut span = self.recorder.root("host.execute");
        span.set_attr("trials", u64::from(trials));
        span.set_attr("offloaded", u64::from(offloaded));

        let recorder = &self.recorder;
        let (trial_ms, trial_cycles, mut sample, dma_direct, dma_bounce) =
            supervisor.run_on(request.device, &mut span, deadline, request.seed, |vm, _| {
                let mut trial_ms = Vec::with_capacity(trials as usize);
                let mut trial_cycles = Vec::with_capacity(trials as usize);
                let mut dma_direct = 0u64;
                let mut dma_bounce = 0u64;
                for _ in 0..trials - 1 {
                    let report = vm.try_execute(&run.trace)?;
                    dma_direct += report.events.dma_direct_bytes;
                    dma_bounce += report.events.dma_bounce_bytes;
                    trial_ms.push(report.wall_ms);
                    trial_cycles.push(report.cycles);
                }
                let (report, sample) =
                    PerfStat::for_vm(vm).try_measure_spanned(vm, &run.trace, recorder)?;
                dma_direct += report.events.dma_direct_bytes;
                dma_bounce += report.events.dma_bounce_bytes;
                trial_ms.push(report.wall_ms);
                trial_cycles.push(report.cycles);
                Ok((trial_ms, trial_cycles, sample, dma_direct, dma_bounce))
            })?;
        if let Some(measured) = sample.trace.take() {
            span.adopt(measured);
        }
        if let Some(metrics) = &self.metrics {
            if dma_direct > 0 {
                metrics.counter("devio_dma_bytes_total{path=\"direct\"}").add(dma_direct);
            }
            if dma_bounce > 0 {
                metrics.counter("devio_dma_bytes_total{path=\"bounce\"}").add(dma_bounce);
            }
        }

        Ok(RunResult {
            function: request.function.name.clone(),
            language: request.function.language,
            target: request.target,
            stats: RunResult::compute_stats(&trial_ms),
            trial_ms,
            trial_cycles,
            perf: sample.report,
            output: run.class.to_string(),
            trace: Some(span.finish()),
        })
    }

    /// Serves the agent over HTTP: `POST /v1/execute` with a JSON
    /// [`RunRequest`] body, `GET /v1/health`. The unversioned paths remain
    /// as deprecated aliases (answering with `Deprecation: true`).
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn serve(self: Arc<Self>) -> std::io::Result<Server> {
        self.serve_with_config(ServerConfig::default())
    }

    /// As [`HostAgent::serve`] with explicit connection-layer tuning. The
    /// returned server's [`metrics`](Server::metrics) expose the `httpd_*`
    /// instruments (connection reuse, saturation) for the gateway→host hop.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn serve_with_config(self: Arc<Self>, config: ServerConfig) -> std::io::Result<Server> {
        let mut router = Router::new();
        let agent = Arc::clone(&self);
        add_versioned(&mut router, Method::Post, "/execute", move |req, _| {
            match req.body_json::<RunRequest>() {
                Err(e) => Response::error(400, format!("bad request body: {e}")),
                Ok(run_request) => match agent.execute(&run_request) {
                    Ok(result) => Response::json(&result),
                    // Same status mapping as the gateway (the shared table in
                    // `confbench-types`), so a remote host is
                    // indistinguishable from a local one to REST clients.
                    Err(e) => Response::error(e.rest_status(), e.to_string()),
                },
            }
        });
        let platform = self.platform;
        add_versioned(&mut router, Method::Get, "/health", move |_, _| {
            Response::json(&serde_json::json!({ "platform": platform.to_string(), "ok": true }))
        });
        Server::build(router).config(config).spawn("127.0.0.1:0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_httpd::Request;
    use confbench_types::{FunctionSpec, Language};

    fn host(platform: TeePlatform) -> HostAgent {
        HostAgent::new(platform, Arc::new(FunctionStore::new()), 1)
    }

    fn request(platform: TeePlatform, kind: VmKind) -> RunRequest {
        RunRequest {
            function: FunctionSpec::new("factors", Language::Go).arg("360360"),
            target: VmTarget { platform, kind },
            trials: 3,
            seed: 0,
            deadline_ms: None,
            attest_session: None,
            device: None,
        }
    }

    fn gpu_request(platform: TeePlatform, kind: VmKind, device: bool) -> RunRequest {
        let mut req = request(platform, kind);
        req.function = FunctionSpec::new(GPU_INFERENCE, Language::Go);
        req.device = device.then_some(confbench_types::DeviceKind::Gpu);
        req
    }

    #[test]
    fn executes_and_reports_trials() {
        let h = host(TeePlatform::Tdx);
        let result = h.execute(&request(TeePlatform::Tdx, VmKind::Secure)).unwrap();
        assert_eq!(result.trial_ms.len(), 3);
        assert_eq!(result.output, "1572480");
        assert!(result.stats.mean_ms > 0.0);
        assert!(result.perf.cycles > 0);
    }

    #[test]
    fn wrong_platform_rejected() {
        let h = host(TeePlatform::Tdx);
        let err = h.execute(&request(TeePlatform::SevSnp, VmKind::Secure)).unwrap_err();
        assert!(matches!(err, Error::InvalidRequest(_)));
    }

    #[test]
    fn unknown_function_rejected() {
        let h = host(TeePlatform::Tdx);
        let mut req = request(TeePlatform::Tdx, VmKind::Normal);
        req.function.name = "missing".into();
        assert!(matches!(h.execute(&req).unwrap_err(), Error::UnknownFunction(_)));
    }

    #[test]
    fn secure_runs_slower_than_normal_for_io() {
        let h = host(TeePlatform::Tdx);
        let mut secure_req = request(TeePlatform::Tdx, VmKind::Secure);
        secure_req.function = FunctionSpec::new("iostress", Language::Go).arg("4");
        let mut normal_req = secure_req.clone();
        normal_req.target = VmTarget::normal(TeePlatform::Tdx);
        let secure = h.execute(&secure_req).unwrap();
        let normal = h.execute(&normal_req).unwrap();
        let ratio = secure.stats.mean_ms / normal.stats.mean_ms;
        assert!(ratio > 1.2, "TDX iostress ratio {ratio}");
    }

    #[test]
    fn gpu_inference_offload_matches_host_prediction() {
        let h = host(TeePlatform::Tdx);
        let on_host = h.execute(&gpu_request(TeePlatform::Tdx, VmKind::Secure, false)).unwrap();
        let on_device = h.execute(&gpu_request(TeePlatform::Tdx, VmKind::Secure, true)).unwrap();
        assert_eq!(on_host.output, on_device.output, "same arithmetic, same class");
        let trace = on_device.trace.expect("trace attached");
        assert_eq!(trace.attr("offloaded"), Some(1));
        assert!(trace.find("devio.attest").is_some(), "secure bring-up attested the device");
        assert!(trace.find("devio.dma-direct").is_some(), "attested DMA went direct");
    }

    #[test]
    fn gpu_inference_dma_lands_in_metrics_once() {
        let registry = Arc::new(MetricsRegistry::new());
        let config =
            HostConfig { seed: 1, metrics: Some(Arc::clone(&registry)), ..HostConfig::default() };
        let h = HostAgent::with_config(
            TeePlatform::SevSnp,
            Arc::new(FunctionStore::new()),
            SpanRecorder::default(),
            config,
        );
        let result = h.execute(&gpu_request(TeePlatform::SevSnp, VmKind::Secure, true)).unwrap();
        assert_eq!(result.trial_ms.len(), 3);
        let direct = registry
            .counter_value("devio_dma_bytes_total{path=\"direct\"}")
            .expect("direct DMA counted");
        assert!(direct > 0);
        assert_eq!(
            registry.counter_value("devio_dma_bytes_total{path=\"bounce\"}"),
            None,
            "attested device never bounces"
        );
    }

    #[test]
    fn gpu_inference_rejects_bad_indexes() {
        let h = host(TeePlatform::Tdx);
        let mut req = gpu_request(TeePlatform::Tdx, VmKind::Normal, false);
        req.function = req.function.arg("not-a-number");
        assert!(matches!(h.execute(&req).unwrap_err(), Error::InvalidRequest(_)));
        let mut req = gpu_request(TeePlatform::Tdx, VmKind::Normal, false);
        req.function = req.function.arg("999999");
        assert!(matches!(h.execute(&req).unwrap_err(), Error::InvalidRequest(_)));
    }

    #[test]
    fn cca_results_come_from_the_script_collector() {
        let h = host(TeePlatform::Cca);
        let result = h.execute(&request(TeePlatform::Cca, VmKind::Secure)).unwrap();
        assert!(!result.perf.from_hw_counters);
        let tdx = host(TeePlatform::Tdx);
        let result = tdx.execute(&request(TeePlatform::Tdx, VmKind::Secure)).unwrap();
        assert!(result.perf.from_hw_counters);
    }

    #[test]
    fn serves_over_http() {
        let agent = Arc::new(host(TeePlatform::SevSnp));
        let server = agent.serve().unwrap();
        let client = confbench_httpd::Client::new(server.addr());
        let req = Request::new(Method::Post, "/execute")
            .json(&request(TeePlatform::SevSnp, VmKind::Secure));
        let resp = client.send(&req).unwrap();
        assert_eq!(resp.status, 200);
        let result: RunResult = resp.body_json().unwrap();
        assert_eq!(result.output, "1572480");
        let health = client.send(&Request::new(Method::Get, "/health")).unwrap();
        assert_eq!(health.status, 200);
    }

    #[test]
    fn results_carry_a_span_tree() {
        let h = host(TeePlatform::Tdx);
        let result = h.execute(&request(TeePlatform::Tdx, VmKind::Secure)).unwrap();
        let trace = result.trace.expect("host attaches a trace");
        assert_eq!(trace.name, "host.execute");
        assert_eq!(trace.attr("trials"), Some(3));
        assert!(trace.find("launcher.bootstrap").is_some(), "bootstrap span present");
        let measured = trace.find("perf.measure").expect("measured-trial span");
        assert_eq!(measured.attr("vm_exits"), Some(result.perf.vm_exits));
    }

    #[test]
    fn v1_routes_are_canonical_and_legacy_paths_deprecated() {
        let agent = Arc::new(host(TeePlatform::Tdx));
        let server = agent.serve().unwrap();
        let client = confbench_httpd::Client::new(server.addr());

        let v1 = client
            .send(
                &Request::new(Method::Post, "/v1/execute")
                    .json(&request(TeePlatform::Tdx, VmKind::Normal)),
            )
            .unwrap();
        assert_eq!(v1.status, 200);
        assert!(!v1.headers.contains_key("deprecation"));

        let legacy = client.send(&Request::new(Method::Get, "/health")).unwrap();
        assert_eq!(legacy.status, 200);
        assert_eq!(legacy.headers.get("deprecation").map(String::as_str), Some("true"));
        assert_eq!(
            legacy.headers.get("link").map(String::as_str),
            Some("</v1/health>; rel=\"successor-version\""),
        );
    }

    #[test]
    fn http_statuses_match_gateway_mapping() {
        let agent = Arc::new(host(TeePlatform::Tdx));
        let server = agent.serve().unwrap();
        let client = confbench_httpd::Client::new(server.addr());
        // Unknown function → 404 (used to be a generic 500).
        let mut req = request(TeePlatform::Tdx, VmKind::Secure);
        req.function.name = "missing".into();
        let resp = client.send(&Request::new(Method::Post, "/execute").json(&req)).unwrap();
        assert_eq!(resp.status, 404);
        // Wrong platform → invalid request → 400.
        let req = request(TeePlatform::SevSnp, VmKind::Secure);
        let resp = client.send(&Request::new(Method::Post, "/execute").json(&req)).unwrap();
        assert_eq!(resp.status, 400);
    }
}

//! TEE pools, load balancing, and member health (paper §III-A: "the gateway
//! maintains TEE pools to load-balance workload requests across different
//! types of TEEs"; providers adjust the policy to their needs).
//!
//! Beyond balancing, every member carries health state: consecutive transport
//! failures trip a per-member circuit breaker, [`TeePool::checkout_healthy`]
//! skips tripped members, and an open circuit re-admits a single probe
//! request after a cooldown (classic closed → open → half-open breaker).
//! Time is injected through [`Clock`] so cooldown behaviour is testable
//! without sleeping.

use std::sync::Arc;

use confbench_obs::{Counter, MetricsRegistry};
use parking_lot::Mutex;

// The clock abstraction moved to `confbench-types` (shared with the span
// recorder); re-exported here so existing `confbench::{Clock, ManualClock,
// SystemClock}` paths keep working.
pub use confbench_types::{Clock, ManualClock, SystemClock};

/// A load-balancing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancePolicy {
    /// Rotate through members in order.
    RoundRobin,
    /// Pick the member with the fewest in-flight requests.
    LeastLoaded,
}

/// Circuit-breaker tuning for pool members.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive failures that open a member's circuit.
    pub failure_threshold: u32,
    /// How long an open circuit stays closed to traffic before admitting a
    /// half-open probe.
    pub cooldown_ms: u64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy { failure_threshold: 3, cooldown_ms: 5_000 }
    }
}

/// Externally visible circuit state of one pool member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Healthy: traffic flows normally.
    Closed,
    /// Tripped: skipped by [`TeePool::checkout_healthy`] until cooldown.
    Open,
    /// Cooldown elapsed: one probe request is (or may be) in flight.
    HalfOpen,
}

/// Internal circuit representation.
#[derive(Debug, Clone, Copy)]
enum Circuit {
    Closed,
    Open {
        since_ms: u64,
    },
    /// `probing` is true while the single trial request is checked out.
    HalfOpen {
        probing: bool,
    },
}

struct MemberState {
    inflight: u64,
    served: u64,
    consecutive_failures: u32,
    circuit: Circuit,
}

impl MemberState {
    fn new() -> Self {
        MemberState { inflight: 0, served: 0, consecutive_failures: 0, circuit: Circuit::Closed }
    }
}

/// All mutable pool state lives under one lock so selection and accounting
/// are a single atomic step (a load-then-increment pair of atomics let two
/// concurrent least-loaded checkouts pick the same member).
struct PoolState {
    cursor: usize,
    members: Vec<MemberState>,
}

/// A pool of interchangeable execution targets for one VM target.
///
/// # Example
///
/// ```
/// use confbench::{BalancePolicy, TeePool};
///
/// let pool = TeePool::new(vec!["host-a", "host-b"], BalancePolicy::RoundRobin);
/// let first = pool.checkout();
/// let second = pool.checkout();
/// assert_ne!(*first.member(), *second.member());
/// ```
pub struct TeePool<T> {
    entries: Vec<T>,
    policy: BalancePolicy,
    health: HealthPolicy,
    clock: Arc<dyn Clock>,
    state: Mutex<PoolState>,
    metrics: Option<PoolMetrics>,
}

/// Cached counter handles so the hot path never takes the registry lock.
struct PoolMetrics {
    checkouts: Arc<Counter>,
    served: Arc<Counter>,
    probes: Arc<Counter>,
    circuit_opened: Arc<Counter>,
}

impl<T> TeePool<T> {
    /// Creates a pool over `members` with default health policy and the
    /// system clock.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<T>, policy: BalancePolicy) -> Self {
        TeePool::with_health(members, policy, HealthPolicy::default(), Arc::new(SystemClock))
    }

    /// Creates a pool with explicit circuit-breaker tuning and clock.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn with_health(
        members: Vec<T>,
        policy: BalancePolicy,
        health: HealthPolicy,
        clock: Arc<dyn Clock>,
    ) -> Self {
        assert!(!members.is_empty(), "a pool needs at least one member");
        let state =
            PoolState { cursor: 0, members: members.iter().map(|_| MemberState::new()).collect() };
        TeePool { entries: members, policy, health, clock, state: Mutex::new(state), metrics: None }
    }

    /// Publishes the pool's checkout/served/circuit events as counters in
    /// `registry`, labelled `{platform="<label>"}`:
    ///
    /// * `pool_checkouts_total` — checkouts granted (probes included);
    /// * `pool_served_total` — requests completed (guard dropped), so it
    ///   always equals the sum of [`TeePool::served_counts`];
    /// * `pool_probes_total` — half-open circuit probes admitted;
    /// * `pool_circuit_opened_total` — closed/half-open → open transitions.
    pub fn with_metrics(mut self, registry: &MetricsRegistry, label: &str) -> Self {
        let name = |base: &str| format!("{base}{{platform=\"{label}\"}}");
        self.metrics = Some(PoolMetrics {
            checkouts: registry.counter(&name("pool_checkouts_total")),
            served: registry.counter(&name("pool_served_total")),
            probes: registry.counter(&name("pool_probes_total")),
            circuit_opened: registry.counter(&name("pool_circuit_opened_total")),
        });
        self
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty (impossible by construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The active policy.
    pub fn policy(&self) -> BalancePolicy {
        self.policy
    }

    /// The circuit-breaker tuning.
    pub fn health_policy(&self) -> HealthPolicy {
        self.health
    }

    /// Selects a member per the policy — ignoring health — returning a guard
    /// that tracks the request as in-flight until dropped.
    pub fn checkout(&self) -> PoolGuard<'_, T> {
        let mut state = self.state.lock();
        let idx = self.select(&mut state, |_| true).expect("non-empty pool");
        self.admit(&mut state, idx, false)
    }

    /// Selects a healthy member (circuit closed, or open-past-cooldown — in
    /// which case this checkout is the half-open probe). Returns `None` when
    /// every member's circuit is open.
    pub fn checkout_healthy(&self) -> Option<PoolGuard<'_, T>> {
        self.checkout_healthy_excluding(None)
    }

    /// As [`TeePool::checkout_healthy`], but avoids member `exclude` (the one
    /// that just failed) when any other healthy member exists. Falls back to
    /// the excluded member rather than failing if it is the only healthy one.
    pub fn checkout_healthy_excluding(&self, exclude: Option<usize>) -> Option<PoolGuard<'_, T>> {
        let now = self.clock.now_ms();
        let mut state = self.state.lock();
        // Open circuits past cooldown become half-open (probe admissible)
        // before selection, for every member, so availability is uniform.
        for m in &mut state.members {
            if let Circuit::Open { since_ms } = m.circuit {
                if now.saturating_sub(since_ms) >= self.health.cooldown_ms {
                    m.circuit = Circuit::HalfOpen { probing: false };
                }
            }
        }
        let available = |m: &MemberState| {
            matches!(m.circuit, Circuit::Closed | Circuit::HalfOpen { probing: false })
        };
        let idx = self
            .select(&mut state, |(i, m)| available(m) && Some(i) != exclude)
            .or_else(|| self.select(&mut state, |(_, m)| available(m)))?;
        let probe = matches!(state.members[idx].circuit, Circuit::HalfOpen { probing: false });
        if probe {
            state.members[idx].circuit = Circuit::HalfOpen { probing: true };
        }
        Some(self.admit(&mut state, idx, probe))
    }

    /// Records the result of a checked-out request for circuit accounting.
    ///
    /// `success` should be true whenever the *member* did its job — including
    /// application-level errors like an unknown function — and false only for
    /// transport-class failures that indicate the member itself is unhealthy.
    pub fn report_outcome(&self, guard: &PoolGuard<'_, T>, success: bool) {
        let mut state = self.state.lock();
        guard.reported.set(true);
        let m = &mut state.members[guard.idx];
        if success {
            m.consecutive_failures = 0;
            m.circuit = Circuit::Closed;
        } else {
            m.consecutive_failures += 1;
            let trip = matches!(m.circuit, Circuit::HalfOpen { .. })
                || m.consecutive_failures >= self.health.failure_threshold;
            if trip {
                let was_open = matches!(m.circuit, Circuit::Open { .. });
                m.circuit = Circuit::Open { since_ms: self.clock.now_ms() };
                if !was_open {
                    if let Some(metrics) = &self.metrics {
                        metrics.circuit_opened.inc();
                    }
                }
            }
        }
    }

    /// Requests completed per member (counted when the guard drops).
    pub fn served_counts(&self) -> Vec<u64> {
        self.state.lock().members.iter().map(|m| m.served).collect()
    }

    /// Requests currently in flight per member.
    pub fn inflight_counts(&self) -> Vec<u64> {
        self.state.lock().members.iter().map(|m| m.inflight).collect()
    }

    /// Circuit state per member.
    pub fn circuit_states(&self) -> Vec<CircuitState> {
        self.state
            .lock()
            .members
            .iter()
            .map(|m| match m.circuit {
                Circuit::Closed => CircuitState::Closed,
                Circuit::Open { .. } => CircuitState::Open,
                Circuit::HalfOpen { .. } => CircuitState::HalfOpen,
            })
            .collect()
    }

    /// Applies the balance policy over members passing `eligible`, without
    /// mutating anything but the round-robin cursor.
    fn select(
        &self,
        state: &mut PoolState,
        eligible: impl Fn((usize, &MemberState)) -> bool,
    ) -> Option<usize> {
        let n = self.entries.len();
        match self.policy {
            BalancePolicy::RoundRobin => {
                for step in 0..n {
                    let i = (state.cursor + step) % n;
                    if eligible((i, &state.members[i])) {
                        state.cursor = i + 1;
                        return Some(i);
                    }
                }
                None
            }
            BalancePolicy::LeastLoaded => state
                .members
                .iter()
                .enumerate()
                .filter(|(i, m)| eligible((*i, m)))
                .min_by_key(|(_, m)| m.inflight)
                .map(|(i, _)| i),
        }
    }

    /// Marks `idx` in flight and builds its guard. Must run under the same
    /// lock acquisition as selection — that is the race fix.
    fn admit<'a>(&'a self, state: &mut PoolState, idx: usize, probe: bool) -> PoolGuard<'a, T> {
        state.members[idx].inflight += 1;
        if let Some(metrics) = &self.metrics {
            metrics.checkouts.inc();
            if probe {
                metrics.probes.inc();
            }
        }
        PoolGuard { pool: self, idx, probe, reported: std::cell::Cell::new(false) }
    }
}

/// Checkout guard: dereferences to the member; on drop releases the
/// in-flight count and counts the request as served (completion-time
/// accounting, so `served_counts` means "finished", not "started").
pub struct PoolGuard<'a, T> {
    pool: &'a TeePool<T>,
    idx: usize,
    probe: bool,
    reported: std::cell::Cell<bool>,
}

impl<T> PoolGuard<'_, T> {
    /// The selected member.
    pub fn member(&self) -> &T {
        &self.pool.entries[self.idx]
    }

    /// The selected member's index within the pool.
    pub fn index(&self) -> usize {
        self.idx
    }

    /// Whether this checkout is a half-open circuit probe.
    pub fn is_probe(&self) -> bool {
        self.probe
    }
}

impl<T> Drop for PoolGuard<'_, T> {
    fn drop(&mut self) {
        let mut state = self.pool.state.lock();
        let m = &mut state.members[self.idx];
        m.inflight -= 1;
        m.served += 1;
        if let Some(metrics) = &self.pool.metrics {
            metrics.served.inc();
        }
        // A probe abandoned without a verdict frees the probe slot so the
        // next healthy checkout can try again.
        if self.probe && !self.reported.get() {
            if let Circuit::HalfOpen { probing: true } = m.circuit {
                m.circuit = Circuit::HalfOpen { probing: false };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual_pool(n: usize) -> (TeePool<usize>, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let pool = TeePool::with_health(
            (0..n).collect(),
            BalancePolicy::RoundRobin,
            HealthPolicy { failure_threshold: 2, cooldown_ms: 100 },
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        (pool, clock)
    }

    #[test]
    fn round_robin_rotates_evenly() {
        let pool = TeePool::new(vec![0, 1, 2], BalancePolicy::RoundRobin);
        for _ in 0..9 {
            let _ = pool.checkout();
        }
        assert_eq!(pool.served_counts(), vec![3, 3, 3]);
    }

    #[test]
    fn least_loaded_prefers_idle_member() {
        let pool = TeePool::new(vec!["a", "b"], BalancePolicy::LeastLoaded);
        let busy = pool.checkout(); // "a" now has 1 in flight
        let next = pool.checkout();
        assert_eq!(*next.member(), "b");
        drop(next);
        drop(busy);
        // Everything idle again: first member wins ties.
        let after = pool.checkout();
        assert_eq!(*after.member(), "a");
    }

    #[test]
    fn guard_drop_releases_load_and_counts_completion() {
        let pool = TeePool::new(vec!["only"], BalancePolicy::LeastLoaded);
        {
            let _g1 = pool.checkout();
            let _g2 = pool.checkout();
            // Nothing finished yet: served counts completions, not checkouts.
            assert_eq!(pool.served_counts(), vec![0]);
            assert_eq!(pool.inflight_counts(), vec![2]);
        }
        assert_eq!(pool.served_counts(), vec![2]);
        let g = pool.checkout();
        assert_eq!(*g.member(), "only");
        assert_eq!(pool.inflight_counts(), vec![1]);
        drop(g);
        assert_eq!(pool.served_counts(), vec![3]);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_pool_rejected() {
        let _: TeePool<u8> = TeePool::new(vec![], BalancePolicy::RoundRobin);
    }

    #[test]
    fn pool_is_sync_for_concurrent_checkout() {
        let pool = std::sync::Arc::new(TeePool::new(vec![0, 1, 2, 3], BalancePolicy::RoundRobin));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = std::sync::Arc::clone(&pool);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let _ = pool.checkout();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.served_counts().iter().sum::<u64>(), 400);
    }

    #[test]
    fn least_loaded_never_double_picks_under_contention() {
        // With selection and admission under one lock, two concurrent
        // checkouts from an idle 2-member pool must land on different
        // members. Run many rounds to make a regression (select-then-
        // increment race) extremely likely to surface.
        let pool = TeePool::new(vec![0usize, 1], BalancePolicy::LeastLoaded);
        for _ in 0..200 {
            let barrier = std::sync::Barrier::new(2);
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        s.spawn(|| {
                            barrier.wait();
                            let g = pool.checkout();
                            let picked = *g.member();
                            // Hold the guard until both threads have picked,
                            // so both checkouts overlap.
                            barrier.wait();
                            picked
                        })
                    })
                    .collect();
                let mut picked: Vec<usize> =
                    handles.into_iter().map(|h| h.join().unwrap()).collect();
                picked.sort_unstable();
                assert_eq!(picked, vec![0, 1], "least-loaded double-picked a member");
            });
        }
    }

    #[test]
    fn failures_trip_circuit_and_checkouts_skip_it() {
        let (pool, _clock) = manual_pool(2);
        for _ in 0..2 {
            let g = pool.checkout_healthy().unwrap();
            if g.index() == 0 {
                pool.report_outcome(&g, false);
            } else {
                pool.report_outcome(&g, true);
            }
        }
        // Member 0 saw only one failure so far (round robin alternates);
        // drive it to the threshold.
        while pool.circuit_states()[0] == CircuitState::Closed {
            let g = pool.checkout_healthy_excluding(Some(1)).unwrap();
            assert_eq!(g.index(), 0);
            pool.report_outcome(&g, false);
        }
        assert_eq!(pool.circuit_states()[0], CircuitState::Open);
        for _ in 0..4 {
            let g = pool.checkout_healthy().unwrap();
            assert_eq!(g.index(), 1, "open circuit must be skipped");
            pool.report_outcome(&g, true);
        }
    }

    #[test]
    fn open_circuit_admits_single_probe_after_cooldown() {
        let (pool, clock) = manual_pool(1);
        for _ in 0..2 {
            let g = pool.checkout_healthy().unwrap();
            pool.report_outcome(&g, false);
        }
        assert_eq!(pool.circuit_states(), vec![CircuitState::Open]);
        assert!(pool.checkout_healthy().is_none(), "open circuit, no cooldown yet");

        clock.advance(100);
        let probe = pool.checkout_healthy().expect("cooldown elapsed: probe admitted");
        assert!(probe.is_probe());
        // Only one probe at a time.
        assert!(pool.checkout_healthy().is_none());
        pool.report_outcome(&probe, true);
        drop(probe);
        assert_eq!(pool.circuit_states(), vec![CircuitState::Closed]);
        assert!(pool.checkout_healthy().is_some());
    }

    #[test]
    fn failed_probe_reopens_circuit() {
        let (pool, clock) = manual_pool(1);
        for _ in 0..2 {
            let g = pool.checkout_healthy().unwrap();
            pool.report_outcome(&g, false);
        }
        clock.advance(100);
        let probe = pool.checkout_healthy().unwrap();
        pool.report_outcome(&probe, false);
        drop(probe);
        assert_eq!(pool.circuit_states(), vec![CircuitState::Open]);
        assert!(pool.checkout_healthy().is_none(), "failed probe restarts cooldown");
        clock.advance(100);
        assert!(pool.checkout_healthy().is_some());
    }

    #[test]
    fn abandoned_probe_frees_the_slot() {
        let (pool, clock) = manual_pool(1);
        for _ in 0..2 {
            let g = pool.checkout_healthy().unwrap();
            pool.report_outcome(&g, false);
        }
        clock.advance(100);
        let probe = pool.checkout_healthy().unwrap();
        drop(probe); // no verdict reported
        let retry = pool.checkout_healthy().expect("slot freed for the next probe");
        assert!(retry.is_probe());
    }

    #[test]
    fn excluding_prefers_other_members_but_falls_back() {
        let (pool, _clock) = manual_pool(2);
        let g = pool.checkout_healthy_excluding(Some(0)).unwrap();
        assert_eq!(g.index(), 1);
        drop(g);
        // Trip member 1; excluding member 0 must still fall back to it.
        for _ in 0..2 {
            let g = pool.checkout_healthy_excluding(Some(0)).unwrap();
            pool.report_outcome(&g, false);
        }
        assert_eq!(pool.circuit_states()[1], CircuitState::Open);
        let g = pool.checkout_healthy_excluding(Some(0)).unwrap();
        assert_eq!(g.index(), 0, "excluded member is better than none");
    }

    #[test]
    fn metrics_track_checkouts_served_and_circuit_trips() {
        let registry = MetricsRegistry::new();
        let clock = Arc::new(ManualClock::new());
        let pool = TeePool::with_health(
            vec![0usize],
            BalancePolicy::RoundRobin,
            HealthPolicy { failure_threshold: 2, cooldown_ms: 100 },
            Arc::clone(&clock) as Arc<dyn Clock>,
        )
        .with_metrics(&registry, "tdx");

        for _ in 0..2 {
            let g = pool.checkout_healthy().unwrap();
            pool.report_outcome(&g, false);
        }
        assert_eq!(registry.counter_value("pool_checkouts_total{platform=\"tdx\"}"), Some(2));
        assert_eq!(
            registry.counter_value("pool_served_total{platform=\"tdx\"}"),
            Some(pool.served_counts().iter().sum()),
        );
        assert_eq!(registry.counter_value("pool_circuit_opened_total{platform=\"tdx\"}"), Some(1));

        // Cooldown elapses: the probe is counted, and its failure re-opens
        // the circuit (a second open transition).
        clock.advance(100);
        let probe = pool.checkout_healthy().unwrap();
        pool.report_outcome(&probe, false);
        drop(probe);
        assert_eq!(registry.counter_value("pool_probes_total{platform=\"tdx\"}"), Some(1));
        assert_eq!(registry.counter_value("pool_circuit_opened_total{platform=\"tdx\"}"), Some(2));
    }

    #[test]
    fn success_resets_failure_streak() {
        let (pool, _clock) = manual_pool(1);
        let g = pool.checkout_healthy().unwrap();
        pool.report_outcome(&g, false);
        drop(g);
        let g = pool.checkout_healthy().unwrap();
        pool.report_outcome(&g, true);
        drop(g);
        // The earlier failure no longer counts toward the threshold.
        let g = pool.checkout_healthy().unwrap();
        pool.report_outcome(&g, false);
        drop(g);
        assert_eq!(pool.circuit_states(), vec![CircuitState::Closed]);
    }
}

//! TEE pools and load balancing (paper §III-A: "the gateway maintains TEE
//! pools to load-balance workload requests across different types of TEEs";
//! providers adjust the policy to their needs).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A load-balancing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancePolicy {
    /// Rotate through members in order.
    RoundRobin,
    /// Pick the member with the fewest in-flight requests.
    LeastLoaded,
}

struct Entry<T> {
    member: T,
    inflight: AtomicU64,
    served: AtomicU64,
}

/// A pool of interchangeable execution targets for one VM target.
///
/// # Example
///
/// ```
/// use confbench::{BalancePolicy, TeePool};
///
/// let pool = TeePool::new(vec!["host-a", "host-b"], BalancePolicy::RoundRobin);
/// let first = pool.checkout();
/// let second = pool.checkout();
/// assert_ne!(*first.member(), *second.member());
/// ```
pub struct TeePool<T> {
    entries: Vec<Entry<T>>,
    policy: BalancePolicy,
    cursor: AtomicUsize,
}

impl<T> TeePool<T> {
    /// Creates a pool over `members`.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<T>, policy: BalancePolicy) -> Self {
        assert!(!members.is_empty(), "a pool needs at least one member");
        TeePool {
            entries: members
                .into_iter()
                .map(|member| Entry {
                    member,
                    inflight: AtomicU64::new(0),
                    served: AtomicU64::new(0),
                })
                .collect(),
            policy,
            cursor: AtomicUsize::new(0),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty (impossible by construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The active policy.
    pub fn policy(&self) -> BalancePolicy {
        self.policy
    }

    /// Selects a member per the policy, returning a guard that tracks the
    /// request as in-flight until dropped.
    pub fn checkout(&self) -> PoolGuard<'_, T> {
        let idx = match self.policy {
            BalancePolicy::RoundRobin => {
                self.cursor.fetch_add(1, Ordering::Relaxed) % self.entries.len()
            }
            BalancePolicy::LeastLoaded => self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.inflight.load(Ordering::Relaxed))
                .map(|(i, _)| i)
                .expect("non-empty pool"),
        };
        let entry = &self.entries[idx];
        entry.inflight.fetch_add(1, Ordering::SeqCst);
        entry.served.fetch_add(1, Ordering::SeqCst);
        PoolGuard { entry }
    }

    /// Total requests served per member (diagnostics).
    pub fn served_counts(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.served.load(Ordering::SeqCst)).collect()
    }
}

/// Checkout guard: dereferences to the member; releases the in-flight count
/// on drop.
pub struct PoolGuard<'a, T> {
    entry: &'a Entry<T>,
}

impl<T> PoolGuard<'_, T> {
    /// The selected member.
    pub fn member(&self) -> &T {
        &self.entry.member
    }
}

impl<T> Drop for PoolGuard<'_, T> {
    fn drop(&mut self) {
        self.entry.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rotates_evenly() {
        let pool = TeePool::new(vec![0, 1, 2], BalancePolicy::RoundRobin);
        for _ in 0..9 {
            let _ = pool.checkout();
        }
        assert_eq!(pool.served_counts(), vec![3, 3, 3]);
    }

    #[test]
    fn least_loaded_prefers_idle_member() {
        let pool = TeePool::new(vec!["a", "b"], BalancePolicy::LeastLoaded);
        let busy = pool.checkout(); // "a" now has 1 in flight
        let next = pool.checkout();
        assert_eq!(*next.member(), "b");
        drop(next);
        drop(busy);
        // Everything idle again: first member wins ties.
        let after = pool.checkout();
        assert_eq!(*after.member(), "a");
    }

    #[test]
    fn guard_drop_releases_load() {
        let pool = TeePool::new(vec!["only"], BalancePolicy::LeastLoaded);
        {
            let _g1 = pool.checkout();
            let _g2 = pool.checkout();
        }
        // Both released; least-loaded sees zero in-flight.
        let g = pool.checkout();
        assert_eq!(*g.member(), "only");
        assert_eq!(pool.served_counts(), vec![3]);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_pool_rejected() {
        let _: TeePool<u8> = TeePool::new(vec![], BalancePolicy::RoundRobin);
    }

    #[test]
    fn pool_is_sync_for_concurrent_checkout() {
        let pool = std::sync::Arc::new(TeePool::new(vec![0, 1, 2, 3], BalancePolicy::RoundRobin));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = std::sync::Arc::clone(&pool);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let _ = pool.checkout();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.served_counts().iter().sum::<u64>(), 400);
    }
}

//! The ConfBench gateway: the single entry point for all requests (paper
//! §III-A, Fig. 2).
//!
//! Users upload functions and submit run requests over REST; the gateway
//! selects a VM target from its TEE pools, dispatches to the owning host
//! (in-process or over HTTP), and returns results with perf metrics
//! piggybacked.
//!
//! Dispatch is resilient: transport failures are retried under a
//! [`RetryPolicy`] (exponential backoff with deterministic seeded jitter),
//! each retry fails over to a *different* healthy pool member, repeated
//! failures open the member's circuit breaker (see
//! [`TeePool`](crate::TeePool)), and an optional per-request deadline
//! ([`RunRequest::deadline_ms`]) bounds the whole affair — including the
//! remote HTTP timeout, which is clamped to the time remaining.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use confbench_httpd::{Client, Method, Request, Response, Router, Server, ServerConfig};
use confbench_obs::{ActiveSpan, Counter, Histogram, MetricsRegistry, SpanRecorder};
use confbench_types::{Error, Result, RunRequest, RunResult, TeePlatform, VmTarget};
use parking_lot::Mutex;
use rand::{rngs::StdRng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

use confbench_vmm::TeeFaultPlan;

use crate::attest_api::{
    gate_request, AttestConfig, AttestService, AttestSessionInfo, AttestSessionRequest,
    ExtendRequest,
};
use crate::host::{HostAgent, HostConfig};
use crate::pool::{BalancePolicy, CircuitState, Clock, HealthPolicy, SystemClock, TeePool};
use crate::rest::add_versioned;
use crate::store::FunctionStore;
use crate::supervisor::DEFAULT_REBUILD_BUDGET;

/// Default remote-dispatch timeout when the request carries no deadline.
const DEFAULT_REMOTE_TIMEOUT: Duration = Duration::from_secs(30);

/// Retry/backoff tuning for gateway dispatch.
///
/// Only transport-class failures (connection refused/dropped, bad wire
/// responses) are retried; application errors such as an unknown function
/// are returned immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request (first try included). Clamped to ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_backoff_ms: u64,
    /// Backoff ceiling.
    pub max_backoff_ms: u64,
    /// Jitter the backoff in `[delay/2, delay]` from the gateway's seeded
    /// RNG (deterministic per gateway instance).
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, base_backoff_ms: 50, max_backoff_ms: 2_000, jitter: true }
    }
}

impl RetryPolicy {
    /// The `Retry-After` hint (whole seconds, minimum 1) the REST layer
    /// attaches to 503 and 429 responses: the backoff ceiling, i.e. how long
    /// a client that has already retried and lost would wait. Deriving the
    /// header from the same policy that drives the gateway's own retries
    /// keeps the two in agreement.
    pub fn retry_after_secs(&self) -> u64 {
        self.max_backoff_ms.div_ceil(1_000).max(1)
    }
}

/// A dispatch target: a host in this process or a remote agent address.
/// Remote targets carry a persistent [`Client`] built once at gateway
/// construction, so every dispatch (and circuit-breaker probe) reuses
/// pooled keep-alive sockets instead of paying a fresh TCP connect.
#[derive(Clone)]
enum HostRef {
    Local(Arc<HostAgent>),
    Remote { addr: SocketAddr, client: Client },
}

/// A host registration, resolved into a [`HostRef`] at build time so the
/// builder's final clock/seed apply no matter the call order.
enum HostSpec {
    Local,
    Remote(SocketAddr),
}

/// Builder for a [`Gateway`].
pub struct GatewayBuilder {
    store: Arc<FunctionStore>,
    hosts: Vec<(TeePlatform, HostSpec)>,
    policy: BalancePolicy,
    retry: RetryPolicy,
    health: HealthPolicy,
    clock: Arc<dyn Clock>,
    metrics: Arc<MetricsRegistry>,
    seed: u64,
    http: ServerConfig,
    chaos: Option<Arc<TeeFaultPlan>>,
    rebuild_budget: u32,
    attest: AttestConfig,
    attest_service: Option<Arc<AttestService>>,
}

impl GatewayBuilder {
    /// Adds an in-process host for `platform` (its two VMs boot in
    /// [`GatewayBuilder::build`], with the builder's final seed and clock).
    pub fn local_host(mut self, platform: TeePlatform) -> Self {
        self.hosts.push((platform, HostSpec::Local));
        self
    }

    /// Registers a remote host agent serving `platform` at `addr`.
    pub fn remote_host(mut self, platform: TeePlatform, addr: SocketAddr) -> Self {
        self.hosts.push((platform, HostSpec::Remote(addr)));
        self
    }

    /// Sets the pool balancing policy (default round-robin).
    pub fn policy(mut self, policy: BalancePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the retry/backoff policy (default 3 attempts, 50 ms base).
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the circuit-breaker tuning for all pools.
    pub fn health(mut self, health: HealthPolicy) -> Self {
        self.health = health;
        self
    }

    /// Injects the clock driving circuit cooldowns and trace-span
    /// timestamps (tests use [`ManualClock`](crate::ManualClock)).
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Shares an external metrics registry (default: a fresh one, reachable
    /// through [`Gateway::metrics`]).
    pub fn metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = metrics;
        self
    }

    /// Sets the deterministic seed used for local hosts' VMs and backoff
    /// jitter.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs a chaos schedule: local hosts' VM boots and executions
    /// roll against `plan` at every TEE mechanism crossing, exercising the
    /// supervisors' retry/rebuild/quarantine machinery. (Defaults from
    /// `CONFBENCH_CHAOS_SEED` / `CONFBENCH_CHAOS_RATE` when unset — see
    /// [`TeeFaultPlan::from_env`].)
    pub fn chaos(mut self, plan: Arc<TeeFaultPlan>) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Sets the per-VM-slot rebuild budget before quarantine (default
    /// [`DEFAULT_REBUILD_BUDGET`]).
    pub fn rebuild_budget(mut self, budget: u32) -> Self {
        self.rebuild_budget = budget;
        self
    }

    /// Tunes the attestation-session layer (TTL, cache capacity). Defaults
    /// from `CONFBENCH_ATTEST_TTL_MS` / `CONFBENCH_ATTEST_CACHE_CAPACITY`
    /// when unset — see [`AttestConfig::from_env`].
    pub fn attest(mut self, config: AttestConfig) -> Self {
        self.attest = config;
        self
    }

    /// Shares a pre-built [`AttestService`] instead of constructing a
    /// private one. The fleet layer passes one service to every shard so
    /// the session cache's single-flight and the collateral refresher's
    /// claim slots span the whole fleet — N shards cold-verifying the same
    /// TCB identity do *one* PCS collateral cycle, not N.
    pub fn attest_service(mut self, service: Arc<AttestService>) -> Self {
        self.attest_service = Some(service);
        self
    }

    /// Shares a pre-built [`FunctionStore`] (default: a fresh empty one).
    /// Fleet shards share one store so every shard fingerprints a function
    /// identically and content addresses agree fleet-wide.
    pub fn store(mut self, store: Arc<FunctionStore>) -> Self {
        self.store = store;
        self
    }

    /// Tunes the REST listener's connection layer (handler worker pool
    /// size, connection admission window, keep-alive timeouts; socket I/O
    /// itself runs on the listener's epoll reactor). The `Retry-After`
    /// hint on
    /// backpressure 503s always comes from the gateway's [`RetryPolicy`],
    /// overriding whatever the passed config says, so the header and the
    /// retry machinery agree.
    pub fn http(mut self, http: ServerConfig) -> Self {
        self.http = http;
        self
    }

    /// Builds the gateway.
    ///
    /// # Panics
    ///
    /// Panics if no host was added.
    pub fn build(self) -> Gateway {
        assert!(!self.hosts.is_empty(), "gateway needs at least one host");
        let recorder = SpanRecorder::new(Arc::clone(&self.clock));
        let attest = self.attest_service.unwrap_or_else(|| {
            Arc::new(AttestService::new(
                self.seed,
                self.attest,
                Arc::clone(&self.clock),
                Some(&self.metrics),
            ))
        });
        let mut by_platform: HashMap<TeePlatform, Vec<HostRef>> = HashMap::new();
        for (platform, spec) in self.hosts {
            let host = match spec {
                // Local hosts share the gateway's recorder so the whole
                // request tree is stamped on one clock, its metrics
                // registry so supervision counters surface in /v1/metrics,
                // its retry policy for in-supervisor transient backoff, and
                // its attestation service so supervisor rebuilds re-attest
                // through the shared session cache.
                HostSpec::Local => HostRef::Local(Arc::new(HostAgent::with_config(
                    platform,
                    Arc::clone(&self.store),
                    recorder.clone(),
                    HostConfig {
                        seed: self.seed,
                        retry: self.retry,
                        rebuild_budget: self.rebuild_budget,
                        faults: self.chaos.clone(),
                        metrics: Some(Arc::clone(&self.metrics)),
                        attest: Some(Arc::clone(&attest)),
                    },
                ))),
                HostSpec::Remote(addr) => HostRef::Remote { addr, client: Client::new(addr) },
            };
            by_platform.entry(platform).or_default().push(host);
        }
        let pools = by_platform
            .into_iter()
            .map(|(platform, hosts)| {
                let pool =
                    TeePool::with_health(hosts, self.policy, self.health, Arc::clone(&self.clock))
                        .with_metrics(&self.metrics, &platform.to_string());
                (platform, pool)
            })
            .collect();
        let counters = GatewayCounters::register(&self.metrics);
        // Backpressure 503s and rejected-campaign 429s must hint the same
        // backoff, so the listener's Retry-After is derived from the retry
        // policy rather than trusted from the http config.
        let mut http = self.http;
        http.retry_after_secs = self.retry.retry_after_secs();
        Gateway {
            store: self.store,
            pools,
            retry: self.retry,
            jitter_rng: Mutex::new(StdRng::seed_from_u64(self.seed ^ 0x9E37_79B9_7F4A_7C15)),
            metrics: self.metrics,
            recorder,
            counters,
            http,
            attest,
        }
    }
}

/// Cached gateway-level instrument handles.
struct GatewayCounters {
    requests: Arc<Counter>,
    failures: Arc<Counter>,
    retries: Arc<Counter>,
    run_ms: Arc<Histogram>,
}

impl GatewayCounters {
    fn register(metrics: &MetricsRegistry) -> Self {
        GatewayCounters {
            requests: metrics.counter("gateway_requests_total"),
            failures: metrics.counter("gateway_requests_failed_total"),
            retries: metrics.counter("gateway_retries_total"),
            run_ms: metrics.histogram("gateway_run_ms", &[1, 10, 100, 1_000, 10_000]),
        }
    }
}

/// Body of `POST /functions`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UploadRequest {
    /// Function name.
    pub name: String,
    /// CBScript source.
    pub script: String,
}

/// The gateway.
///
/// # Example
///
/// ```
/// use confbench::Gateway;
/// use confbench_types::{FunctionSpec, Language, RunRequest, TeePlatform, VmTarget};
///
/// let gateway = Gateway::builder().local_host(TeePlatform::SevSnp).build();
/// let req = RunRequest::new(
///     FunctionSpec::new("fib", Language::LuaJit).arg("15"),
///     VmTarget::secure(TeePlatform::SevSnp),
/// );
/// let result = gateway.run(&req)?;
/// assert_eq!(result.output, "610");
/// # Ok::<(), confbench_types::Error>(())
/// ```
pub struct Gateway {
    store: Arc<FunctionStore>,
    pools: HashMap<TeePlatform, TeePool<HostRef>>,
    retry: RetryPolicy,
    jitter_rng: Mutex<StdRng>,
    metrics: Arc<MetricsRegistry>,
    recorder: SpanRecorder,
    counters: GatewayCounters,
    http: ServerConfig,
    attest: Arc<AttestService>,
}

impl Gateway {
    /// Starts building a gateway.
    pub fn builder() -> GatewayBuilder {
        GatewayBuilder {
            store: Arc::new(FunctionStore::new()),
            hosts: Vec::new(),
            policy: BalancePolicy::RoundRobin,
            retry: RetryPolicy::default(),
            health: HealthPolicy::default(),
            clock: Arc::new(SystemClock),
            metrics: Arc::new(MetricsRegistry::new()),
            seed: 0,
            http: ServerConfig::default(),
            chaos: TeeFaultPlan::from_env(),
            rebuild_budget: DEFAULT_REBUILD_BUDGET,
            attest: AttestConfig::from_env(),
            attest_service: None,
        }
    }

    /// The attestation-session service (the `/v1/attest` resource).
    pub fn attest(&self) -> &Arc<AttestService> {
        &self.attest
    }

    /// The function database.
    pub fn store(&self) -> &FunctionStore {
        &self.store
    }

    /// The function store as a shareable handle (what the fleet layer hands
    /// to every shard so content addresses agree fleet-wide).
    pub fn store_handle(&self) -> &Arc<FunctionStore> {
        &self.store
    }

    /// The gateway's metrics registry (what `GET /v1/metrics` renders).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Platforms with at least one pooled host.
    pub fn platforms(&self) -> Vec<TeePlatform> {
        let mut v: Vec<TeePlatform> = self.pools.keys().copied().collect();
        v.sort();
        v
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Circuit states of `platform`'s pool members (diagnostics/tests).
    pub fn circuit_states(&self, platform: TeePlatform) -> Option<Vec<CircuitState>> {
        self.pools.get(&platform).map(|p| p.circuit_states())
    }

    /// Completed requests per member of `platform`'s pool.
    pub fn served_counts(&self, platform: TeePlatform) -> Option<Vec<u64>> {
        self.pools.get(&platform).map(|p| p.served_counts())
    }

    /// Dispatches a run request to a host serving its target platform,
    /// retrying transport failures on different healthy members per the
    /// gateway's [`RetryPolicy`], within the request's deadline (if any).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidRequest`] when `trials == 0` (nothing to measure);
    /// [`Error::NoVmAvailable`] when no pool serves the platform or every
    /// member's circuit is open; [`Error::DeadlineExceeded`] when
    /// `deadline_ms` elapses first; the host's own error when the request
    /// itself is at fault (unknown function, wrong platform); the last
    /// transport error when retries are exhausted.
    ///
    /// On success [`RunResult::trace`] carries the full span tree: a
    /// `gateway.run` root (with `retry_attempt` and counter attributes)
    /// over the executing host's `host.execute` subtree.
    pub fn run(&self, request: &RunRequest) -> Result<RunResult> {
        self.counters.requests.inc();
        let mut root = self.recorder.root("gateway.run");
        match self.dispatch(request, &mut root) {
            Ok(mut result) => {
                if let Some(host_trace) = result.trace.take() {
                    root.adopt(host_trace);
                }
                root.set_attr("vm_exits", result.perf.vm_exits);
                root.set_attr("bounce_bytes", result.perf.bounce_bytes);
                self.counters.run_ms.observe(result.stats.mean_ms.round() as u64);
                result.trace = Some(root.finish());
                Ok(result)
            }
            Err(e) => {
                self.counters.failures.inc();
                Err(e)
            }
        }
    }

    /// The dispatch loop behind [`Gateway::run`] (separated so the span can
    /// be finalized uniformly on both exits).
    fn dispatch(&self, request: &RunRequest, root: &mut ActiveSpan) -> Result<RunResult> {
        if request.trials == 0 {
            return Err(Error::InvalidRequest("trials must be at least 1 (got 0)".into()));
        }
        // Attestation gate: a live session token skips verification (one
        // cache lookup); a dead one re-verifies through the session cache
        // before the request reaches a pool.
        if request.attest_session.is_some() {
            let mut attest_span = root.child("attest.verify");
            let gate = gate_request(&self.attest, request);
            match &gate {
                Ok(Some(outcome)) => {
                    attest_span.set_attr(
                        "session_cached",
                        u64::from(outcome.source == confbench_attest::SessionSource::CacheHit),
                    );
                    attest_span
                        .set_attr("network_us", (outcome.timing.network_ms * 1_000.0) as u64);
                }
                _ => attest_span.set_attr("failed", 1),
            }
            root.finish_child(attest_span);
            gate?;
        }
        let deadline = request.deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
        let pool = self
            .pools
            .get(&request.target.platform)
            .ok_or_else(|| Error::NoVmAvailable(request.target.to_string()))?;

        let attempts = self.retry.max_attempts.max(1);
        let mut prev: Option<usize> = None;
        let mut last_err: Option<Error> = None;
        for attempt in 0..attempts {
            // Overwritten each pass: the surviving value is the attempt that
            // produced the final outcome (0 = no retries were needed).
            root.set_attr("retry_attempt", u64::from(attempt));
            if attempt > 0 {
                self.counters.retries.inc();
                self.sleep_backoff(attempt - 1, deadline, request, last_err.as_ref())?;
            }
            // An expired deadline is final on every dispatch path — local
            // execution can't be cancelled mid-run, so refuse to start it.
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(deadline_error(request, last_err.as_ref()));
            }
            let Some(guard) = pool.checkout_healthy_excluding(prev) else {
                return Err(match last_err {
                    Some(e) => e,
                    None => Error::NoVmAvailable(format!(
                        "{}: all pool members have open circuits",
                        request.target
                    )),
                });
            };
            prev = Some(guard.index());
            let outcome = match guard.member() {
                HostRef::Local(host) => host.execute(request),
                HostRef::Remote { addr, client } => match remote_timeout(deadline) {
                    Some(timeout) => dispatch_remote(client, *addr, request, timeout),
                    None => Err(deadline_error(request, last_err.as_ref())),
                },
            };
            match outcome {
                Ok(result) => {
                    pool.report_outcome(&guard, true);
                    return Ok(result);
                }
                Err(e) => {
                    // Classification is centralized on the error type:
                    // member-indicting failures (transport, I/O, TEE
                    // faults) count against the circuit breaker, and any
                    // of them is worth a failover retry — a fatal TEE
                    // fault dooms that member (quarantine), not the
                    // request. Errors that indict neither (unknown
                    // function, invalid request) are final.
                    let member_ok = !e.indicts_member();
                    pool.report_outcome(&guard, member_ok);
                    if !e.is_transient() && member_ok {
                        return Err(e);
                    }
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.expect("retry loop ran at least once"))
    }

    /// Sleeps the exponential backoff for retry number `retry` (0-based),
    /// clamped to the remaining deadline.
    fn sleep_backoff(
        &self,
        retry: u32,
        deadline: Option<Instant>,
        request: &RunRequest,
        last_err: Option<&Error>,
    ) -> Result<()> {
        let exp = self.retry.base_backoff_ms.saturating_shl(retry.min(20));
        let delay = exp.min(self.retry.max_backoff_ms);
        let delay = if self.retry.jitter && delay > 1 {
            let half = delay / 2;
            half + self.jitter_rng.lock().next_u64() % (delay - half + 1)
        } else {
            delay
        };
        let mut sleep = Duration::from_millis(delay);
        if let Some(deadline) = deadline {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(deadline_error(request, last_err));
            }
            sleep = sleep.min(remaining);
        }
        std::thread::sleep(sleep);
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                return Err(deadline_error(request, last_err));
            }
        }
        Ok(())
    }

    /// Convenience: run the same function on the secure and normal VM of
    /// `platform` and return both results (the paper's core measurement).
    ///
    /// # Errors
    ///
    /// As [`Gateway::run`].
    pub fn run_pair(
        &self,
        mut request: RunRequest,
        platform: TeePlatform,
    ) -> Result<(RunResult, RunResult)> {
        request.target = VmTarget::secure(platform);
        let secure = self.run(&request)?;
        request.target = VmTarget::normal(platform);
        let normal = self.run(&request)?;
        Ok((secure, normal))
    }

    /// Serves the gateway's REST interface. Canonical routes live under
    /// `/v1`; the original unversioned paths still answer, marked with a
    /// `Deprecation: true` header.
    ///
    /// * `POST /v1/run` — JSON [`RunRequest`] body → [`RunResult`];
    /// * `POST /v1/functions` — JSON [`UploadRequest`] body;
    /// * `GET /v1/functions` — registered names;
    /// * `POST /v1/attest/sessions` — verify a platform, mint a session
    ///   token (JSON [`AttestSessionRequest`] body → 201);
    /// * `GET/DELETE /v1/attest/sessions/{id}` — session status / revoke;
    /// * `POST /v1/attest/sessions/{id}/extend` — extend an e-vTPM runtime
    ///   register, invalidating the session;
    /// * `GET /v1/metrics` — Prometheus-style text, or the JSON snapshot
    ///   with `?format=json` (new in v1, no legacy alias);
    /// * `GET /v1/health`.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn serve(self: Arc<Self>) -> std::io::Result<Server> {
        self.serve_on("127.0.0.1:0")
    }

    /// As [`Gateway::serve`] on an explicit listen address.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn serve_on(self: Arc<Self>, listen: &str) -> std::io::Result<Server> {
        let config = self.http;
        let metrics = Arc::clone(&self.metrics);
        let router = self.build_router();
        Server::build(router).config(config).metrics(metrics).spawn(listen)
    }

    /// As [`Gateway::serve_on`], additionally mounting the campaign
    /// scheduler's routes (`/v1/campaigns`, `/v1/jobs/{id}`). The scheduler
    /// must have been built over this gateway (see
    /// `confbench_sched::Executor`); callers typically also
    /// `spawn_workers` on it.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn serve_with_scheduler(
        self: Arc<Self>,
        sched: Arc<confbench_sched::Scheduler>,
        listen: &str,
    ) -> std::io::Result<Server> {
        let config = self.http;
        let metrics = Arc::clone(&self.metrics);
        let mut router = self.build_router();
        confbench_sched::rest::add_routes(&mut router, sched);
        Server::build(router).config(config).metrics(metrics).spawn(listen)
    }

    /// Builds the gateway's REST router (shared by [`Gateway::serve_on`] and
    /// [`Gateway::serve_with_scheduler`]).
    fn build_router(self: &Arc<Self>) -> Router {
        let mut router = Router::new();
        let gw = Arc::clone(self);
        add_versioned(&mut router, Method::Post, "/run", move |req, _| {
            match req.body_json::<RunRequest>() {
                Err(e) => Response::error(400, format!("bad request body: {e}")),
                Ok(run_request) => match gw.run(&run_request) {
                    Ok(result) => Response::json(&result),
                    Err(e) => error_response(&e, &gw.retry),
                },
            }
        });
        let gw = Arc::clone(self);
        add_versioned(&mut router, Method::Post, "/functions", move |req, _| {
            match req.body_json::<UploadRequest>() {
                Err(e) => Response::error(400, format!("bad upload body: {e}")),
                Ok(upload) => match gw.store.upload(&upload.name, &upload.script) {
                    Ok(()) => {
                        let mut r = Response::json(&serde_json::json!({"uploaded": upload.name}));
                        r.status = 201;
                        r
                    }
                    Err(e) => {
                        let e = Error::from(e);
                        Response::error(e.rest_status(), e.to_string())
                    }
                },
            }
        });
        let gw = Arc::clone(self);
        add_versioned(&mut router, Method::Get, "/functions", move |_, _| {
            Response::json(&gw.store.names())
        });
        // The attestation-session resource. Canonical under /v1 with
        // deprecated unversioned aliases, like every other resource.
        let gw = Arc::clone(self);
        add_versioned(&mut router, Method::Post, "/attest/sessions", move |req, _| {
            match req.body_json::<AttestSessionRequest>() {
                Err(e) => Response::error(400, format!("bad attest body: {e}")),
                Ok(body) => match gw.attest.open_session(body.platform, body.nonce) {
                    Ok(outcome) => {
                        let mut r = Response::json(&AttestSessionInfo::from_outcome(&outcome));
                        r.status = 201;
                        r
                    }
                    Err(e) => error_response(&e, &gw.retry),
                },
            }
        });
        let gw = Arc::clone(self);
        add_versioned(&mut router, Method::Get, "/attest/sessions/:id", move |_, params| match gw
            .attest
            .session(&params["id"])
        {
            Some(session) => Response::json(&AttestSessionInfo::from_session(&session)),
            None => Response::error(404, format!("unknown attest session {:?}", params["id"])),
        });
        let gw = Arc::clone(self);
        add_versioned(
            &mut router,
            Method::Delete,
            "/attest/sessions/:id",
            move |_, params| match gw.attest.revoke(&params["id"]) {
                Some(session) => Response::json(&AttestSessionInfo::from_session(&session)),
                None => Response::error(404, format!("unknown attest session {:?}", params["id"])),
            },
        );
        let gw = Arc::clone(self);
        add_versioned(
            &mut router,
            Method::Post,
            "/attest/sessions/:id/extend",
            move |req, params| match req.body_json::<ExtendRequest>() {
                Err(e) => Response::error(400, format!("bad extend body: {e}")),
                Ok(body) => {
                    match gw.attest.extend(&params["id"], body.index, body.data.as_bytes()) {
                        Ok(Some(session)) => {
                            Response::json(&AttestSessionInfo::from_session(&session))
                        }
                        Ok(None) => Response::error(
                            404,
                            format!("unknown attest session {:?}", params["id"]),
                        ),
                        Err(e) => error_response(&e, &gw.retry),
                    }
                }
            },
        );
        let gw = Arc::clone(self);
        // Metrics are new in v1: canonical path only, no deprecated alias.
        router.add(Method::Get, "/v1/metrics", move |req, _| {
            if req.query.get("format").map(String::as_str) == Some("json") {
                Response::json(&gw.metrics.snapshot())
            } else {
                Response::text(gw.metrics.render_text())
            }
        });
        add_versioned(&mut router, Method::Get, "/health", |_, _| {
            Response::json(&serde_json::json!({"ok": true}))
        });
        router
    }
}

/// Renders a gateway error as a REST response per the shared status table,
/// attaching `Retry-After` to the retryable statuses (503 pool exhaustion /
/// open circuits, 429 queue overflow) so well-behaved clients back off as
/// long as the gateway itself would.
fn error_response(e: &Error, retry: &RetryPolicy) -> Response {
    let status = e.rest_status();
    let mut response = Response::error(status, e.to_string());
    if matches!(status, 503 | 429) {
        response.headers.insert("retry-after".into(), retry.retry_after_secs().to_string());
    }
    response
}

/// The gateway is the scheduler's execution backend: jobs dispatch through
/// the same retry/health/deadline machinery as interactive `/v1/run`
/// requests, and result-cache keys incorporate the stored function's source
/// hash so editing a script invalidates its cached cells.
impl confbench_sched::Executor for Gateway {
    fn execute(&self, request: &RunRequest) -> Result<RunResult> {
        self.run(request)
    }

    fn function_fingerprint(&self, name: &str) -> Option<String> {
        use confbench_faasrt::FaasFunction as _;
        let function = self.store.get(name)?;
        Some(confbench_crypto::Sha256::digest(function.script().as_bytes()).to_string())
    }
}

/// `u64::checked_shl` with saturation (`saturating_shl` is unstable).
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> Self {
        if self == 0 {
            0
        } else if rhs > self.leading_zeros() {
            u64::MAX
        } else {
            self << rhs
        }
    }
}

fn deadline_error(request: &RunRequest, last_err: Option<&Error>) -> Error {
    let budget = request.deadline_ms.unwrap_or(0);
    match last_err {
        Some(e) => Error::DeadlineExceeded(format!("{budget}ms budget elapsed; last error: {e}")),
        None => Error::DeadlineExceeded(format!("{budget}ms budget elapsed")),
    }
}

/// Time budget for one remote dispatch: the full remaining deadline, or the
/// 30 s default when the request has none. `None` means already expired.
fn remote_timeout(deadline: Option<Instant>) -> Option<Duration> {
    match deadline {
        None => Some(DEFAULT_REMOTE_TIMEOUT),
        Some(deadline) => {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                None
            } else {
                Some(remaining.min(DEFAULT_REMOTE_TIMEOUT))
            }
        }
    }
}

fn dispatch_remote(
    client: &Client,
    addr: SocketAddr,
    request: &RunRequest,
    timeout: Duration,
) -> Result<RunResult> {
    let http_request = Request::new(Method::Post, "/v1/execute").json(request);
    let response = client
        .send_with_timeout(&http_request, timeout)
        .map_err(|e| Error::Transport(format!("host {addr}: {e}")))?;
    let body = || String::from_utf8_lossy(&response.body).into_owned();
    // Remote agents answer with the shared `Error::rest_status` table, so
    // translate statuses back into the matching typed errors instead of
    // flattening everything into `Transport`.
    match response.status {
        200 => response
            .body_json()
            .map_err(|e| Error::Transport(format!("host {addr} sent bad result: {e}"))),
        // The body holds the rendered message, not the bare name — keep the
        // reconstruction from the request to avoid a doubled prefix.
        404 => Err(Error::UnknownFunction(request.function.name.clone())),
        status => Err(Error::from_rest_status(status, body()).unwrap_or_else(|| {
            Error::Transport(format!("host {addr} returned {status}: {}", body()))
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_types::{FunctionSpec, Language};

    fn request(name: &str, language: Language, platform: TeePlatform) -> RunRequest {
        RunRequest::new(FunctionSpec::new(name, language).arg("360360"), VmTarget::secure(platform))
    }

    #[test]
    fn runs_on_local_host() {
        let gw = Gateway::builder().local_host(TeePlatform::Tdx).build();
        let result = gw.run(&request("factors", Language::Wasm, TeePlatform::Tdx)).unwrap();
        assert_eq!(result.output, "1572480");
    }

    #[test]
    fn missing_platform_reports_no_vm() {
        let gw = Gateway::builder().local_host(TeePlatform::Tdx).build();
        let err = gw.run(&request("factors", Language::Go, TeePlatform::Cca)).unwrap_err();
        assert!(matches!(err, Error::NoVmAvailable(_)));
    }

    #[test]
    fn run_pair_targets_both_kinds() {
        let gw = Gateway::builder().local_host(TeePlatform::SevSnp).build();
        let (secure, normal) = gw
            .run_pair(request("iostress", Language::Go, TeePlatform::SevSnp), TeePlatform::SevSnp)
            .unwrap();
        assert_eq!(secure.target, VmTarget::secure(TeePlatform::SevSnp));
        assert_eq!(normal.target, VmTarget::normal(TeePlatform::SevSnp));
        assert_eq!(secure.output, normal.output);
    }

    #[test]
    fn rest_interface_end_to_end() {
        let gw = Arc::new(Gateway::builder().local_host(TeePlatform::Tdx).build());
        let server = Arc::clone(&gw).serve().unwrap();
        let client = Client::new(server.addr());

        // Upload (Fig. 2 step 1).
        let upload = Request::new(Method::Post, "/functions").json(&UploadRequest {
            name: "quadruple".into(),
            script: "result(int(ARGS[0]) * 4);".into(),
        });
        assert_eq!(client.send(&upload).unwrap().status, 201);

        // List includes the upload.
        let names: Vec<String> =
            client.send(&Request::new(Method::Get, "/functions")).unwrap().body_json().unwrap();
        assert!(names.contains(&"quadruple".to_owned()));

        // Run it (Fig. 2 steps 2-5).
        let run = Request::new(Method::Post, "/run").json(&RunRequest::new(
            FunctionSpec::new("quadruple", Language::Lua).arg("21"),
            VmTarget::secure(TeePlatform::Tdx),
        ));
        let resp = client.send(&run).unwrap();
        assert_eq!(resp.status, 200);
        let result: RunResult = resp.body_json().unwrap();
        assert_eq!(result.output, "84");

        // Unknown function maps to 404.
        let bad = Request::new(Method::Post, "/run").json(&RunRequest::new(
            FunctionSpec::new("ghost", Language::Lua),
            VmTarget::secure(TeePlatform::Tdx),
        ));
        assert_eq!(client.send(&bad).unwrap().status, 404);

        // Unpooled platform maps to 503.
        let no_vm = Request::new(Method::Post, "/run").json(&RunRequest::new(
            FunctionSpec::new("quadruple", Language::Lua).arg("1"),
            VmTarget::secure(TeePlatform::Cca),
        ));
        assert_eq!(client.send(&no_vm).unwrap().status, 503);
    }

    #[test]
    fn remote_host_dispatch_over_http() {
        let store = Arc::new(FunctionStore::new());
        let agent = Arc::new(HostAgent::new(TeePlatform::SevSnp, store, 5));
        let host_server = Arc::clone(&agent).serve().unwrap();

        let gw = Gateway::builder().remote_host(TeePlatform::SevSnp, host_server.addr()).build();
        let result = gw.run(&request("factors", Language::Go, TeePlatform::SevSnp)).unwrap();
        assert_eq!(result.output, "1572480");
    }

    #[test]
    fn remote_unknown_function_maps_back_to_404_error() {
        let store = Arc::new(FunctionStore::new());
        let agent = Arc::new(HostAgent::new(TeePlatform::Tdx, store, 5));
        let host_server = Arc::clone(&agent).serve().unwrap();
        let gw = Gateway::builder().remote_host(TeePlatform::Tdx, host_server.addr()).build();
        let err = gw.run(&request("ghost", Language::Go, TeePlatform::Tdx)).unwrap_err();
        assert!(matches!(err, Error::UnknownFunction(_)), "got {err}");
    }

    #[test]
    fn pool_balances_across_hosts() {
        let gw =
            Gateway::builder().local_host(TeePlatform::Tdx).local_host(TeePlatform::Tdx).build();
        // Two hosts in the TDX pool; round robin must alternate without
        // error across several runs.
        for _ in 0..4 {
            gw.run(&request("factors", Language::Go, TeePlatform::Tdx)).unwrap();
        }
        assert_eq!(gw.platforms(), vec![TeePlatform::Tdx]);
        assert_eq!(gw.served_counts(TeePlatform::Tdx), Some(vec![2, 2]));
    }

    #[test]
    fn retries_fail_over_to_reachable_host() {
        // One dead remote + one live local host: the run must succeed via
        // failover, and the dead member must accumulate a failure.
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let gw = Gateway::builder()
            .remote_host(TeePlatform::Tdx, dead)
            .local_host(TeePlatform::Tdx)
            .retry(RetryPolicy { base_backoff_ms: 1, ..RetryPolicy::default() })
            .build();
        for _ in 0..4 {
            let result = gw.run(&request("factors", Language::Go, TeePlatform::Tdx)).unwrap();
            assert_eq!(result.output, "1572480");
        }
    }

    #[test]
    fn zero_deadline_trips_before_remote_dispatch() {
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let gw = Gateway::builder().remote_host(TeePlatform::Tdx, dead).build();
        let mut req = request("factors", Language::Go, TeePlatform::Tdx);
        req.deadline_ms = Some(0);
        let err = gw.run(&req).unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded(_)), "got {err}");
    }

    #[test]
    fn zero_deadline_trips_before_local_dispatch_too() {
        // Parity with the remote path: an expired budget must not start a
        // local execution either (it can't be cancelled once running).
        let gw = Gateway::builder().local_host(TeePlatform::Tdx).build();
        let mut req = request("factors", Language::Go, TeePlatform::Tdx);
        req.deadline_ms = Some(0);
        let err = gw.run(&req).unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded(_)), "got {err}");
    }

    #[test]
    fn zero_trials_rejected_as_invalid_request() {
        let gw = Gateway::builder().local_host(TeePlatform::Tdx).build();
        let mut req = request("factors", Language::Go, TeePlatform::Tdx);
        req.trials = 0;
        let err = gw.run(&req).unwrap_err();
        assert!(matches!(err, Error::InvalidRequest(_)), "got {err}");
        assert_eq!(err.rest_status(), 400);
    }

    #[test]
    fn results_carry_the_gateway_span_tree() {
        let gw = Gateway::builder().local_host(TeePlatform::Tdx).build();
        let result = gw.run(&request("factors", Language::Go, TeePlatform::Tdx)).unwrap();
        let trace = result.trace.expect("gateway attaches a trace");
        assert_eq!(trace.name, "gateway.run");
        assert_eq!(trace.attr("retry_attempt"), Some(0));
        assert_eq!(trace.attr("vm_exits"), Some(result.perf.vm_exits));
        assert_eq!(trace.attr("bounce_bytes"), Some(result.perf.bounce_bytes));
        let host = trace.find("host.execute").expect("host subtree adopted");
        assert!(host.find("perf.measure").is_some());
    }

    #[test]
    fn remote_dispatch_round_trips_the_trace() {
        let store = Arc::new(FunctionStore::new());
        let agent = Arc::new(HostAgent::new(TeePlatform::Tdx, store, 5));
        let host_server = Arc::clone(&agent).serve().unwrap();
        let gw = Gateway::builder().remote_host(TeePlatform::Tdx, host_server.addr()).build();
        let result = gw.run(&request("factors", Language::Go, TeePlatform::Tdx)).unwrap();
        let trace = result.trace.expect("trace survives the HTTP hop");
        assert_eq!(trace.name, "gateway.run");
        assert!(trace.find("host.execute").is_some(), "remote subtree adopted");
    }

    #[test]
    fn metrics_count_requests_and_pool_serves() {
        let gw = Gateway::builder().local_host(TeePlatform::Tdx).build();
        gw.run(&request("factors", Language::Go, TeePlatform::Tdx)).unwrap();
        gw.run(&request("ghost", Language::Go, TeePlatform::Tdx)).unwrap_err();
        let m = gw.metrics();
        assert_eq!(m.counter_value("gateway_requests_total"), Some(2));
        assert_eq!(m.counter_value("gateway_requests_failed_total"), Some(1));
        // Pool-served counter equals the pool's own served tally.
        let served: u64 = gw.served_counts(TeePlatform::Tdx).unwrap().iter().sum();
        assert_eq!(m.counter_value("pool_served_total{platform=\"tdx\"}"), Some(served));
    }

    #[test]
    fn v1_metrics_endpoint_serves_text_and_json() {
        let gw = Arc::new(Gateway::builder().local_host(TeePlatform::Tdx).build());
        let server = Arc::clone(&gw).serve().unwrap();
        let client = Client::new(server.addr());

        let run = Request::new(Method::Post, "/v1/run").json(&request(
            "factors",
            Language::Go,
            TeePlatform::Tdx,
        ));
        let resp = client.send(&run).unwrap();
        assert_eq!(resp.status, 200);
        assert!(!resp.headers.contains_key("deprecation"), "canonical path is not deprecated");

        let text = client.send(&Request::new(Method::Get, "/v1/metrics")).unwrap();
        assert_eq!(text.status, 200);
        let body = String::from_utf8(text.body).unwrap();
        assert!(body.contains("gateway_requests_total 1"), "text exposition:\n{body}");
        assert!(body.contains("pool_served_total{platform=\"tdx\"} 1"), "text exposition:\n{body}");

        let json = client.send(&Request::new(Method::Get, "/v1/metrics?format=json")).unwrap();
        assert_eq!(json.status, 200);
        let snap: confbench_obs::RegistrySnapshot = json.body_json().unwrap();
        assert_eq!(snap.counters.get("gateway_requests_total"), Some(&1));

        // No legacy alias: metrics are v1-only.
        assert_eq!(client.send(&Request::new(Method::Get, "/metrics")).unwrap().status, 404);
    }

    #[test]
    fn legacy_gateway_routes_answer_with_deprecation_headers() {
        let gw = Arc::new(Gateway::builder().local_host(TeePlatform::Tdx).build());
        let server = Arc::clone(&gw).serve().unwrap();
        let client = Client::new(server.addr());

        let legacy = client.send(&Request::new(Method::Get, "/health")).unwrap();
        assert_eq!(legacy.status, 200);
        assert_eq!(legacy.headers.get("deprecation").map(String::as_str), Some("true"));
        assert_eq!(
            legacy.headers.get("link").map(String::as_str),
            Some("</v1/health>; rel=\"successor-version\""),
        );

        let canonical = client.send(&Request::new(Method::Get, "/v1/health")).unwrap();
        assert_eq!(canonical.status, 200);
        assert!(!canonical.headers.contains_key("deprecation"));
    }

    #[test]
    fn saturating_shl_caps() {
        assert_eq!(100u64.saturating_shl(1), 200);
        assert_eq!(1u64.saturating_shl(63), 1 << 63);
        assert_eq!(1u64.saturating_shl(64), u64::MAX);
        assert_eq!(u64::MAX.saturating_shl(1), u64::MAX);
        assert_eq!(0u64.saturating_shl(64), 0);
    }
}

//! The ConfBench gateway: the single entry point for all requests (paper
//! §III-A, Fig. 2).
//!
//! Users upload functions and submit run requests over REST; the gateway
//! selects a VM target from its TEE pools, dispatches to the owning host
//! (in-process or over HTTP), and returns results with perf metrics
//! piggybacked.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;

use confbench_httpd::{Client, Method, Request, Response, Router, Server};
use confbench_types::{Error, Result, RunRequest, RunResult, TeePlatform, VmTarget};
use serde::{Deserialize, Serialize};

use crate::host::HostAgent;
use crate::pool::{BalancePolicy, TeePool};
use crate::store::FunctionStore;

/// A dispatch target: a host in this process or a remote agent address.
#[derive(Clone)]
enum HostRef {
    Local(Arc<HostAgent>),
    Remote(SocketAddr),
}

/// Builder for a [`Gateway`].
pub struct GatewayBuilder {
    store: Arc<FunctionStore>,
    hosts: Vec<(TeePlatform, HostRef)>,
    policy: BalancePolicy,
    seed: u64,
}

impl GatewayBuilder {
    /// Adds an in-process host for `platform` (booting its two VMs).
    pub fn local_host(mut self, platform: TeePlatform) -> Self {
        let host = Arc::new(HostAgent::new(platform, Arc::clone(&self.store), self.seed));
        self.hosts.push((platform, HostRef::Local(host)));
        self
    }

    /// Registers a remote host agent serving `platform` at `addr`.
    pub fn remote_host(mut self, platform: TeePlatform, addr: SocketAddr) -> Self {
        self.hosts.push((platform, HostRef::Remote(addr)));
        self
    }

    /// Sets the pool balancing policy (default round-robin).
    pub fn policy(mut self, policy: BalancePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the deterministic seed used for local hosts' VMs.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the gateway.
    ///
    /// # Panics
    ///
    /// Panics if no host was added.
    pub fn build(self) -> Gateway {
        assert!(!self.hosts.is_empty(), "gateway needs at least one host");
        let mut by_platform: HashMap<TeePlatform, Vec<HostRef>> = HashMap::new();
        for (platform, host) in self.hosts {
            by_platform.entry(platform).or_default().push(host);
        }
        let pools = by_platform
            .into_iter()
            .map(|(platform, hosts)| (platform, TeePool::new(hosts, self.policy)))
            .collect();
        Gateway { store: self.store, pools }
    }
}

/// Body of `POST /functions`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UploadRequest {
    /// Function name.
    pub name: String,
    /// CBScript source.
    pub script: String,
}

/// The gateway.
///
/// # Example
///
/// ```
/// use confbench::Gateway;
/// use confbench_types::{FunctionSpec, Language, RunRequest, TeePlatform, VmTarget};
///
/// let gateway = Gateway::builder().local_host(TeePlatform::SevSnp).build();
/// let req = RunRequest::new(
///     FunctionSpec::new("fib", Language::LuaJit).arg("15"),
///     VmTarget::secure(TeePlatform::SevSnp),
/// );
/// let result = gateway.run(&req)?;
/// assert_eq!(result.output, "610");
/// # Ok::<(), confbench_types::Error>(())
/// ```
pub struct Gateway {
    store: Arc<FunctionStore>,
    pools: HashMap<TeePlatform, TeePool<HostRef>>,
}

impl Gateway {
    /// Starts building a gateway.
    pub fn builder() -> GatewayBuilder {
        GatewayBuilder {
            store: Arc::new(FunctionStore::new()),
            hosts: Vec::new(),
            policy: BalancePolicy::RoundRobin,
            seed: 0,
        }
    }

    /// The function database.
    pub fn store(&self) -> &FunctionStore {
        &self.store
    }

    /// Platforms with at least one pooled host.
    pub fn platforms(&self) -> Vec<TeePlatform> {
        let mut v: Vec<TeePlatform> = self.pools.keys().copied().collect();
        v.sort();
        v
    }

    /// Dispatches a run request to a host serving its target platform.
    ///
    /// # Errors
    ///
    /// [`Error::NoVmAvailable`] when no pool serves the platform; transport
    /// and execution errors otherwise.
    pub fn run(&self, request: &RunRequest) -> Result<RunResult> {
        let pool = self
            .pools
            .get(&request.target.platform)
            .ok_or_else(|| Error::NoVmAvailable(request.target.to_string()))?;
        let guard = pool.checkout();
        match guard.member() {
            HostRef::Local(host) => host.execute(request),
            HostRef::Remote(addr) => dispatch_remote(*addr, request),
        }
    }

    /// Convenience: run the same function on the secure and normal VM of
    /// `platform` and return both results (the paper's core measurement).
    ///
    /// # Errors
    ///
    /// As [`Gateway::run`].
    pub fn run_pair(
        &self,
        mut request: RunRequest,
        platform: TeePlatform,
    ) -> Result<(RunResult, RunResult)> {
        request.target = VmTarget::secure(platform);
        let secure = self.run(&request)?;
        request.target = VmTarget::normal(platform);
        let normal = self.run(&request)?;
        Ok((secure, normal))
    }

    /// Serves the gateway's REST interface:
    ///
    /// * `POST /run` — JSON [`RunRequest`] body → [`RunResult`];
    /// * `POST /functions` — JSON [`UploadRequest`] body;
    /// * `GET /functions` — registered names;
    /// * `GET /health`.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn serve(self: Arc<Self>) -> std::io::Result<Server> {
        self.serve_on("127.0.0.1:0")
    }

    /// As [`Gateway::serve`] on an explicit listen address.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn serve_on(self: Arc<Self>, listen: &str) -> std::io::Result<Server> {
        let mut router = Router::new();
        let gw = Arc::clone(&self);
        router.add(Method::Post, "/run", move |req, _| match req.body_json::<RunRequest>() {
            Err(e) => Response::error(400, format!("bad request body: {e}")),
            Ok(run_request) => match gw.run(&run_request) {
                Ok(result) => Response::json(&result),
                Err(Error::UnknownFunction(name)) => {
                    Response::error(404, format!("unknown function: {name}"))
                }
                Err(Error::NoVmAvailable(t)) => {
                    Response::error(503, format!("no VM available for {t}"))
                }
                Err(e) => Response::error(500, e.to_string()),
            },
        });
        let gw = Arc::clone(&self);
        router.add(Method::Post, "/functions", move |req, _| {
            match req.body_json::<UploadRequest>() {
                Err(e) => Response::error(400, format!("bad upload body: {e}")),
                Ok(upload) => match gw.store.upload(&upload.name, &upload.script) {
                    Ok(()) => {
                        let mut r = Response::json(&serde_json::json!({"uploaded": upload.name}));
                        r.status = 201;
                        r
                    }
                    Err(e) => Response::error(400, e.to_string()),
                },
            }
        });
        let gw = Arc::clone(&self);
        router.add(Method::Get, "/functions", move |_, _| Response::json(&gw.store.names()));
        router.add(Method::Get, "/health", |_, _| {
            Response::json(&serde_json::json!({"ok": true}))
        });
        Server::spawn_on(listen, router)
    }
}

fn dispatch_remote(addr: SocketAddr, request: &RunRequest) -> Result<RunResult> {
    let client = Client::new(addr);
    let http_request = Request::new(Method::Post, "/execute").json(request);
    let response = client
        .send(&http_request)
        .map_err(|e| Error::Transport(format!("host {addr}: {e}")))?;
    if response.status != 200 {
        return Err(Error::Transport(format!(
            "host {addr} returned {}: {}",
            response.status,
            String::from_utf8_lossy(&response.body)
        )));
    }
    response
        .body_json()
        .map_err(|e| Error::Transport(format!("host {addr} sent bad result: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_types::{FunctionSpec, Language};

    fn request(name: &str, language: Language, platform: TeePlatform) -> RunRequest {
        RunRequest::new(
            FunctionSpec::new(name, language).arg("360360"),
            VmTarget::secure(platform),
        )
    }

    #[test]
    fn runs_on_local_host() {
        let gw = Gateway::builder().local_host(TeePlatform::Tdx).build();
        let result = gw.run(&request("factors", Language::Wasm, TeePlatform::Tdx)).unwrap();
        assert_eq!(result.output, "1572480");
    }

    #[test]
    fn missing_platform_reports_no_vm() {
        let gw = Gateway::builder().local_host(TeePlatform::Tdx).build();
        let err = gw.run(&request("factors", Language::Go, TeePlatform::Cca)).unwrap_err();
        assert!(matches!(err, Error::NoVmAvailable(_)));
    }

    #[test]
    fn run_pair_targets_both_kinds() {
        let gw = Gateway::builder().local_host(TeePlatform::SevSnp).build();
        let (secure, normal) = gw
            .run_pair(request("iostress", Language::Go, TeePlatform::SevSnp), TeePlatform::SevSnp)
            .unwrap();
        assert_eq!(secure.target, VmTarget::secure(TeePlatform::SevSnp));
        assert_eq!(normal.target, VmTarget::normal(TeePlatform::SevSnp));
        assert_eq!(secure.output, normal.output);
    }

    #[test]
    fn rest_interface_end_to_end() {
        let gw = Arc::new(Gateway::builder().local_host(TeePlatform::Tdx).build());
        let server = Arc::clone(&gw).serve().unwrap();
        let client = Client::new(server.addr());

        // Upload (Fig. 2 step 1).
        let upload = Request::new(Method::Post, "/functions").json(&UploadRequest {
            name: "quadruple".into(),
            script: "result(int(ARGS[0]) * 4);".into(),
        });
        assert_eq!(client.send(&upload).unwrap().status, 201);

        // List includes the upload.
        let names: Vec<String> = client
            .send(&Request::new(Method::Get, "/functions"))
            .unwrap()
            .body_json()
            .unwrap();
        assert!(names.contains(&"quadruple".to_owned()));

        // Run it (Fig. 2 steps 2-5).
        let run = Request::new(Method::Post, "/run").json(&RunRequest::new(
            FunctionSpec::new("quadruple", Language::Lua).arg("21"),
            VmTarget::secure(TeePlatform::Tdx),
        ));
        let resp = client.send(&run).unwrap();
        assert_eq!(resp.status, 200);
        let result: RunResult = resp.body_json().unwrap();
        assert_eq!(result.output, "84");

        // Unknown function maps to 404.
        let bad = Request::new(Method::Post, "/run").json(&RunRequest::new(
            FunctionSpec::new("ghost", Language::Lua),
            VmTarget::secure(TeePlatform::Tdx),
        ));
        assert_eq!(client.send(&bad).unwrap().status, 404);
    }

    #[test]
    fn remote_host_dispatch_over_http() {
        let store = Arc::new(FunctionStore::new());
        let agent = Arc::new(HostAgent::new(TeePlatform::SevSnp, store, 5));
        let host_server = Arc::clone(&agent).serve().unwrap();

        let gw = Gateway::builder().remote_host(TeePlatform::SevSnp, host_server.addr()).build();
        let result = gw.run(&request("factors", Language::Go, TeePlatform::SevSnp)).unwrap();
        assert_eq!(result.output, "1572480");
    }

    #[test]
    fn pool_balances_across_hosts() {
        let gw = Gateway::builder()
            .local_host(TeePlatform::Tdx)
            .local_host(TeePlatform::Tdx)
            .build();
        // Two hosts in the TDX pool; round robin must alternate without
        // error across several runs.
        for _ in 0..4 {
            gw.run(&request("factors", Language::Go, TeePlatform::Tdx)).unwrap();
        }
        assert_eq!(gw.platforms(), vec![TeePlatform::Tdx]);
    }
}

//! The ConfBench gateway: the single entry point for all requests (paper
//! §III-A, Fig. 2).
//!
//! Users upload functions and submit run requests over REST; the gateway
//! selects a VM target from its TEE pools, dispatches to the owning host
//! (in-process or over HTTP), and returns results with perf metrics
//! piggybacked.
//!
//! Dispatch is resilient: transport failures are retried under a
//! [`RetryPolicy`] (exponential backoff with deterministic seeded jitter),
//! each retry fails over to a *different* healthy pool member, repeated
//! failures open the member's circuit breaker (see
//! [`TeePool`](crate::TeePool)), and an optional per-request deadline
//! ([`RunRequest::deadline_ms`]) bounds the whole affair — including the
//! remote HTTP timeout, which is clamped to the time remaining.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use confbench_httpd::{Client, Method, Request, Response, Router, Server};
use confbench_types::{Error, Result, RunRequest, RunResult, TeePlatform, VmTarget};
use parking_lot::Mutex;
use rand::{rngs::StdRng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::host::HostAgent;
use crate::pool::{BalancePolicy, CircuitState, Clock, HealthPolicy, SystemClock, TeePool};
use crate::store::FunctionStore;

/// Default remote-dispatch timeout when the request carries no deadline.
const DEFAULT_REMOTE_TIMEOUT: Duration = Duration::from_secs(30);

/// Retry/backoff tuning for gateway dispatch.
///
/// Only transport-class failures (connection refused/dropped, bad wire
/// responses) are retried; application errors such as an unknown function
/// are returned immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request (first try included). Clamped to ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_backoff_ms: u64,
    /// Backoff ceiling.
    pub max_backoff_ms: u64,
    /// Jitter the backoff in `[delay/2, delay]` from the gateway's seeded
    /// RNG (deterministic per gateway instance).
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, base_backoff_ms: 50, max_backoff_ms: 2_000, jitter: true }
    }
}

/// Maps a dispatch error onto the REST status the gateway and host agents
/// both use, so local and remote execution are indistinguishable to
/// clients.
pub(crate) fn rest_status(error: &Error) -> u16 {
    match error {
        Error::UnknownFunction(_) => 404,
        Error::InvalidRequest(_) => 400,
        Error::NoVmAvailable(_) => 503,
        Error::DeadlineExceeded(_) => 504,
        _ => 500,
    }
}

/// A dispatch target: a host in this process or a remote agent address.
#[derive(Clone)]
enum HostRef {
    Local(Arc<HostAgent>),
    Remote(SocketAddr),
}

/// Builder for a [`Gateway`].
pub struct GatewayBuilder {
    store: Arc<FunctionStore>,
    hosts: Vec<(TeePlatform, HostRef)>,
    policy: BalancePolicy,
    retry: RetryPolicy,
    health: HealthPolicy,
    clock: Arc<dyn Clock>,
    seed: u64,
}

impl GatewayBuilder {
    /// Adds an in-process host for `platform` (booting its two VMs).
    pub fn local_host(mut self, platform: TeePlatform) -> Self {
        let host = Arc::new(HostAgent::new(platform, Arc::clone(&self.store), self.seed));
        self.hosts.push((platform, HostRef::Local(host)));
        self
    }

    /// Registers a remote host agent serving `platform` at `addr`.
    pub fn remote_host(mut self, platform: TeePlatform, addr: SocketAddr) -> Self {
        self.hosts.push((platform, HostRef::Remote(addr)));
        self
    }

    /// Sets the pool balancing policy (default round-robin).
    pub fn policy(mut self, policy: BalancePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the retry/backoff policy (default 3 attempts, 50 ms base).
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the circuit-breaker tuning for all pools.
    pub fn health(mut self, health: HealthPolicy) -> Self {
        self.health = health;
        self
    }

    /// Injects the clock driving circuit cooldowns (tests use
    /// [`ManualClock`](crate::ManualClock)).
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Sets the deterministic seed used for local hosts' VMs and backoff
    /// jitter.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the gateway.
    ///
    /// # Panics
    ///
    /// Panics if no host was added.
    pub fn build(self) -> Gateway {
        assert!(!self.hosts.is_empty(), "gateway needs at least one host");
        let mut by_platform: HashMap<TeePlatform, Vec<HostRef>> = HashMap::new();
        for (platform, host) in self.hosts {
            by_platform.entry(platform).or_default().push(host);
        }
        let pools = by_platform
            .into_iter()
            .map(|(platform, hosts)| {
                let pool =
                    TeePool::with_health(hosts, self.policy, self.health, Arc::clone(&self.clock));
                (platform, pool)
            })
            .collect();
        Gateway {
            store: self.store,
            pools,
            retry: self.retry,
            jitter_rng: Mutex::new(StdRng::seed_from_u64(self.seed ^ 0x9E37_79B9_7F4A_7C15)),
        }
    }
}

/// Body of `POST /functions`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UploadRequest {
    /// Function name.
    pub name: String,
    /// CBScript source.
    pub script: String,
}

/// The gateway.
///
/// # Example
///
/// ```
/// use confbench::Gateway;
/// use confbench_types::{FunctionSpec, Language, RunRequest, TeePlatform, VmTarget};
///
/// let gateway = Gateway::builder().local_host(TeePlatform::SevSnp).build();
/// let req = RunRequest::new(
///     FunctionSpec::new("fib", Language::LuaJit).arg("15"),
///     VmTarget::secure(TeePlatform::SevSnp),
/// );
/// let result = gateway.run(&req)?;
/// assert_eq!(result.output, "610");
/// # Ok::<(), confbench_types::Error>(())
/// ```
pub struct Gateway {
    store: Arc<FunctionStore>,
    pools: HashMap<TeePlatform, TeePool<HostRef>>,
    retry: RetryPolicy,
    jitter_rng: Mutex<StdRng>,
}

impl Gateway {
    /// Starts building a gateway.
    pub fn builder() -> GatewayBuilder {
        GatewayBuilder {
            store: Arc::new(FunctionStore::new()),
            hosts: Vec::new(),
            policy: BalancePolicy::RoundRobin,
            retry: RetryPolicy::default(),
            health: HealthPolicy::default(),
            clock: Arc::new(SystemClock),
            seed: 0,
        }
    }

    /// The function database.
    pub fn store(&self) -> &FunctionStore {
        &self.store
    }

    /// Platforms with at least one pooled host.
    pub fn platforms(&self) -> Vec<TeePlatform> {
        let mut v: Vec<TeePlatform> = self.pools.keys().copied().collect();
        v.sort();
        v
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Circuit states of `platform`'s pool members (diagnostics/tests).
    pub fn circuit_states(&self, platform: TeePlatform) -> Option<Vec<CircuitState>> {
        self.pools.get(&platform).map(|p| p.circuit_states())
    }

    /// Completed requests per member of `platform`'s pool.
    pub fn served_counts(&self, platform: TeePlatform) -> Option<Vec<u64>> {
        self.pools.get(&platform).map(|p| p.served_counts())
    }

    /// Dispatches a run request to a host serving its target platform,
    /// retrying transport failures on different healthy members per the
    /// gateway's [`RetryPolicy`], within the request's deadline (if any).
    ///
    /// # Errors
    ///
    /// [`Error::NoVmAvailable`] when no pool serves the platform or every
    /// member's circuit is open; [`Error::DeadlineExceeded`] when
    /// `deadline_ms` elapses first; the host's own error when the request
    /// itself is at fault (unknown function, wrong platform); the last
    /// transport error when retries are exhausted.
    pub fn run(&self, request: &RunRequest) -> Result<RunResult> {
        let deadline = request.deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
        let pool = self
            .pools
            .get(&request.target.platform)
            .ok_or_else(|| Error::NoVmAvailable(request.target.to_string()))?;

        let attempts = self.retry.max_attempts.max(1);
        let mut prev: Option<usize> = None;
        let mut last_err: Option<Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.sleep_backoff(attempt - 1, deadline, request, last_err.as_ref())?;
            }
            // An expired deadline is final on every dispatch path — local
            // execution can't be cancelled mid-run, so refuse to start it.
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(deadline_error(request, last_err.as_ref()));
            }
            let Some(guard) = pool.checkout_healthy_excluding(prev) else {
                return Err(match last_err {
                    Some(e) => e,
                    None => Error::NoVmAvailable(format!(
                        "{}: all pool members have open circuits",
                        request.target
                    )),
                });
            };
            prev = Some(guard.index());
            let outcome = match guard.member() {
                HostRef::Local(host) => host.execute(request),
                HostRef::Remote(addr) => match remote_timeout(deadline) {
                    Some(timeout) => dispatch_remote(*addr, request, timeout),
                    None => Err(deadline_error(request, last_err.as_ref())),
                },
            };
            match outcome {
                Ok(result) => {
                    pool.report_outcome(&guard, true);
                    return Ok(result);
                }
                Err(e) => {
                    // Only transport-class failures indict the member; the
                    // rest are the request's fault and are final.
                    let retryable = matches!(e, Error::Transport(_) | Error::Io(_));
                    pool.report_outcome(&guard, !retryable);
                    if !retryable {
                        return Err(e);
                    }
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.expect("retry loop ran at least once"))
    }

    /// Sleeps the exponential backoff for retry number `retry` (0-based),
    /// clamped to the remaining deadline.
    fn sleep_backoff(
        &self,
        retry: u32,
        deadline: Option<Instant>,
        request: &RunRequest,
        last_err: Option<&Error>,
    ) -> Result<()> {
        let exp = self.retry.base_backoff_ms.saturating_shl(retry.min(20));
        let delay = exp.min(self.retry.max_backoff_ms);
        let delay = if self.retry.jitter && delay > 1 {
            let half = delay / 2;
            half + self.jitter_rng.lock().next_u64() % (delay - half + 1)
        } else {
            delay
        };
        let mut sleep = Duration::from_millis(delay);
        if let Some(deadline) = deadline {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(deadline_error(request, last_err));
            }
            sleep = sleep.min(remaining);
        }
        std::thread::sleep(sleep);
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                return Err(deadline_error(request, last_err));
            }
        }
        Ok(())
    }

    /// Convenience: run the same function on the secure and normal VM of
    /// `platform` and return both results (the paper's core measurement).
    ///
    /// # Errors
    ///
    /// As [`Gateway::run`].
    pub fn run_pair(
        &self,
        mut request: RunRequest,
        platform: TeePlatform,
    ) -> Result<(RunResult, RunResult)> {
        request.target = VmTarget::secure(platform);
        let secure = self.run(&request)?;
        request.target = VmTarget::normal(platform);
        let normal = self.run(&request)?;
        Ok((secure, normal))
    }

    /// Serves the gateway's REST interface:
    ///
    /// * `POST /run` — JSON [`RunRequest`] body → [`RunResult`];
    /// * `POST /functions` — JSON [`UploadRequest`] body;
    /// * `GET /functions` — registered names;
    /// * `GET /health`.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn serve(self: Arc<Self>) -> std::io::Result<Server> {
        self.serve_on("127.0.0.1:0")
    }

    /// As [`Gateway::serve`] on an explicit listen address.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn serve_on(self: Arc<Self>, listen: &str) -> std::io::Result<Server> {
        let mut router = Router::new();
        let gw = Arc::clone(&self);
        router.add(Method::Post, "/run", move |req, _| match req.body_json::<RunRequest>() {
            Err(e) => Response::error(400, format!("bad request body: {e}")),
            Ok(run_request) => match gw.run(&run_request) {
                Ok(result) => Response::json(&result),
                Err(e) => Response::error(rest_status(&e), e.to_string()),
            },
        });
        let gw = Arc::clone(&self);
        router.add(Method::Post, "/functions", move |req, _| {
            match req.body_json::<UploadRequest>() {
                Err(e) => Response::error(400, format!("bad upload body: {e}")),
                Ok(upload) => match gw.store.upload(&upload.name, &upload.script) {
                    Ok(()) => {
                        let mut r = Response::json(&serde_json::json!({"uploaded": upload.name}));
                        r.status = 201;
                        r
                    }
                    Err(e) => Response::error(400, e.to_string()),
                },
            }
        });
        let gw = Arc::clone(&self);
        router.add(Method::Get, "/functions", move |_, _| Response::json(&gw.store.names()));
        router.add(Method::Get, "/health", |_, _| Response::json(&serde_json::json!({"ok": true})));
        Server::spawn_on(listen, router)
    }
}

/// `u64::checked_shl` with saturation (`saturating_shl` is unstable).
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> Self {
        if self == 0 {
            0
        } else if rhs > self.leading_zeros() {
            u64::MAX
        } else {
            self << rhs
        }
    }
}

fn deadline_error(request: &RunRequest, last_err: Option<&Error>) -> Error {
    let budget = request.deadline_ms.unwrap_or(0);
    match last_err {
        Some(e) => Error::DeadlineExceeded(format!("{budget}ms budget elapsed; last error: {e}")),
        None => Error::DeadlineExceeded(format!("{budget}ms budget elapsed")),
    }
}

/// Time budget for one remote dispatch: the full remaining deadline, or the
/// 30 s default when the request has none. `None` means already expired.
fn remote_timeout(deadline: Option<Instant>) -> Option<Duration> {
    match deadline {
        None => Some(DEFAULT_REMOTE_TIMEOUT),
        Some(deadline) => {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                None
            } else {
                Some(remaining.min(DEFAULT_REMOTE_TIMEOUT))
            }
        }
    }
}

fn dispatch_remote(addr: SocketAddr, request: &RunRequest, timeout: Duration) -> Result<RunResult> {
    let client = Client::new(addr).timeout(timeout);
    let http_request = Request::new(Method::Post, "/execute").json(request);
    let response =
        client.send(&http_request).map_err(|e| Error::Transport(format!("host {addr}: {e}")))?;
    let body = || String::from_utf8_lossy(&response.body).into_owned();
    // Mirror of `rest_status`: remote agents answer with the same codes a
    // local dispatch would map to, so translate them back into the matching
    // error variants instead of flattening everything into `Transport`.
    match response.status {
        200 => response
            .body_json()
            .map_err(|e| Error::Transport(format!("host {addr} sent bad result: {e}"))),
        404 => Err(Error::UnknownFunction(request.function.name.clone())),
        400 => Err(Error::InvalidRequest(body())),
        503 => Err(Error::NoVmAvailable(body())),
        504 => Err(Error::DeadlineExceeded(body())),
        status => Err(Error::Transport(format!("host {addr} returned {status}: {}", body()))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_types::{FunctionSpec, Language};

    fn request(name: &str, language: Language, platform: TeePlatform) -> RunRequest {
        RunRequest::new(FunctionSpec::new(name, language).arg("360360"), VmTarget::secure(platform))
    }

    #[test]
    fn runs_on_local_host() {
        let gw = Gateway::builder().local_host(TeePlatform::Tdx).build();
        let result = gw.run(&request("factors", Language::Wasm, TeePlatform::Tdx)).unwrap();
        assert_eq!(result.output, "1572480");
    }

    #[test]
    fn missing_platform_reports_no_vm() {
        let gw = Gateway::builder().local_host(TeePlatform::Tdx).build();
        let err = gw.run(&request("factors", Language::Go, TeePlatform::Cca)).unwrap_err();
        assert!(matches!(err, Error::NoVmAvailable(_)));
    }

    #[test]
    fn run_pair_targets_both_kinds() {
        let gw = Gateway::builder().local_host(TeePlatform::SevSnp).build();
        let (secure, normal) = gw
            .run_pair(request("iostress", Language::Go, TeePlatform::SevSnp), TeePlatform::SevSnp)
            .unwrap();
        assert_eq!(secure.target, VmTarget::secure(TeePlatform::SevSnp));
        assert_eq!(normal.target, VmTarget::normal(TeePlatform::SevSnp));
        assert_eq!(secure.output, normal.output);
    }

    #[test]
    fn rest_interface_end_to_end() {
        let gw = Arc::new(Gateway::builder().local_host(TeePlatform::Tdx).build());
        let server = Arc::clone(&gw).serve().unwrap();
        let client = Client::new(server.addr());

        // Upload (Fig. 2 step 1).
        let upload = Request::new(Method::Post, "/functions").json(&UploadRequest {
            name: "quadruple".into(),
            script: "result(int(ARGS[0]) * 4);".into(),
        });
        assert_eq!(client.send(&upload).unwrap().status, 201);

        // List includes the upload.
        let names: Vec<String> =
            client.send(&Request::new(Method::Get, "/functions")).unwrap().body_json().unwrap();
        assert!(names.contains(&"quadruple".to_owned()));

        // Run it (Fig. 2 steps 2-5).
        let run = Request::new(Method::Post, "/run").json(&RunRequest::new(
            FunctionSpec::new("quadruple", Language::Lua).arg("21"),
            VmTarget::secure(TeePlatform::Tdx),
        ));
        let resp = client.send(&run).unwrap();
        assert_eq!(resp.status, 200);
        let result: RunResult = resp.body_json().unwrap();
        assert_eq!(result.output, "84");

        // Unknown function maps to 404.
        let bad = Request::new(Method::Post, "/run").json(&RunRequest::new(
            FunctionSpec::new("ghost", Language::Lua),
            VmTarget::secure(TeePlatform::Tdx),
        ));
        assert_eq!(client.send(&bad).unwrap().status, 404);

        // Unpooled platform maps to 503.
        let no_vm = Request::new(Method::Post, "/run").json(&RunRequest::new(
            FunctionSpec::new("quadruple", Language::Lua).arg("1"),
            VmTarget::secure(TeePlatform::Cca),
        ));
        assert_eq!(client.send(&no_vm).unwrap().status, 503);
    }

    #[test]
    fn remote_host_dispatch_over_http() {
        let store = Arc::new(FunctionStore::new());
        let agent = Arc::new(HostAgent::new(TeePlatform::SevSnp, store, 5));
        let host_server = Arc::clone(&agent).serve().unwrap();

        let gw = Gateway::builder().remote_host(TeePlatform::SevSnp, host_server.addr()).build();
        let result = gw.run(&request("factors", Language::Go, TeePlatform::SevSnp)).unwrap();
        assert_eq!(result.output, "1572480");
    }

    #[test]
    fn remote_unknown_function_maps_back_to_404_error() {
        let store = Arc::new(FunctionStore::new());
        let agent = Arc::new(HostAgent::new(TeePlatform::Tdx, store, 5));
        let host_server = Arc::clone(&agent).serve().unwrap();
        let gw = Gateway::builder().remote_host(TeePlatform::Tdx, host_server.addr()).build();
        let err = gw.run(&request("ghost", Language::Go, TeePlatform::Tdx)).unwrap_err();
        assert!(matches!(err, Error::UnknownFunction(_)), "got {err}");
    }

    #[test]
    fn pool_balances_across_hosts() {
        let gw =
            Gateway::builder().local_host(TeePlatform::Tdx).local_host(TeePlatform::Tdx).build();
        // Two hosts in the TDX pool; round robin must alternate without
        // error across several runs.
        for _ in 0..4 {
            gw.run(&request("factors", Language::Go, TeePlatform::Tdx)).unwrap();
        }
        assert_eq!(gw.platforms(), vec![TeePlatform::Tdx]);
        assert_eq!(gw.served_counts(TeePlatform::Tdx), Some(vec![2, 2]));
    }

    #[test]
    fn retries_fail_over_to_reachable_host() {
        // One dead remote + one live local host: the run must succeed via
        // failover, and the dead member must accumulate a failure.
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let gw = Gateway::builder()
            .remote_host(TeePlatform::Tdx, dead)
            .local_host(TeePlatform::Tdx)
            .retry(RetryPolicy { base_backoff_ms: 1, ..RetryPolicy::default() })
            .build();
        for _ in 0..4 {
            let result = gw.run(&request("factors", Language::Go, TeePlatform::Tdx)).unwrap();
            assert_eq!(result.output, "1572480");
        }
    }

    #[test]
    fn zero_deadline_trips_before_remote_dispatch() {
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let gw = Gateway::builder().remote_host(TeePlatform::Tdx, dead).build();
        let mut req = request("factors", Language::Go, TeePlatform::Tdx);
        req.deadline_ms = Some(0);
        let err = gw.run(&req).unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded(_)), "got {err}");
    }

    #[test]
    fn zero_deadline_trips_before_local_dispatch_too() {
        // Parity with the remote path: an expired budget must not start a
        // local execution either (it can't be cancelled once running).
        let gw = Gateway::builder().local_host(TeePlatform::Tdx).build();
        let mut req = request("factors", Language::Go, TeePlatform::Tdx);
        req.deadline_ms = Some(0);
        let err = gw.run(&req).unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded(_)), "got {err}");
    }

    #[test]
    fn saturating_shl_caps() {
        assert_eq!(100u64.saturating_shl(1), 200);
        assert_eq!(1u64.saturating_shl(63), 1 << 63);
        assert_eq!(1u64.saturating_shl(64), u64::MAX);
        assert_eq!(u64::MAX.saturating_shl(1), u64::MAX);
        assert_eq!(0u64.saturating_shl(64), 0);
    }
}

//! Per-VM supervision: watchdog deadlines, transient-fault retry, fatal
//! teardown/rebuild with re-attestation, and quarantine.
//!
//! A [`VmSupervisor`] owns one VM slot (a [`VmTarget`] on a host) and runs
//! every request through a recovery loop:
//!
//! ```text
//!            ┌────────────── transient fault (backoff, retry) ──┐
//!            ▼                                                  │
//!   Healthy ──► launch fresh VM ──► run request ──► success ────┴─► done
//!            ▲                          │
//!            │                    fatal fault
//!            │                          ▼
//!            └── rebuild: fresh launch + re-attest ── budget left?
//!                                                        │ no
//!                                                        ▼
//!                                                   Quarantined
//! ```
//!
//! Every attempt runs on a *fresh* VM seeded identically, so the attempt
//! that finally succeeds produces bit-identical measurements to a run that
//! never faulted — the property the chaos suite asserts. A quarantined
//! supervisor returns its terminal fault for every later request, which
//! feeds the pool's circuit breaker: the member trips open, stays open
//! (probes keep failing), and is never selected again.

use std::sync::Arc;
use std::time::{Duration, Instant};

use confbench_attest::{SnpEcosystem, TdxEcosystem};
use confbench_obs::{ActiveSpan, Counter, Gauge, MetricsRegistry};
use confbench_types::{DeviceKind, Error, Result, TeeMechanism, TeePlatform, VmKind, VmTarget};
use confbench_vmm::{TeeFault, TeeFaultPlan, TeeVmBuilder, Vm};
use parking_lot::Mutex;
use rand::{rngs::StdRng, RngCore, SeedableRng};

use crate::attest_api::AttestService;
use crate::gateway::RetryPolicy;

/// Fatal rebuilds a supervisor tolerates over its lifetime before it
/// quarantines the slot (a real fleet replaces the machine at this point).
pub const DEFAULT_REBUILD_BUDGET: u32 = 2;

/// Mutable recovery state, under one lock.
struct SupervisorState {
    rebuilds: u32,
    quarantined: Option<TeeFault>,
}

/// Cached instrument handles (present when a registry was supplied).
struct SupervisorMetrics {
    registry: Arc<MetricsRegistry>,
    rebuilds: Arc<Counter>,
    quarantined: Arc<Gauge>,
}

/// Watchdog and recovery driver for one VM slot. See the module docs for
/// the state machine.
pub struct VmSupervisor {
    target: VmTarget,
    seed: u64,
    faults: Option<Arc<TeeFaultPlan>>,
    retry: RetryPolicy,
    rebuild_budget: u32,
    metrics: Option<SupervisorMetrics>,
    attest: Option<Arc<AttestService>>,
    jitter_rng: Mutex<StdRng>,
    state: Mutex<SupervisorState>,
}

impl VmSupervisor {
    /// Creates a supervisor for `target`. `retry` drives transient-fault
    /// backoff, `faults` is the chaos schedule (None = no injection), and
    /// `metrics` (if any) receives `vmm_faults_total`, `vm_rebuilds_total`
    /// and `vm_quarantined`.
    pub fn new(
        target: VmTarget,
        seed: u64,
        faults: Option<Arc<TeeFaultPlan>>,
        retry: RetryPolicy,
        rebuild_budget: u32,
        metrics: Option<&Arc<MetricsRegistry>>,
    ) -> Self {
        let metrics = metrics.map(|registry| {
            let label = Self::label(target);
            SupervisorMetrics {
                rebuilds: registry.counter(&format!("vm_rebuilds_total{label}")),
                quarantined: registry.gauge(&format!("vm_quarantined{label}")),
                registry: Arc::clone(registry),
            }
        });
        VmSupervisor {
            target,
            seed,
            faults,
            retry,
            rebuild_budget,
            metrics,
            attest: None,
            jitter_rng: Mutex::new(StdRng::seed_from_u64(seed ^ 0x5375_7065_7256_6973)),
            state: Mutex::new(SupervisorState { rebuilds: 0, quarantined: None }),
        }
    }

    /// Routes post-rebuild re-attestation through a shared attestation
    /// session service. With a service attached, a rebuild storm across a
    /// fleet sharing one TCB identity collapses into a single verification
    /// (single-flight on the session cache) instead of one PCS round trip
    /// per rebuild. `None` keeps the standalone per-rebuild verification.
    #[must_use]
    pub fn with_attest(mut self, attest: Option<Arc<AttestService>>) -> Self {
        self.attest = attest;
        self
    }

    fn label(target: VmTarget) -> String {
        let kind = match target.kind {
            VmKind::Secure => "secure",
            VmKind::Normal => "normal",
        };
        format!("{{platform=\"{}\",kind=\"{kind}\"}}", target.platform)
    }

    /// The supervised target.
    pub fn target(&self) -> VmTarget {
        self.target
    }

    /// Fatal rebuilds performed so far.
    pub fn rebuilds(&self) -> u32 {
        self.state.lock().rebuilds
    }

    /// The terminal fault, if the slot is quarantined.
    pub fn quarantined_fault(&self) -> Option<TeeFault> {
        self.state.lock().quarantined
    }

    /// Whether the slot is quarantined (permanently out of service).
    pub fn is_quarantined(&self) -> bool {
        self.quarantined_fault().is_some()
    }

    /// Runs `attempt` on a freshly launched VM, recovering per the state
    /// machine in the module docs. `request_seed` keeps different requests'
    /// jitter streams independent while keeping retries of the *same*
    /// request identical.
    ///
    /// # Errors
    ///
    /// The terminal [`Error::TeeFault`] when the slot is (or becomes)
    /// quarantined; [`Error::DeadlineExceeded`] when the watchdog deadline
    /// expires between attempts; the last transient fault when the retry
    /// budget runs dry *and* the subsequent rebuild escalation quarantines.
    pub fn run<T>(
        &self,
        span: &mut ActiveSpan,
        deadline: Option<Instant>,
        request_seed: u64,
        attempt: impl FnMut(&mut Vm, &mut ActiveSpan) -> std::result::Result<T, TeeFault>,
    ) -> Result<T> {
        self.run_on(None, span, deadline, request_seed, attempt)
    }

    /// As [`VmSupervisor::run`], with a confidential accelerator plugged
    /// into each attempt's VM. On a secure target every fresh VM goes
    /// through the full TDISP bring-up before the attempt runs: the
    /// interface is locked at boot, the device's measurement report is
    /// verified (through the shared attestation-session cache when one is
    /// attached, so fleet-wide device re-attestation is amortized and
    /// single-flighted), and the interface started — after which the
    /// attempt's `DevDma*` ops land directly in private memory. Device
    /// faults injected at the `tdisp-lock` / `device-attest` / `device-dma`
    /// points recover through the same retry/rebuild machinery as every
    /// other TEE fault.
    ///
    /// # Errors
    ///
    /// As [`VmSupervisor::run`].
    pub fn run_on<T>(
        &self,
        device: Option<DeviceKind>,
        span: &mut ActiveSpan,
        deadline: Option<Instant>,
        request_seed: u64,
        mut attempt: impl FnMut(&mut Vm, &mut ActiveSpan) -> std::result::Result<T, TeeFault>,
    ) -> Result<T> {
        if let Some(fault) = self.quarantined_fault() {
            return Err(fault.into());
        }
        let vm_seed = self.seed ^ request_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let max_transient = self.retry.max_attempts.max(1);
        let mut transient_used = 0u32;
        // The fault whose fatal recovery is pending: the next loop pass
        // revalidates the slot (fresh launch + re-attest) before retrying.
        let mut rebuilding: Option<TeeFault> = None;
        loop {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(Error::DeadlineExceeded(format!(
                    "watchdog deadline expired while recovering {}",
                    self.target
                )));
            }
            if rebuilding.take().is_some() {
                let mut rebuild_span = span.child("vm.rebuild");
                rebuild_span.set_attr("rebuild_no", u64::from(self.rebuilds()));
                let outcome = self.revalidate(&mut rebuild_span);
                span.finish_child(rebuild_span);
                if let Err(next) = outcome {
                    // The replacement itself faulted: charge another
                    // rebuild (or quarantine) and go around again.
                    self.note_fault(&next);
                    self.consume_rebuild_token(next)?;
                    rebuilding = Some(next);
                    continue;
                }
            }
            let outcome = match self.builder_with_device(vm_seed, device).try_build() {
                Ok(mut vm) => {
                    self.bring_up_device(&mut vm, span).and_then(|()| attempt(&mut vm, span))
                }
                Err(boot_fault) => Err(boot_fault),
            };
            let fault = match outcome {
                Ok(value) => return Ok(value),
                Err(fault) => fault,
            };
            self.note_fault(&fault);
            if fault.is_transient() && transient_used + 1 < max_transient {
                transient_used += 1;
                self.backoff(transient_used - 1, deadline)?;
                continue;
            }
            // Fatal — or a transient storm that exhausted the retry budget,
            // which we treat the same way: tear down and rebuild.
            self.consume_rebuild_token(fault)?;
            rebuilding = Some(fault);
        }
    }

    fn builder(&self, vm_seed: u64) -> TeeVmBuilder {
        let mut builder = TeeVmBuilder::new(self.target).seed(vm_seed);
        if let Some(plan) = &self.faults {
            builder = builder.fault_plan(Arc::clone(plan));
        }
        builder
    }

    fn builder_with_device(&self, vm_seed: u64, device: Option<DeviceKind>) -> TeeVmBuilder {
        let mut builder = self.builder(vm_seed);
        if let Some(kind) = device {
            builder = builder.device(kind);
        }
        builder
    }

    /// TDISP bring-up on a freshly built VM (no-op without a device or on a
    /// normal target): fetch the signed measurement report, verify it —
    /// through the shared session cache when attached, standalone otherwise
    /// — then accept and start the interface. Neither the report nor the
    /// bring-up advances the VM's virtual clock or jitter stream, so
    /// device-attested runs stay bit-identical to each other.
    fn bring_up_device(
        &self,
        vm: &mut Vm,
        span: &mut ActiveSpan,
    ) -> std::result::Result<(), TeeFault> {
        if vm.device().is_none() || self.target.kind != VmKind::Secure {
            return Ok(());
        }
        let platform = self.target.platform;
        let attest_span = span.child("devio.attest");
        let nonce = device_nonce(self.seed);
        let outcome = vm.device_report(nonce).and_then(|report| {
            let wedged = TeeFault::fatal(platform, TeeMechanism::DeviceAttest);
            if let Some(service) = &self.attest {
                service.open_device_session(platform, report, nonce).map_err(|_| wedged)?;
            } else {
                let verifier = confbench_attest::DeviceVerifier::new(platform);
                let evidence = confbench_attest::Evidence::device(platform, report);
                let mut data = [0u8; 64];
                data[..32].copy_from_slice(&nonce);
                confbench_attest::Verifier::verify(&verifier, &evidence, data)
                    .map_err(|_| wedged)?;
            }
            vm.enable_device()
        });
        span.finish_child(attest_span);
        outcome
    }

    /// Spends one rebuild token, or quarantines the slot when the budget is
    /// gone (returning the terminal fault as the error).
    fn consume_rebuild_token(&self, fault: TeeFault) -> Result<()> {
        let mut state = self.state.lock();
        if state.rebuilds >= self.rebuild_budget {
            state.quarantined = Some(fault);
            drop(state);
            if let Some(m) = &self.metrics {
                m.quarantined.inc();
            }
            return Err(fault.into());
        }
        state.rebuilds += 1;
        drop(state);
        if let Some(m) = &self.metrics {
            m.rebuilds.inc();
        }
        Ok(())
    }

    /// Rebuild validation: prove the substrate will launch again, then
    /// re-attest the replacement before it takes traffic. Runs on a probe
    /// VM that is discarded afterwards — attestation advances a VM's clock,
    /// and the request must run on a clock-fresh VM to stay bit-identical
    /// with fault-free executions.
    fn revalidate(&self, span: &mut ActiveSpan) -> std::result::Result<(), TeeFault> {
        let mut probe = self.builder(self.seed).try_build()?;
        if self.target.kind == VmKind::Secure {
            let reattest_span = span.child("vm.reattest");
            let outcome = self.reattest(&mut probe);
            span.finish_child(reattest_span);
            outcome?;
        }
        Ok(())
    }

    /// Platform-appropriate re-attestation of `vm`, with a fault point at
    /// the attestation device read.
    fn reattest(&self, vm: &mut Vm) -> std::result::Result<(), TeeFault> {
        let platform = self.target.platform;
        if let Some(plan) = &self.faults {
            if let Some(fault) = plan.roll(platform, TeeMechanism::AttestRead) {
                return Err(fault);
            }
        }
        // Shared session cache (gateway deployments): the fleet's identity
        // is verified once and later rebuilds ride the live session.
        if let Some(service) = &self.attest {
            if platform != TeePlatform::Cca {
                service
                    .reattest(platform)
                    .map_err(|_| TeeFault::fatal(platform, TeeMechanism::AttestRead))?;
            }
            return Ok(());
        }
        let wedged = |_| TeeFault::fatal(platform, TeeMechanism::AttestRead);
        let nonce = TdxEcosystem::report_data_for_nonce(self.seed);
        match platform {
            TeePlatform::Tdx => {
                let eco = TdxEcosystem::new(self.seed);
                let (quote, _) = eco.generate_quote(vm, nonce).map_err(wedged)?;
                eco.verify_quote(&quote, nonce).map_err(wedged)?;
            }
            TeePlatform::SevSnp => {
                let eco = SnpEcosystem::new(self.seed);
                let (report, _) = eco.request_report(vm, nonce).map_err(wedged)?;
                eco.verify_report(&report, nonce).map_err(wedged)?;
            }
            // No attestation stack on the FVP (paper §IV-C): launch success
            // is the whole health check.
            TeePlatform::Cca => {}
        }
        Ok(())
    }

    /// Records a fault in `vmm_faults_total{mechanism,class}`.
    fn note_fault(&self, fault: &TeeFault) {
        if let Some(m) = &self.metrics {
            m.registry
                .counter(&format!(
                    "vmm_faults_total{{mechanism=\"{}\",class=\"{}\"}}",
                    fault.mechanism.as_str(),
                    fault.class.as_str()
                ))
                .inc();
        }
    }

    /// Exponential backoff for transient retry `retry_no` (0-based), clamped
    /// to the remaining deadline.
    fn backoff(&self, retry_no: u32, deadline: Option<Instant>) -> Result<()> {
        let exp = (u128::from(self.retry.base_backoff_ms) << retry_no.min(20))
            .min(u128::from(self.retry.max_backoff_ms)) as u64;
        let delay = if self.retry.jitter && exp > 1 {
            let half = exp / 2;
            half + self.jitter_rng.lock().next_u64() % (exp - half + 1)
        } else {
            exp
        };
        let mut sleep = Duration::from_millis(delay);
        if let Some(deadline) = deadline {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(Error::DeadlineExceeded(format!(
                    "watchdog deadline expired while recovering {}",
                    self.target
                )));
            }
            sleep = sleep.min(remaining);
        }
        std::thread::sleep(sleep);
        Ok(())
    }
}

/// Derives the 32-byte TDISP challenge nonce from the supervisor seed, so
/// device attestation is deterministic per slot.
fn device_nonce(seed: u64) -> [u8; 32] {
    let mut nonce = [0u8; 32];
    for (i, chunk) in nonce.chunks_mut(8).enumerate() {
        let word = (seed ^ 0xd15b_0ac4_u64.rotate_left(i as u32 * 8))
            .wrapping_add(i as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
        chunk.copy_from_slice(&word.to_le_bytes());
    }
    nonce
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_obs::SpanRecorder;
    use confbench_types::FaultClass;

    fn retry_fast() -> RetryPolicy {
        RetryPolicy { max_attempts: 3, base_backoff_ms: 1, max_backoff_ms: 2, jitter: false }
    }

    fn supervisor(plan: Option<Arc<TeeFaultPlan>>, budget: u32) -> VmSupervisor {
        VmSupervisor::new(VmTarget::secure(TeePlatform::Tdx), 11, plan, retry_fast(), budget, None)
    }

    #[test]
    fn fault_free_supervision_is_passthrough() {
        let sup = supervisor(None, DEFAULT_REBUILD_BUDGET);
        let recorder = SpanRecorder::default();
        let mut span = recorder.root("test");
        let exits = sup.run(&mut span, None, 0, |vm, _| Ok(vm.total_exits())).unwrap();
        assert_eq!(exits, 0);
        assert_eq!(sup.rebuilds(), 0);
        assert!(!sup.is_quarantined());
    }

    #[test]
    fn transient_faults_are_retried_on_a_fresh_vm() {
        let sup = supervisor(None, DEFAULT_REBUILD_BUDGET);
        let recorder = SpanRecorder::default();
        let mut span = recorder.root("test");
        let mut calls = 0;
        let fault = TeeFault {
            platform: TeePlatform::Tdx,
            mechanism: TeeMechanism::Seamcall,
            class: FaultClass::Transient,
        };
        let out = sup
            .run(&mut span, None, 0, |_, _| {
                calls += 1;
                if calls < 3 {
                    Err(fault)
                } else {
                    Ok(calls)
                }
            })
            .unwrap();
        assert_eq!(out, 3, "third attempt succeeds within the retry budget");
        assert_eq!(sup.rebuilds(), 0, "transient retries are not rebuilds");
    }

    #[test]
    fn fatal_faults_rebuild_then_quarantine() {
        let sup = supervisor(None, 2);
        let recorder = SpanRecorder::default();
        let mut span = recorder.root("test");
        let fault = TeeFault::fatal(TeePlatform::Tdx, TeeMechanism::SeptAccept);
        let err = sup.run::<()>(&mut span, None, 0, |_, _| Err(fault)).unwrap_err();
        assert!(matches!(err, Error::TeeFault { .. }), "got {err}");
        assert_eq!(sup.rebuilds(), 2, "budget fully spent before quarantine");
        assert!(sup.is_quarantined());
        assert_eq!(sup.quarantined_fault(), Some(fault));
        // Quarantine is permanent: later requests fail without running.
        let err = sup.run(&mut span, None, 0, |_, _| Ok(())).unwrap_err();
        assert!(matches!(err, Error::TeeFault { .. }), "got {err}");
    }

    #[test]
    fn rebuild_recovers_when_the_fault_clears() {
        let sup = supervisor(None, 2);
        let recorder = SpanRecorder::default();
        let mut span = recorder.root("test");
        let mut calls = 0;
        let fault = TeeFault::fatal(TeePlatform::SevSnp, TeeMechanism::RmpValidate);
        let out = sup
            .run(&mut span, None, 0, |_, _| {
                calls += 1;
                if calls == 1 {
                    Err(fault)
                } else {
                    Ok("recovered")
                }
            })
            .unwrap();
        assert_eq!(out, "recovered");
        assert_eq!(sup.rebuilds(), 1);
        assert!(!sup.is_quarantined());
        let trace = span.finish();
        let rebuild = trace.find("vm.rebuild").expect("rebuild span recorded");
        assert!(rebuild.find("vm.reattest").is_some(), "secure rebuilds re-attest");
    }

    #[test]
    fn watchdog_deadline_bounds_recovery() {
        let sup = supervisor(None, u32::MAX);
        let recorder = SpanRecorder::default();
        let mut span = recorder.root("test");
        let deadline = Instant::now() + Duration::from_millis(30);
        let fault = TeeFault::fatal(TeePlatform::Tdx, TeeMechanism::Seamcall);
        let err = sup.run::<()>(&mut span, Some(deadline), 0, |_, _| Err(fault)).unwrap_err();
        assert!(matches!(err, Error::DeadlineExceeded(_)), "got {err}");
    }

    #[test]
    fn run_on_brings_the_device_to_run_state() {
        use confbench_vmm::TdispState;
        let sup = supervisor(None, DEFAULT_REBUILD_BUDGET);
        let recorder = SpanRecorder::default();
        let mut span = recorder.root("test");
        let state = sup
            .run_on(Some(DeviceKind::Gpu), &mut span, None, 0, |vm, _| Ok(vm.device_state()))
            .unwrap();
        assert_eq!(state, Some(TdispState::Run), "attempt sees a fully attested interface");
        let trace = span.finish();
        assert!(trace.find("devio.attest").is_some(), "bring-up is spanned");
    }

    #[test]
    fn device_faults_recover_through_the_rebuild_machinery() {
        // Deterministic injection at every device crossing: the supervisor
        // must eventually find a clean attempt (or quarantine) exactly like
        // any other TEE fault, and survivors stay bit-identical.
        let plan = Arc::new(
            TeeFaultPlan::new(77, 0.0)
                .with_rate(TeeMechanism::TdispLock, 0.4)
                .with_rate(TeeMechanism::DeviceAttest, 0.4),
        );
        fn dma_trace() -> confbench_types::OpTrace {
            let mut trace = confbench_types::OpTrace::new();
            trace.dev_dma_in(4096);
            trace
        }
        let clean = supervisor(None, DEFAULT_REBUILD_BUDGET);
        let recorder = SpanRecorder::default();
        let mut span = recorder.root("test");
        let baseline = clean
            .run_on(Some(DeviceKind::Gpu), &mut span, None, 3, |vm, _| {
                vm.try_execute(&dma_trace()).map(|r| r.cycles)
            })
            .unwrap();
        let mut recovered = None;
        for seed in 0..64u64 {
            let sup = VmSupervisor::new(
                VmTarget::secure(TeePlatform::Tdx),
                11,
                Some(Arc::clone(&plan)),
                retry_fast(),
                DEFAULT_REBUILD_BUDGET,
                None,
            );
            let mut span = recorder.root("chaos");
            let out = sup.run_on(Some(DeviceKind::Gpu), &mut span, None, 3, |vm, _| {
                vm.try_execute(&dma_trace()).map(|r| r.cycles)
            });
            if let Ok(cycles) = out {
                if sup.rebuilds() > 0 {
                    recovered = Some(cycles);
                    break;
                }
            }
            let _ = seed;
        }
        let cycles = recovered.expect("some run recovers from an injected device fault");
        assert_eq!(cycles, baseline, "post-recovery runs are bit-identical to fault-free ones");
    }

    #[test]
    fn metrics_count_faults_rebuilds_and_quarantine() {
        let registry = Arc::new(MetricsRegistry::new());
        let sup = VmSupervisor::new(
            VmTarget::secure(TeePlatform::Cca),
            3,
            None,
            retry_fast(),
            1,
            Some(&registry),
        );
        let recorder = SpanRecorder::default();
        let mut span = recorder.root("test");
        let fault = TeeFault::fatal(TeePlatform::Cca, TeeMechanism::RmmCommand);
        let _ = sup.run::<()>(&mut span, None, 0, |_, _| Err(fault));
        assert_eq!(
            registry.counter_value("vmm_faults_total{mechanism=\"rmm-command\",class=\"fatal\"}"),
            Some(2),
            "one fault per attempt: initial + post-rebuild"
        );
        assert_eq!(
            registry.counter_value("vm_rebuilds_total{platform=\"cca\",kind=\"secure\"}"),
            Some(1)
        );
        assert_eq!(
            registry.gauge_value("vm_quarantined{platform=\"cca\",kind=\"secure\"}"),
            Some(1)
        );
    }
}

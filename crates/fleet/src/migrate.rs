//! Gateway-orchestrated live migration of a confidential VM.
//!
//! The orchestration drives the pure [`MigrationFsm`] step-for-step while
//! doing the real work, so every path it can take is a path the model
//! checker has explored:
//!
//! 1. **Drain** — the source stops taking new scheduler work; any traces
//!    still pending execute during pre-copy (that is what dirties pages).
//! 2. **Pre-copy** — the whole resident image is round one; while pending
//!    work keeps running, each subsequent round exports the dirty delta
//!    the SEPT/RMP dirty tracking accumulated, until the delta converges
//!    or the round budget is spent.
//! 3. **Stop-and-copy** — the source pauses (downtime clock starts), the
//!    final delta and the architectural runtime state (virtual clock,
//!    jitter-PRNG state, heap accounting, exit counters) cross the wire.
//! 4. **Re-attest** — the target platform is verified through the shared
//!    `SessionCache` before anything runs; the session id is sealed into
//!    the stream's `Commit` frame.
//! 5. **Resume** — the target adopts the runtime state and continues the
//!    source's execution byte-identically; the source retires.
//!
//! Any injected `migration-export` / `migration-import` fault or a failed
//! re-attestation takes the `Abort` edge instead, handing the source VM
//! back to the caller still runnable.
//!
//! Microarchitectural state (cache-simulator contents, bounce-buffer
//! occupancy) is deliberately *not* migrated — the target starts cold,
//! exactly as real hardware would after a move.

use std::time::Instant;

use confbench::AttestService;
use confbench_types::OpTrace;
use confbench_vmm::{ExecutionReport, TeeFault, TeeVmBuilder, Vm};

use crate::fsm::{MigrationFsm, MigrationOp};
use crate::wire::{decode_stream, MigrationFrame, WireError};

/// Tunables of one migration.
#[derive(Debug, Clone)]
pub struct MigrationConfig {
    /// Most pre-copy rounds before the residual delta is deferred to
    /// stop-and-copy.
    pub max_rounds: u32,
    /// Dirty-page count at or below which pre-copy is considered
    /// converged.
    pub convergence_pages: u64,
    /// Transfer nonce sealed into the stream's `Begin` frame.
    pub nonce: u64,
}

impl Default for MigrationConfig {
    /// 8 pre-copy rounds, convergence at ≤ 8 dirty pages.
    fn default() -> Self {
        MigrationConfig { max_rounds: 8, convergence_pages: 8, nonce: 0 }
    }
}

/// What one migration did — the measured numbers EXPERIMENTS.md reports.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// Pre-copy rounds actually run (the stop-and-copy delta is extra).
    pub precopy_rounds: u32,
    /// Pages transferred during pre-copy (source still running).
    pub precopy_pages: u64,
    /// Pages transferred during stop-and-copy (source paused).
    pub stopcopy_pages: u64,
    /// Total pages across all rounds.
    pub pages_total: u64,
    /// Wall-clock microseconds the VM was paused (stop-and-copy +
    /// re-attest + state adoption) — the migration *downtime*.
    pub downtime_us: u64,
    /// Bytes of the encoded migration stream.
    pub wire_bytes: usize,
    /// Frames in the stream.
    pub frames: usize,
    /// Re-attestation session id minted for the target
    /// (`"unattested-normal-vm"` for non-confidential VMs, which carry no
    /// evidence to verify).
    pub session: String,
    /// Reports of the pending traces executed on the source mid-migration.
    pub source_reports: Vec<ExecutionReport>,
}

/// Why a migration failed. Every variant that aborts after the source
/// existed hands the source VM back, still runnable.
#[derive(Debug)]
pub enum MigrationError {
    /// A TEE fault was injected at an export/import crossing.
    Fault {
        /// Which stage faulted (`"export"`, `"import"`, `"state"`).
        stage: &'static str,
        /// The injected fault.
        fault: TeeFault,
        /// The source VM, returned runnable.
        source: Box<Vm>,
    },
    /// Re-attesting the target through the session cache failed.
    Attest {
        /// The verifier's error.
        error: String,
        /// The source VM, returned runnable.
        source: Box<Vm>,
    },
    /// The encoded stream failed to decode on the target side (protocol
    /// bug or corruption in transit).
    Wire {
        /// The codec error.
        error: WireError,
        /// The source VM, returned runnable.
        source: Box<Vm>,
    },
    /// Source and target builders disagree on platform or kind.
    TargetMismatch {
        /// The source VM, returned runnable.
        source: Box<Vm>,
    },
}

impl MigrationError {
    /// Reclaims the still-runnable source VM.
    pub fn into_source(self) -> Vm {
        match self {
            MigrationError::Fault { source, .. }
            | MigrationError::Attest { source, .. }
            | MigrationError::Wire { source, .. }
            | MigrationError::TargetMismatch { source } => *source,
        }
    }
}

impl std::fmt::Display for MigrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrationError::Fault { stage, fault, .. } => {
                write!(f, "migration {stage} faulted: {fault}")
            }
            MigrationError::Attest { error, .. } => write!(f, "target re-attest failed: {error}"),
            MigrationError::Wire { error, .. } => write!(f, "migration stream corrupt: {error}"),
            MigrationError::TargetMismatch { .. } => {
                f.write_str("target builder does not match the source VM's target")
            }
        }
    }
}

impl std::error::Error for MigrationError {}

/// Live-migrates `source` onto a VM built from `target_builder`.
///
/// `pending` traces are the work still assigned to the source when the
/// drain started; they execute on the source *during* pre-copy (dirtying
/// pages between rounds) so the moved VM's state reflects them. After a
/// successful migration the returned target VM continues the source's
/// execution byte-identically — same virtual clock, same jitter stream,
/// same heap accounting.
///
/// # Errors
///
/// [`MigrationError`]; every abort path returns the source VM runnable
/// (reclaim it with [`MigrationError::into_source`]).
pub fn migrate(
    mut source: Vm,
    target_builder: TeeVmBuilder,
    attest: &AttestService,
    pending: &[OpTrace],
    cfg: &MigrationConfig,
) -> Result<(Vm, MigrationReport), MigrationError> {
    let target_spec = source.target();
    let mut fsm = MigrationFsm::new(u64::MAX);
    let mut frames: Vec<MigrationFrame> = Vec::new();
    let mut source_reports = Vec::new();

    fsm = step(fsm, MigrationOp::Drain);
    source.mark_all_dirty();
    let resident = source.resident_page_count();
    fsm = step(fsm, MigrationOp::BeginPreCopy { resident });
    frames.push(MigrationFrame::Begin {
        platform: target_spec.platform,
        kind: target_spec.kind,
        resident,
        nonce: cfg.nonce,
    });

    // Pre-copy: round one is the whole image; the source keeps executing
    // its pending work between rounds, and each round ships the delta.
    let mut round: u16 = 0;
    let mut precopy_pages: u64 = 0;
    // The FSM's dirty counter mirrors the VM's dirty-set size; `tracked`
    // is what the FSM currently believes, so Touch carries only the delta.
    let mut tracked: u64 = resident;
    macro_rules! export_round {
        () => {{
            let gpas = match source.export_dirty_pages() {
                Ok(gpas) => gpas,
                Err(fault) => return Err(abort(fsm, source, "export", fault)),
            };
            if !gpas.is_empty() {
                round += 1;
                fsm = step(fsm, MigrationOp::CopyRound { copied: gpas.len() as u64 });
                tracked -= gpas.len() as u64;
                precopy_pages += gpas.len() as u64;
                frames.push(MigrationFrame::Pages { round, gpas });
            }
        }};
    }
    export_round!();
    for trace in pending {
        source_reports.push(source.execute(trace));
        let dirtied = source.dirty_page_count() as u64;
        let delta = dirtied.saturating_sub(tracked);
        if delta > 0 {
            fsm = step(fsm, MigrationOp::Touch { pages: delta });
            tracked = dirtied;
        }
        // Within the round budget, ship each delta while still running;
        // past it, let the residue accumulate for stop-and-copy.
        if u32::from(round) < cfg.max_rounds && dirtied > cfg.convergence_pages {
            export_round!();
        }
    }
    let precopy_rounds = u32::from(round);

    // Stop-and-copy: pause the source (downtime starts), drain the final
    // delta — it cannot grow any more.
    let pause_started = Instant::now();
    fsm = step(fsm, MigrationOp::Pause);
    let final_delta = match source.export_dirty_pages() {
        Ok(gpas) => gpas,
        Err(fault) => return Err(abort(fsm, source, "export", fault)),
    };
    let stopcopy_pages = final_delta.len() as u64;
    if !final_delta.is_empty() {
        frames.push(MigrationFrame::Pages { round: round + 1, gpas: final_delta });
    }
    fsm = step(fsm, MigrationOp::FinalCopy);
    fsm = step(fsm, MigrationOp::BeginReAttest);

    let state = match source.export_runtime_state() {
        Ok(state) => state,
        Err(fault) => return Err(abort(fsm, source, "state", fault)),
    };
    frames.push(MigrationFrame::State(state));

    // Re-attest the target platform through the fleet-shared session
    // cache before anything resumes. Normal (non-confidential) VMs carry
    // no evidence; they move unattested, and the Commit frame says so.
    let session = if target_spec.kind == confbench_types::VmKind::Secure {
        match attest.reattest(target_spec.platform) {
            Ok(outcome) => outcome.session.id,
            Err(e) => return Err(abort(fsm, source, "attest", e)),
        }
    } else {
        "unattested-normal-vm".to_owned()
    };
    fsm = step(fsm, MigrationOp::Attest);

    let pages_total = precopy_pages + stopcopy_pages;
    frames.push(MigrationFrame::Commit {
        session: session.clone(),
        pages_total,
        rounds: precopy_rounds + u32::from(stopcopy_pages > 0),
    });

    // Encode, "transfer", and replay the stream on the target side. The
    // target VM boots fresh (its own launch measurement) and then adopts
    // the source's pages and runtime state.
    let mut wire = Vec::new();
    for frame in &frames {
        wire.extend_from_slice(&frame.encode());
    }
    let decoded = match decode_stream(&wire) {
        Ok(decoded) => decoded,
        Err(error) => return Err(abort(fsm, source, "wire-err", error)),
    };
    let mut target = target_builder.build();
    if target.target() != target_spec {
        let aborted = fsm.apply(MigrationOp::Abort).expect("abort is legal from any live phase");
        debug_assert_eq!(aborted.source, crate::fsm::SourceVm::Running);
        return Err(MigrationError::TargetMismatch { source: Box::new(source) });
    }
    for frame in &decoded {
        let imported = match frame {
            MigrationFrame::Pages { gpas, .. } => target.import_pages(gpas).map(|_| ()),
            MigrationFrame::State(s) => target.adopt_runtime_state(s),
            MigrationFrame::Begin { .. } | MigrationFrame::Commit { .. } => Ok(()),
        };
        if let Err(fault) = imported {
            return Err(abort(fsm, source, "import", fault));
        }
    }

    fsm = step(fsm, MigrationOp::Resume);
    debug_assert!(fsm.phase.is_terminal());
    let downtime_us = pause_started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;

    Ok((
        target,
        MigrationReport {
            precopy_rounds,
            precopy_pages,
            stopcopy_pages,
            pages_total,
            downtime_us,
            wire_bytes: wire.len(),
            frames: decoded.len(),
            session,
            source_reports,
        },
    ))
}

/// Applies an op the orchestrator has arranged to be valid; a rejection
/// here is an orchestration bug (the model checker verifies the machine,
/// this verifies the driver).
fn step(fsm: MigrationFsm, op: MigrationOp) -> MigrationFsm {
    fsm.apply(op).expect("orchestrator drives only legal transitions")
}

/// Takes the `Abort` edge and wraps the failure, handing the source back.
fn abort<E: AbortCause>(
    fsm: MigrationFsm,
    source: Vm,
    stage: &'static str,
    cause: E,
) -> MigrationError {
    let aborted = fsm.apply(MigrationOp::Abort).expect("abort is legal from any live phase");
    debug_assert_eq!(aborted.source, crate::fsm::SourceVm::Running);
    cause.into_error(stage, Box::new(source))
}

trait AbortCause {
    fn into_error(self, stage: &'static str, source: Box<Vm>) -> MigrationError;
}

impl AbortCause for TeeFault {
    fn into_error(self, stage: &'static str, source: Box<Vm>) -> MigrationError {
        MigrationError::Fault { stage, fault: self, source }
    }
}

impl AbortCause for confbench_types::Error {
    fn into_error(self, _stage: &'static str, source: Box<Vm>) -> MigrationError {
        MigrationError::Attest { error: self.to_string(), source }
    }
}

impl AbortCause for WireError {
    fn into_error(self, _stage: &'static str, source: Box<Vm>) -> MigrationError {
        MigrationError::Wire { error: self, source }
    }
}

//! The live-migration state machine, as a pure transition function.
//!
//! `Idle → Draining → PreCopy → StopAndCopy → ReAttest → Resumed/Aborted`
//!
//! [`migrate`](mod@crate::migrate) drives this machine step-by-step while
//! doing the real work (page export, wire framing, re-attestation), and
//! `confbench-mc` explores it exhaustively as its fifth `Machine` adapter.
//! Keeping the transition function pure and bounded is what makes both
//! uses possible: the orchestrator cannot reach a state the model checker
//! has not visited.
//!
//! The safety contract (checked as mc invariants):
//! * never `Resumed` without a successful re-attest;
//! * no dirty page left uncopied at resume (`dirty == 0`);
//! * `Abort` always returns the source VM to a runnable state.

use std::fmt;

/// Phase of a migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MigrationPhase {
    /// Nothing started.
    Idle,
    /// Source stopped accepting new work; in-flight jobs finishing.
    Draining,
    /// Iterative dirty-page copy while the source keeps running.
    PreCopy,
    /// Source paused; final dirty delta transferring. Downtime starts here.
    StopAndCopy,
    /// Pages transferred; target evidence being verified.
    ReAttest,
    /// Target running; source retired. Terminal.
    Resumed,
    /// Migration cancelled; source runnable again. Terminal.
    Aborted,
}

impl MigrationPhase {
    /// Whether the phase accepts no further operations.
    pub fn is_terminal(self) -> bool {
        matches!(self, MigrationPhase::Resumed | MigrationPhase::Aborted)
    }

    /// Stable kebab-case label for metrics and REST bodies.
    pub fn as_str(self) -> &'static str {
        match self {
            MigrationPhase::Idle => "idle",
            MigrationPhase::Draining => "draining",
            MigrationPhase::PreCopy => "pre-copy",
            MigrationPhase::StopAndCopy => "stop-and-copy",
            MigrationPhase::ReAttest => "re-attest",
            MigrationPhase::Resumed => "resumed",
            MigrationPhase::Aborted => "aborted",
        }
    }
}

impl fmt::Display for MigrationPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What the *source* VM is doing, from the scheduler's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceVm {
    /// Executing (or able to execute) work.
    Running,
    /// Paused for stop-and-copy; must not dirty pages.
    Paused,
    /// Replaced by the target after a successful resume.
    Retired,
}

/// Operations the migration orchestrator applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MigrationOp {
    /// Stop scheduling new work onto the source.
    Drain,
    /// Start iterative copy with `resident` pages initially dirty (the
    /// whole memory image — round one transfers everything).
    BeginPreCopy {
        /// Resident pages at migration start.
        resident: u64,
    },
    /// The still-running source dirtied `pages` pages.
    Touch {
        /// Pages newly dirtied.
        pages: u64,
    },
    /// One pre-copy round transferred `copied` dirty pages.
    CopyRound {
        /// Pages sent this round.
        copied: u64,
    },
    /// Pause the source; enter stop-and-copy.
    Pause,
    /// Transfer the final dirty delta (source paused, so it cannot grow).
    FinalCopy,
    /// All pages on the target; begin verifying its evidence.
    BeginReAttest,
    /// Target evidence verified through the session cache.
    Attest,
    /// Start the target, retire the source.
    Resume,
    /// Cancel: hand the source back runnable.
    Abort,
}

impl MigrationOp {
    fn name(self) -> &'static str {
        match self {
            MigrationOp::Drain => "drain",
            MigrationOp::BeginPreCopy { .. } => "begin-pre-copy",
            MigrationOp::Touch { .. } => "touch",
            MigrationOp::CopyRound { .. } => "copy-round",
            MigrationOp::Pause => "pause",
            MigrationOp::FinalCopy => "final-copy",
            MigrationOp::BeginReAttest => "begin-re-attest",
            MigrationOp::Attest => "attest",
            MigrationOp::Resume => "resume",
            MigrationOp::Abort => "abort",
        }
    }
}

/// Why a transition was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsmError {
    /// The operation is not valid in the current phase.
    BadPhase {
        /// Phase the machine was in.
        phase: MigrationPhase,
        /// Operation name.
        op: &'static str,
    },
    /// The machine is in a terminal phase.
    Terminal {
        /// The terminal phase.
        phase: MigrationPhase,
    },
    /// Dirty-page accounting would exceed the tracking capacity.
    DirtyOverflow {
        /// Dirty count the operation would reach.
        dirty: u64,
        /// Tracking capacity.
        cap: u64,
    },
    /// A copy round claimed more pages than are dirty.
    CopyOverrun {
        /// Pages the round claimed.
        copied: u64,
        /// Pages actually dirty.
        dirty: u64,
    },
    /// A copy round transferring zero pages is a protocol error.
    EmptyCopy,
    /// Pre-copy cannot start on an empty memory image.
    EmptyImage,
    /// Re-attestation cannot start with dirty pages outstanding.
    DirtyAtReattest {
        /// Pages still dirty.
        dirty: u64,
    },
    /// Resume attempted without a verified re-attestation.
    UnattestedResume,
}

impl FsmError {
    /// Stable short code (what the mc adapter reports as the rejection).
    pub fn code(self) -> &'static str {
        match self {
            FsmError::BadPhase { .. } => "bad-phase",
            FsmError::Terminal { .. } => "terminal",
            FsmError::DirtyOverflow { .. } => "dirty-overflow",
            FsmError::CopyOverrun { .. } => "copy-overrun",
            FsmError::EmptyCopy => "empty-copy",
            FsmError::EmptyImage => "empty-image",
            FsmError::DirtyAtReattest { .. } => "dirty-at-reattest",
            FsmError::UnattestedResume => "unattested-resume",
        }
    }
}

impl fmt::Display for FsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsmError::BadPhase { phase, op } => write!(f, "op {op} invalid in phase {phase}"),
            FsmError::Terminal { phase } => write!(f, "phase {phase} is terminal"),
            FsmError::DirtyOverflow { dirty, cap } => {
                write!(f, "dirty count {dirty} exceeds tracking capacity {cap}")
            }
            FsmError::CopyOverrun { copied, dirty } => {
                write!(f, "round copied {copied} pages but only {dirty} are dirty")
            }
            FsmError::EmptyCopy => f.write_str("copy round transferred zero pages"),
            FsmError::EmptyImage => f.write_str("pre-copy on an empty memory image"),
            FsmError::DirtyAtReattest { dirty } => {
                write!(f, "{dirty} dirty pages outstanding at re-attest")
            }
            FsmError::UnattestedResume => f.write_str("resume without verified re-attestation"),
        }
    }
}

impl std::error::Error for FsmError {}

/// The migration state machine. Small, `Copy`, `Hash`-able — the model
/// checker's state type as well as the orchestrator's live bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MigrationFsm {
    /// Current phase.
    pub phase: MigrationPhase,
    /// Dirty pages not yet transferred.
    pub dirty: u64,
    /// Whether the target's evidence has been verified.
    pub attested: bool,
    /// What the source VM is doing.
    pub source: SourceVm,
    /// Dirty-tracking capacity (total pages the VM can hold; a bound the
    /// model checker uses to keep the state space finite).
    pub cap: u64,
}

impl MigrationFsm {
    /// A fresh machine for a VM holding at most `cap` pages.
    pub fn new(cap: u64) -> Self {
        MigrationFsm {
            phase: MigrationPhase::Idle,
            dirty: 0,
            attested: false,
            source: SourceVm::Running,
            cap,
        }
    }

    /// Applies one operation, returning the successor state.
    ///
    /// # Errors
    ///
    /// [`FsmError`] describing the rejected transition; the machine itself
    /// is never mutated on rejection (`apply` is by-value).
    pub fn apply(self, op: MigrationOp) -> Result<MigrationFsm, FsmError> {
        use MigrationOp as O;
        use MigrationPhase as P;
        if self.phase.is_terminal() {
            return Err(FsmError::Terminal { phase: self.phase });
        }
        let mut next = self;
        match (self.phase, op) {
            (P::Idle, O::Drain) => next.phase = P::Draining,
            (P::Draining, O::BeginPreCopy { resident }) => {
                if resident == 0 {
                    return Err(FsmError::EmptyImage);
                }
                if resident > self.cap {
                    return Err(FsmError::DirtyOverflow { dirty: resident, cap: self.cap });
                }
                next.phase = P::PreCopy;
                next.dirty = resident;
            }
            (P::PreCopy, O::Touch { pages }) => {
                // A paused source cannot dirty pages; the phase system
                // already guarantees it (Pause leaves PreCopy), and the
                // model checker's step invariant re-checks it.
                debug_assert_eq!(self.source, SourceVm::Running);
                let dirty = self.dirty.saturating_add(pages);
                if dirty > self.cap {
                    return Err(FsmError::DirtyOverflow { dirty, cap: self.cap });
                }
                next.dirty = dirty;
            }
            (P::PreCopy, O::CopyRound { copied }) => {
                if copied == 0 {
                    return Err(FsmError::EmptyCopy);
                }
                if copied > self.dirty {
                    return Err(FsmError::CopyOverrun { copied, dirty: self.dirty });
                }
                next.dirty -= copied;
            }
            (P::PreCopy, O::Pause) => {
                next.phase = P::StopAndCopy;
                next.source = SourceVm::Paused;
            }
            (P::StopAndCopy, O::FinalCopy) => next.dirty = 0,
            (P::StopAndCopy, O::BeginReAttest) => {
                if self.dirty != 0 {
                    return Err(FsmError::DirtyAtReattest { dirty: self.dirty });
                }
                next.phase = P::ReAttest;
            }
            (P::ReAttest, O::Attest) => next.attested = true,
            (P::ReAttest, O::Resume) => {
                if !self.attested {
                    return Err(FsmError::UnattestedResume);
                }
                debug_assert_eq!(self.dirty, 0, "ReAttest unreachable with dirty pages");
                next.phase = P::Resumed;
                next.source = SourceVm::Retired;
            }
            (_, O::Abort) => {
                next.phase = P::Aborted;
                next.source = SourceVm::Running;
                next.dirty = 0;
                next.attested = false;
            }
            (phase, op) => return Err(FsmError::BadPhase { phase, op: op.name() }),
        }
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use MigrationOp as O;
    use MigrationPhase as P;

    fn run(ops: &[MigrationOp]) -> Result<MigrationFsm, FsmError> {
        ops.iter().try_fold(MigrationFsm::new(64), |m, &op| m.apply(op))
    }

    #[test]
    fn happy_path_resumes_attested_and_clean() {
        let end = run(&[
            O::Drain,
            O::BeginPreCopy { resident: 10 },
            O::CopyRound { copied: 10 },
            O::Touch { pages: 3 },
            O::CopyRound { copied: 3 },
            O::Pause,
            O::FinalCopy,
            O::BeginReAttest,
            O::Attest,
            O::Resume,
        ])
        .unwrap();
        assert_eq!(end.phase, P::Resumed);
        assert!(end.attested);
        assert_eq!(end.dirty, 0);
        assert_eq!(end.source, SourceVm::Retired);
    }

    #[test]
    fn resume_without_attest_is_rejected() {
        let at_reattest = run(&[
            O::Drain,
            O::BeginPreCopy { resident: 4 },
            O::Pause,
            O::FinalCopy,
            O::BeginReAttest,
        ])
        .unwrap();
        assert_eq!(at_reattest.apply(O::Resume), Err(FsmError::UnattestedResume));
    }

    #[test]
    fn reattest_with_dirty_pages_is_rejected() {
        let paused = run(&[O::Drain, O::BeginPreCopy { resident: 4 }, O::Pause]).unwrap();
        assert_eq!(paused.dirty, 4);
        assert_eq!(paused.apply(O::BeginReAttest), Err(FsmError::DirtyAtReattest { dirty: 4 }));
        // FinalCopy clears the delta, then re-attest proceeds.
        let clean = paused.apply(O::FinalCopy).unwrap();
        assert!(clean.apply(O::BeginReAttest).is_ok());
    }

    #[test]
    fn abort_everywhere_returns_source_runnable() {
        let prefixes: [&[MigrationOp]; 5] = [
            &[],
            &[O::Drain],
            &[O::Drain, O::BeginPreCopy { resident: 4 }],
            &[O::Drain, O::BeginPreCopy { resident: 4 }, O::Pause],
            &[O::Drain, O::BeginPreCopy { resident: 4 }, O::Pause, O::FinalCopy, O::BeginReAttest],
        ];
        for prefix in prefixes {
            let aborted = run(prefix).unwrap().apply(O::Abort).unwrap();
            assert_eq!(aborted.phase, P::Aborted);
            assert_eq!(aborted.source, SourceVm::Running, "after {prefix:?}");
        }
    }

    #[test]
    fn terminal_states_reject_everything() {
        let resumed = run(&[
            O::Drain,
            O::BeginPreCopy { resident: 1 },
            O::Pause,
            O::FinalCopy,
            O::BeginReAttest,
            O::Attest,
            O::Resume,
        ])
        .unwrap();
        for op in [O::Drain, O::Abort, O::Resume] {
            assert_eq!(resumed.apply(op), Err(FsmError::Terminal { phase: P::Resumed }));
        }
        let aborted = MigrationFsm::new(4).apply(O::Abort).unwrap();
        assert_eq!(aborted.apply(O::Drain), Err(FsmError::Terminal { phase: P::Aborted }));
    }

    #[test]
    fn accounting_bounds_are_enforced() {
        let m = MigrationFsm::new(4);
        let pre = m.apply(O::Drain).unwrap();
        assert_eq!(
            pre.apply(O::BeginPreCopy { resident: 5 }),
            Err(FsmError::DirtyOverflow { dirty: 5, cap: 4 })
        );
        assert_eq!(pre.apply(O::BeginPreCopy { resident: 0 }), Err(FsmError::EmptyImage));
        let copying = pre.apply(O::BeginPreCopy { resident: 4 }).unwrap();
        assert_eq!(
            copying.apply(O::Touch { pages: 1 }),
            Err(FsmError::DirtyOverflow { dirty: 5, cap: 4 })
        );
        assert_eq!(
            copying.apply(O::CopyRound { copied: 5 }),
            Err(FsmError::CopyOverrun { copied: 5, dirty: 4 })
        );
        assert_eq!(copying.apply(O::CopyRound { copied: 0 }), Err(FsmError::EmptyCopy));
        // Rejections never mutated the machine.
        assert_eq!(copying.dirty, 4);
    }

    #[test]
    fn codes_and_labels_are_stable() {
        assert_eq!(FsmError::UnattestedResume.code(), "unattested-resume");
        assert_eq!(FsmError::EmptyCopy.code(), "empty-copy");
        assert_eq!(P::StopAndCopy.as_str(), "stop-and-copy");
        assert!(P::Resumed.is_terminal() && P::Aborted.is_terminal());
        assert!(!P::PreCopy.is_terminal());
    }
}

//! Consistent-hash ring with virtual nodes.
//!
//! Placement is keyed on the scheduler's content address (the SHA-256
//! `cache_key` of a campaign cell), so the cell → shard mapping is stable
//! across submissions: resubmitting a campaign routes every cell back to
//! the shard whose result cache already holds it. Virtual nodes smooth the
//! distribution; removing a shard re-homes only the arcs it owned.

use std::collections::{BTreeMap, BTreeSet};

use confbench_crypto::Sha256;

/// A consistent-hash ring mapping string keys to shard ids.
#[derive(Debug, Clone)]
pub struct HashRing {
    vnodes: usize,
    points: BTreeMap<u64, usize>,
    shards: BTreeSet<usize>,
}

impl HashRing {
    /// Creates an empty ring with `vnodes` virtual nodes per shard
    /// (clamped to at least 1).
    pub fn new(vnodes: usize) -> Self {
        HashRing { vnodes: vnodes.max(1), points: BTreeMap::new(), shards: BTreeSet::new() }
    }

    /// Adds a shard's virtual nodes to the ring. Idempotent.
    pub fn insert(&mut self, shard: usize) {
        if !self.shards.insert(shard) {
            return;
        }
        for v in 0..self.vnodes {
            self.points.insert(vnode_point(shard, v), shard);
        }
    }

    /// Removes a shard (its keys re-home to the next points on the ring).
    pub fn remove(&mut self, shard: usize) {
        if !self.shards.remove(&shard) {
            return;
        }
        self.points.retain(|_, s| *s != shard);
    }

    /// The shard owning `key`: the first virtual node at or after the
    /// key's hash, wrapping around. `None` on an empty ring.
    pub fn owner(&self, key: &str) -> Option<usize> {
        let h = Sha256::digest(key.as_bytes()).to_u64();
        self.points.range(h..).next().or_else(|| self.points.iter().next()).map(|(_, shard)| *shard)
    }

    /// Number of shards currently on the ring.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the ring has no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard ids on the ring, ascending.
    pub fn shards(&self) -> Vec<usize> {
        self.shards.iter().copied().collect()
    }

    /// Whether `shard` is on the ring.
    pub fn contains(&self, shard: usize) -> bool {
        self.shards.contains(&shard)
    }
}

fn vnode_point(shard: usize, vnode: usize) -> u64 {
    Sha256::digest(format!("shard-{shard}/vnode-{vnode}").as_bytes()).to_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("cell-key-{i}")).collect()
    }

    #[test]
    fn placement_is_stable_and_total() {
        let mut ring = HashRing::new(32);
        for s in 0..3 {
            ring.insert(s);
        }
        for key in keys(100) {
            let a = ring.owner(&key).unwrap();
            let b = ring.owner(&key).unwrap();
            assert_eq!(a, b);
            assert!(a < 3);
        }
    }

    #[test]
    fn all_shards_get_some_keys() {
        let mut ring = HashRing::new(32);
        for s in 0..3 {
            ring.insert(s);
        }
        let mut counts = [0usize; 3];
        for key in keys(300) {
            counts[ring.owner(&key).unwrap()] += 1;
        }
        assert!(counts.iter().all(|&c| c > 30), "skewed placement: {counts:?}");
    }

    #[test]
    fn removal_only_moves_the_dead_shards_keys() {
        let mut ring = HashRing::new(32);
        for s in 0..3 {
            ring.insert(s);
        }
        let before: Vec<(String, usize)> =
            keys(200).into_iter().map(|k| (k.clone(), ring.owner(&k).unwrap())).collect();
        ring.remove(1);
        for (key, owner) in before {
            let now = ring.owner(&key).unwrap();
            if owner != 1 {
                assert_eq!(now, owner, "surviving shard's key moved");
            } else {
                assert_ne!(now, 1);
            }
        }
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::new(8);
        assert!(ring.is_empty());
        assert_eq!(ring.owner("anything"), None);
        let mut ring = ring;
        ring.insert(7);
        ring.insert(7); // idempotent
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.owner("anything"), Some(7));
        ring.remove(7);
        ring.remove(7);
        assert!(ring.is_empty());
    }
}

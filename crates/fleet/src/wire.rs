//! The versioned migration wire stream (`CBMG` frames).
//!
//! A migration is transported as a sequence of self-delimiting frames,
//! each carrying the 4-byte magic, a version byte, and a kind byte:
//!
//! * `Begin` — platform/kind of the moving VM, its resident page count,
//!   and a transfer nonce;
//! * `Pages` — one dirty-page round (pre-copy or the stop-and-copy
//!   delta): round number and the guest-physical page ids;
//! * `State` — the architectural runtime state captured at stop-and-copy
//!   (virtual clock, jitter-PRNG state, heap accounting, exit/fault
//!   counters);
//! * `Commit` — the re-attestation session id minted on the target plus
//!   transfer totals; the last frame before resume.
//!
//! Decoding is strict: every length is bounds-checked *before* any
//! allocation, unknown kinds and versions are typed errors, and a frame
//! with trailing bytes is rejected — a corrupted stream can never be
//! silently accepted, and (fuzz-enforced) never panics.

use std::fmt;

use confbench_types::{TeePlatform, VmKind};
use confbench_vmm::VmRuntimeState;

/// Magic prefix of every migration frame.
pub const WIRE_MAGIC: [u8; 4] = *b"CBMG";

/// Current wire format version.
pub const WIRE_VERSION: u8 = 1;

/// Most guest pages one `Pages` frame may carry (checked before the page
/// vector is allocated, so a forged count cannot balloon memory).
pub const MAX_PAGES_PER_FRAME: usize = 4096;

/// Longest re-attestation session id a `Commit` frame may carry.
pub const MAX_SESSION_ID_LEN: usize = 128;

const KIND_BEGIN: u8 = 1;
const KIND_PAGES: u8 = 2;
const KIND_STATE: u8 = 3;
const KIND_COMMIT: u8 = 4;

/// Why a migration stream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// First four bytes were not the `CBMG` magic.
    BadMagic([u8; 4]),
    /// Version byte this decoder does not speak.
    UnsupportedVersion(u8),
    /// Kind byte naming no known frame.
    UnknownKind(u8),
    /// The buffer ended before a fixed-width field.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that remained.
        have: usize,
    },
    /// Bytes left over after a complete frame (strict single-frame mode).
    TrailingBytes(usize),
    /// A counted field exceeds its protocol bound.
    FieldTooLong {
        /// Field name.
        field: &'static str,
        /// Declared length.
        len: usize,
        /// Protocol maximum.
        max: usize,
    },
    /// A string field was not valid UTF-8.
    BadUtf8(&'static str),
    /// An enumeration byte outside its defined range.
    BadValue {
        /// Field name.
        field: &'static str,
        /// Offending byte.
        value: u8,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} bytes, have {have}")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame"),
            WireError::FieldTooLong { field, len, max } => {
                write!(f, "field {field} length {len} exceeds maximum {max}")
            }
            WireError::BadUtf8(field) => write!(f, "field {field} is not valid UTF-8"),
            WireError::BadValue { field, value } => {
                write!(f, "field {field} has invalid value {value}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// One frame of the migration stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrationFrame {
    /// Transfer preamble.
    Begin {
        /// Platform of the moving VM.
        platform: TeePlatform,
        /// Secure or normal.
        kind: VmKind,
        /// Pages resident at migration start.
        resident: u64,
        /// Transfer nonce (binds the stream to one migration attempt).
        nonce: u64,
    },
    /// One dirty-page round.
    Pages {
        /// Round number (1-based; the stop-and-copy delta is the last).
        round: u16,
        /// Guest-physical ids of the pages in this round.
        gpas: Vec<u64>,
    },
    /// Architectural runtime state captured at stop-and-copy.
    State(VmRuntimeState),
    /// Final frame: re-attestation proof of the target plus totals.
    Commit {
        /// Session id minted by the verifier for the target.
        session: String,
        /// Total pages transferred across all rounds.
        pages_total: u64,
        /// Pre-copy rounds plus the stop-and-copy round.
        rounds: u32,
    },
}

impl MigrationFrame {
    /// Serializes the frame (header + body, big-endian).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            MigrationFrame::Begin { platform, kind, resident, nonce } => {
                let mut out = header(KIND_BEGIN);
                out.push(platform_byte(*platform));
                out.push(vmkind_byte(*kind));
                out.extend_from_slice(&resident.to_be_bytes());
                out.extend_from_slice(&nonce.to_be_bytes());
                out
            }
            MigrationFrame::Pages { round, gpas } => {
                let mut out = header(KIND_PAGES);
                out.extend_from_slice(&round.to_be_bytes());
                out.extend_from_slice(&(gpas.len() as u32).to_be_bytes());
                for gpa in gpas {
                    out.extend_from_slice(&gpa.to_be_bytes());
                }
                out
            }
            MigrationFrame::State(s) => {
                let mut out = header(KIND_STATE);
                for word in [
                    s.cycles,
                    s.rng_state,
                    s.heap_pages,
                    s.high_water_pages,
                    s.next_gpa,
                    s.total_exits,
                    s.total_faults,
                ] {
                    out.extend_from_slice(&word.to_be_bytes());
                }
                out
            }
            MigrationFrame::Commit { session, pages_total, rounds } => {
                let mut out = header(KIND_COMMIT);
                out.extend_from_slice(&(session.len() as u16).to_be_bytes());
                out.extend_from_slice(session.as_bytes());
                out.extend_from_slice(&pages_total.to_be_bytes());
                out.extend_from_slice(&rounds.to_be_bytes());
                out
            }
        }
    }

    /// Decodes exactly one frame; trailing bytes are an error.
    ///
    /// # Errors
    ///
    /// [`WireError`] naming the first malformation encountered.
    pub fn decode(buf: &[u8]) -> Result<MigrationFrame, WireError> {
        let mut r = Reader { buf, pos: 0 };
        let frame = decode_one(&mut r)?;
        r.finish()?;
        Ok(frame)
    }
}

/// Decodes a whole stream of concatenated frames.
///
/// # Errors
///
/// [`WireError`] for the first malformed frame; earlier frames are
/// discarded (a migration stream is all-or-nothing).
pub fn decode_stream(buf: &[u8]) -> Result<Vec<MigrationFrame>, WireError> {
    let mut r = Reader { buf, pos: 0 };
    let mut frames = Vec::new();
    while r.remaining() > 0 {
        frames.push(decode_one(&mut r)?);
    }
    Ok(frames)
}

fn header(kind: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&WIRE_MAGIC);
    out.push(WIRE_VERSION);
    out.push(kind);
    out
}

fn platform_byte(p: TeePlatform) -> u8 {
    match p {
        TeePlatform::Tdx => 1,
        TeePlatform::SevSnp => 2,
        TeePlatform::Cca => 3,
    }
}

fn vmkind_byte(k: VmKind) -> u8 {
    match k {
        VmKind::Secure => 1,
        VmKind::Normal => 2,
    }
}

fn decode_one(r: &mut Reader<'_>) -> Result<MigrationFrame, WireError> {
    let magic = r.array::<4>()?;
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    match r.u8()? {
        KIND_BEGIN => {
            let platform = match r.u8()? {
                1 => TeePlatform::Tdx,
                2 => TeePlatform::SevSnp,
                3 => TeePlatform::Cca,
                value => return Err(WireError::BadValue { field: "platform", value }),
            };
            let kind = match r.u8()? {
                1 => VmKind::Secure,
                2 => VmKind::Normal,
                value => return Err(WireError::BadValue { field: "vm-kind", value }),
            };
            Ok(MigrationFrame::Begin { platform, kind, resident: r.u64()?, nonce: r.u64()? })
        }
        KIND_PAGES => {
            let round = r.u16()?;
            let count = r.u32()? as usize;
            if count > MAX_PAGES_PER_FRAME {
                return Err(WireError::FieldTooLong {
                    field: "pages",
                    len: count,
                    max: MAX_PAGES_PER_FRAME,
                });
            }
            // Bound checked above, so this allocation is at most 32 KiB.
            let mut gpas = Vec::with_capacity(count);
            for _ in 0..count {
                gpas.push(r.u64()?);
            }
            Ok(MigrationFrame::Pages { round, gpas })
        }
        KIND_STATE => Ok(MigrationFrame::State(VmRuntimeState {
            cycles: r.u64()?,
            rng_state: r.u64()?,
            heap_pages: r.u64()?,
            high_water_pages: r.u64()?,
            next_gpa: r.u64()?,
            total_exits: r.u64()?,
            total_faults: r.u64()?,
        })),
        KIND_COMMIT => {
            let len = r.u16()? as usize;
            if len > MAX_SESSION_ID_LEN {
                return Err(WireError::FieldTooLong {
                    field: "session",
                    len,
                    max: MAX_SESSION_ID_LEN,
                });
            }
            let bytes = r.take(len)?;
            let session =
                std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8("session"))?.to_owned();
            Ok(MigrationFrame::Commit { session, pages_total: r.u64()?, rounds: r.u32()? })
        }
        kind => Err(WireError::UnknownKind(kind)),
    }
}

/// Bounds-checked big-endian cursor.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { needed: n, have: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        Ok(self.take(N)?.try_into().expect("take returned N bytes"))
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.array::<1>()?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.array()?))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.array()?))
    }

    fn finish(&self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::TrailingBytes(n)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_crypto::fuzz::{sweep_iters, Mutator};

    fn samples() -> Vec<MigrationFrame> {
        vec![
            MigrationFrame::Begin {
                platform: TeePlatform::Tdx,
                kind: VmKind::Secure,
                resident: 96,
                nonce: 0xDEAD_BEEF,
            },
            MigrationFrame::Pages { round: 1, gpas: (0..96).collect() },
            MigrationFrame::Pages { round: 2, gpas: vec![0x100, 0x105, 0x3F] },
            MigrationFrame::State(VmRuntimeState {
                cycles: 1_234_567,
                rng_state: 0x9E37_79B9,
                heap_pages: 40,
                high_water_pages: 48,
                next_gpa: 0x130,
                total_exits: 17,
                total_faults: 1,
            }),
            MigrationFrame::Commit { session: "sess-tdx-0001".into(), pages_total: 99, rounds: 3 },
        ]
    }

    #[test]
    fn roundtrip_every_frame_kind() {
        for frame in samples() {
            let bytes = frame.encode();
            assert_eq!(MigrationFrame::decode(&bytes).unwrap(), frame);
        }
    }

    #[test]
    fn stream_roundtrip() {
        let frames = samples();
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&f.encode());
        }
        assert_eq!(decode_stream(&bytes).unwrap(), frames);
        bytes.push(0xAA);
        // A stream's final frame is still strictly delimited: the stray
        // byte reads as a new frame and fails on its magic.
        assert!(matches!(decode_stream(&bytes), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn typed_rejections() {
        let good = samples()[0].encode();
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(MigrationFrame::decode(&bad_magic), Err(WireError::BadMagic(_))));

        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert_eq!(MigrationFrame::decode(&bad_version), Err(WireError::UnsupportedVersion(9)));

        let mut bad_kind = good.clone();
        bad_kind[5] = 200;
        assert_eq!(MigrationFrame::decode(&bad_kind), Err(WireError::UnknownKind(200)));

        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(MigrationFrame::decode(&trailing), Err(WireError::TrailingBytes(1)));

        assert!(matches!(
            MigrationFrame::decode(&good[..good.len() - 3]),
            Err(WireError::Truncated { .. })
        ));

        let mut bad_platform = good;
        bad_platform[6] = 7;
        assert_eq!(
            MigrationFrame::decode(&bad_platform),
            Err(WireError::BadValue { field: "platform", value: 7 })
        );
    }

    #[test]
    fn oversized_page_count_is_rejected_before_allocation() {
        let mut bytes = header(KIND_PAGES);
        bytes.extend_from_slice(&1u16.to_be_bytes());
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(
            MigrationFrame::decode(&bytes),
            Err(WireError::FieldTooLong {
                field: "pages",
                len: u32::MAX as usize,
                max: MAX_PAGES_PER_FRAME
            })
        );
    }

    #[test]
    fn oversized_session_id_is_rejected() {
        let frame = MigrationFrame::Commit { session: "x".repeat(129), pages_total: 0, rounds: 1 };
        assert_eq!(
            MigrationFrame::decode(&frame.encode()),
            Err(WireError::FieldTooLong { field: "session", len: 129, max: MAX_SESSION_ID_LEN })
        );
    }

    #[test]
    fn non_utf8_session_is_rejected() {
        let mut bytes = header(KIND_COMMIT);
        bytes.extend_from_slice(&2u16.to_be_bytes());
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        bytes.extend_from_slice(&0u64.to_be_bytes());
        bytes.extend_from_slice(&1u32.to_be_bytes());
        assert_eq!(MigrationFrame::decode(&bytes), Err(WireError::BadUtf8("session")));
    }

    /// Seeded fuzz sweep: mutants either fail with a typed error or decode
    /// to a frame whose canonical encoding is the mutant itself — no
    /// panics, no silent accepts.
    #[test]
    fn fuzz_sweep_never_panics_or_silently_accepts() {
        let mut mutator = Mutator::new(0xC0FF_BE7C_0010);
        let bases: Vec<Vec<u8>> = samples().iter().map(MigrationFrame::encode).collect();
        for i in 0..sweep_iters() {
            let mutant = mutator.mutate(&bases[i % bases.len()]);
            if let Ok(frame) = MigrationFrame::decode(&mutant) {
                assert_eq!(frame.encode(), mutant, "non-canonical accept at iter {i}");
            }
        }
    }
}

//! The fleet orchestrator: N gateway shards behind one consistent-hash
//! ring, with cross-shard work stealing and kill/drain recovery.
//!
//! # Determinism and dedup
//!
//! Every shard is built with the *same* seed, shares one
//! [`FunctionStore`], and shares one [`AttestService`]. Same seed + same
//! store means any shard executes any cell byte-identically, so a cell
//! re-placed after a host dies reproduces exactly the result the dead
//! host would have computed. Placement keys are the scheduler's content
//! addresses (`cache_key`), so a resubmission routes every cell to the
//! shard whose result cache already holds it; a drained shard hands its
//! cache entries to the new owners first, so re-placed work cache-hits
//! instead of re-executing. The *harvest* — a fleet-level merge of every
//! shard's result-cache snapshot after each pump — is the campaign's
//! durable record: anything harvested survives any later host loss.
//!
//! The shared [`AttestService`] is also the fix for a sharding-specific
//! regression: the session cache's single-flight and the collateral
//! refresher's claim slots are per-service, so N *independent* gateways
//! cold-verifying the same TCB identity would do N PCS collateral
//! fetches. One shared service makes it exactly one collateral cycle per
//! identity across the whole fleet (asserted by test against the PCS
//! request counter).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use confbench::{
    AttestConfig, AttestService, Clock, FunctionStore, Gateway, RetryPolicy, SystemClock,
    TeeFaultPlan,
};
use confbench_obs::MetricsRegistry;
use confbench_sched::{
    cache_key, campaign, CachedCell, Executor, Scheduler, SchedulerConfig, SubmitError,
};
use confbench_types::{CampaignCell, CampaignSpec, Priority, TeePlatform, VmTarget};
use confbench_vmm::TeeVmBuilder;
use parking_lot::Mutex;
use serde::Serialize;

use crate::migrate::{migrate, MigrationConfig, MigrationError, MigrationReport};
use crate::ring::HashRing;

/// Tunables of a [`Fleet`].
pub struct FleetConfig {
    /// Gateway shards to build.
    pub shards: usize,
    /// Virtual nodes per shard on the placement ring.
    pub vnodes: usize,
    /// Deterministic seed shared by *all* shards (the property that makes
    /// re-placed work byte-identical).
    pub seed: u64,
    /// Clock shared by every shard's gateway and scheduler.
    pub clock: Arc<dyn Clock>,
    /// Ambient chaos plan installed on every shard's hosts.
    pub chaos: Option<Arc<TeeFaultPlan>>,
    /// Retry/backoff policy for every shard's gateway.
    pub retry: RetryPolicy,
    /// Per-VM-slot rebuild budget before quarantine.
    pub rebuild_budget: u32,
}

impl Default for FleetConfig {
    /// 3 shards, 32 vnodes, seed 0, system clock, no chaos.
    fn default() -> Self {
        FleetConfig {
            shards: 3,
            vnodes: 32,
            seed: 0,
            clock: Arc::new(SystemClock),
            chaos: None,
            retry: RetryPolicy::default(),
            rebuild_budget: confbench::DEFAULT_REBUILD_BUDGET,
        }
    }
}

/// One gateway shard: a full gateway (hosts for all three platforms) plus
/// its campaign scheduler, with a per-shard metrics registry so cache and
/// queue counters can be asserted shard-by-shard.
struct Shard {
    gateway: Arc<Gateway>,
    sched: Arc<Scheduler>,
    metrics: Arc<MetricsRegistry>,
    alive: AtomicBool,
}

/// A cell placed on the fleet: its content address, the cell itself, and
/// the shard currently responsible for it.
#[derive(Clone)]
struct PlacedCell {
    key: String,
    cell: CampaignCell,
    shard: usize,
}

/// One fleet-level campaign (fans out to per-shard scheduler campaigns).
struct FleetCampaign {
    id: String,
    cells: Vec<PlacedCell>,
    priority: Priority,
    deadline_ms: Option<u64>,
}

#[derive(Default)]
struct FleetState {
    next_campaign: u64,
    campaigns: Vec<FleetCampaign>,
    /// Fleet-durable results: merged from shard caches after every pump.
    harvest: BTreeMap<String, CachedCell>,
    migrations: Vec<MigrationReport>,
}

/// Receipt for a fleet campaign submission.
#[derive(Debug, Clone, Serialize)]
pub struct FleetReceipt {
    /// Fleet-level campaign id.
    pub id: String,
    /// Cells placed (across all shards).
    pub jobs: usize,
}

/// Point-in-time progress of a fleet campaign, measured against the
/// harvest (what has durably completed, host losses notwithstanding).
#[derive(Debug, Clone, Serialize)]
pub struct FleetCampaignStatus {
    /// Fleet-level campaign id.
    pub id: String,
    /// Total cells.
    pub total: usize,
    /// Cells whose results are harvested.
    pub done: usize,
    /// Whether every cell's result is harvested.
    pub complete: bool,
}

/// Per-shard status row for `GET /v1/fleet`.
#[derive(Debug, Clone, Serialize)]
pub struct ShardStatus {
    /// Shard id (ring member).
    pub shard: usize,
    /// Whether the shard is alive (on the ring).
    pub alive: bool,
    /// Jobs queued on the shard's scheduler.
    pub queue_depth: usize,
    /// Entries in the shard's result cache.
    pub cache_entries: usize,
    /// The shard's cache hits (jobs served without executing).
    pub cache_hits: u64,
    /// The shard's cache misses (jobs that executed).
    pub cache_misses: u64,
}

/// A fleet of gateway shards. See the module docs for the design.
pub struct Fleet {
    shards: Vec<Shard>,
    ring: Mutex<HashRing>,
    store: Arc<FunctionStore>,
    attest: Arc<AttestService>,
    metrics: Arc<MetricsRegistry>,
    clock: Arc<dyn Clock>,
    seed: u64,
    state: Mutex<FleetState>,
}

impl Fleet {
    /// Builds the fleet: `config.shards` gateways (each with local hosts
    /// for all three platforms), one shared function store, one shared
    /// attestation service, one placement ring.
    ///
    /// # Panics
    ///
    /// Panics when `config.shards == 0`.
    pub fn new(config: FleetConfig) -> Self {
        assert!(config.shards > 0, "fleet needs at least one shard");
        let metrics = Arc::new(MetricsRegistry::new());
        let store = Arc::new(FunctionStore::new());
        let attest = Arc::new(AttestService::new(
            config.seed,
            AttestConfig::from_env(),
            Arc::clone(&config.clock),
            Some(&metrics),
        ));
        let mut ring = HashRing::new(config.vnodes);
        let mut shards = Vec::with_capacity(config.shards);
        for id in 0..config.shards {
            ring.insert(id);
            let shard_metrics = Arc::new(MetricsRegistry::new());
            let mut builder = Gateway::builder()
                .seed(config.seed)
                .store(Arc::clone(&store))
                .attest_service(Arc::clone(&attest))
                .metrics(Arc::clone(&shard_metrics))
                .clock(Arc::clone(&config.clock))
                .retry(config.retry)
                .rebuild_budget(config.rebuild_budget)
                .local_host(TeePlatform::Tdx)
                .local_host(TeePlatform::SevSnp)
                .local_host(TeePlatform::Cca);
            if let Some(plan) = &config.chaos {
                builder = builder.chaos(Arc::clone(plan));
            }
            let gateway = Arc::new(builder.build());
            let sched = Arc::new(Scheduler::with_metrics(
                Arc::clone(&gateway) as Arc<dyn Executor>,
                Arc::clone(&config.clock),
                SchedulerConfig::default(),
                Arc::clone(&shard_metrics),
            ));
            shards.push(Shard {
                gateway,
                sched,
                metrics: shard_metrics,
                alive: AtomicBool::new(true),
            });
        }
        metrics.gauge("fleet_shards_alive").set(config.shards as u64);
        Fleet {
            shards,
            ring: Mutex::new(ring),
            store,
            attest,
            metrics,
            clock: config.clock,
            seed: config.seed,
            state: Mutex::new(FleetState::default()),
        }
    }

    /// The shared function store (upload functions here once; every shard
    /// sees them and fingerprints them identically).
    pub fn store(&self) -> &Arc<FunctionStore> {
        &self.store
    }

    /// The fleet-shared attestation service.
    pub fn attest(&self) -> &Arc<AttestService> {
        &self.attest
    }

    /// The fleet-level metrics registry (steal counters, shard gauges,
    /// migration instruments, plus the shared attestation family).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// A shard's private metrics registry (cache/queue counters).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range shard id.
    pub fn shard_metrics(&self, shard: usize) -> &Arc<MetricsRegistry> {
        &self.shards[shard].metrics
    }

    /// Number of shards built (alive or not).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Ids of shards currently alive (on the ring).
    pub fn alive_shards(&self) -> Vec<usize> {
        (0..self.shards.len()).filter(|&s| self.shards[s].alive.load(Ordering::SeqCst)).collect()
    }

    /// The content address a cell is placed by. Content addressing wants
    /// the function's source fingerprint; unknown functions fall back to
    /// an empty fingerprint (still deterministic, still well-spread).
    fn placement_key(&self, cell: &CampaignCell) -> String {
        let fp =
            self.shards[0].gateway.function_fingerprint(&cell.function.name).unwrap_or_default();
        cache_key(cell, &fp)
    }

    /// Validates, expands, and places a campaign across the fleet: each
    /// cell goes to the shard owning its content address on the ring.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] — invalid specs are rejected up front; a shard
    /// refusing admission (queue full) fails the whole submission.
    pub fn submit(&self, spec: CampaignSpec) -> Result<FleetReceipt, SubmitError> {
        spec.validate_with_limit(confbench_types::MAX_CAMPAIGN_CELLS)
            .map_err(SubmitError::Invalid)?;
        let cells = campaign::expand(&spec);
        let mut placed = Vec::with_capacity(cells.len());
        let mut per_shard: BTreeMap<usize, Vec<CampaignCell>> = BTreeMap::new();
        {
            let ring = self.ring.lock();
            for cell in cells {
                let key = self.placement_key(&cell);
                let shard = ring.owner(&key).expect("fleet has at least one live shard");
                per_shard.entry(shard).or_default().push(cell.clone());
                placed.push(PlacedCell { key, cell, shard });
            }
        }
        for (shard, cells) in per_shard {
            self.shards[shard].sched.submit_cells(cells, spec.priority, spec.deadline_ms)?;
        }
        let mut state = self.state.lock();
        state.next_campaign += 1;
        let id = format!("f{}", state.next_campaign);
        let jobs = placed.len();
        state.campaigns.push(FleetCampaign {
            id: id.clone(),
            cells: placed,
            priority: spec.priority,
            deadline_ms: spec.deadline_ms,
        });
        self.metrics.counter("fleet_campaigns_total").inc();
        self.metrics.counter("fleet_cells_placed_total").add(jobs as u64);
        Ok(FleetReceipt { id, jobs })
    }

    /// One scheduling pass: every alive shard steps each platform once;
    /// a shard whose own queue for a platform is empty *steals* — it runs
    /// the deepest other shard's next job on its own hosts (the victim
    /// keeps the bookkeeping and the result lands in the victim's cache).
    /// Returns whether any job was processed.
    pub fn pump(&self) -> bool {
        let mut progressed = false;
        for platform in TeePlatform::ALL {
            for id in self.alive_shards() {
                let shard = &self.shards[id];
                if shard.sched.step(platform) {
                    progressed = true;
                    continue;
                }
                // Own queue empty: steal from the deepest alive victim.
                let victim = self
                    .alive_shards()
                    .into_iter()
                    .filter(|&v| v != id)
                    .map(|v| (self.shards[v].sched.queue_depth_for(platform), v))
                    .filter(|&(depth, _)| depth > 0)
                    .max_by_key(|&(depth, _)| depth)
                    .map(|(_, v)| v);
                if let Some(v) = victim {
                    if self.shards[v].sched.step_with(platform, shard.gateway.as_ref()) {
                        self.metrics.counter("fleet_steals_total").inc();
                        progressed = true;
                    }
                }
            }
        }
        self.harvest();
        progressed
    }

    /// Merges every alive shard's result-cache snapshot into the fleet
    /// harvest. Results harvested once survive any later shard loss.
    pub fn harvest(&self) {
        let mut state = self.state.lock();
        for id in self.alive_shards() {
            for (key, cell) in self.shards[id].sched.result_cache().snapshot() {
                state.harvest.entry(key).or_insert(cell);
            }
        }
        self.metrics.gauge("fleet_harvest_entries").set(state.harvest.len() as u64);
    }

    /// Pumps until no shard makes progress and every queue is empty.
    pub fn drain(&self) {
        loop {
            let progressed = self.pump();
            let queued: usize =
                self.alive_shards().iter().map(|&s| self.shards[s].sched.queue_depth()).sum();
            if !progressed && queued == 0 {
                break;
            }
        }
    }

    /// Abruptly kills a shard: it comes off the ring, its queue and its
    /// *unharvested* cache entries are lost. Every campaign cell that was
    /// placed on it and is not yet in the harvest is re-placed on the
    /// ring's new owner. Already-harvested cells are not resubmitted —
    /// that is the dedup guarantee (no cell executes twice *observably*;
    /// work the dead shard finished stays finished).
    ///
    /// Returns how many cells were re-placed.
    pub fn kill_shard(&self, id: usize) -> usize {
        self.retire_shard(id, false)
    }

    /// Gracefully drains a shard: its results are harvested and its cache
    /// entries migrate to the ring's new owners *before* the shard leaves,
    /// so re-placed cells cache-hit on their new shard instead of
    /// re-executing. Returns how many cells were re-placed.
    pub fn drain_shard(&self, id: usize) -> usize {
        self.retire_shard(id, true)
    }

    fn retire_shard(&self, id: usize, graceful: bool) -> usize {
        assert!(id < self.shards.len(), "unknown shard {id}");
        if !self.shards[id].alive.swap(false, Ordering::SeqCst) {
            return 0;
        }
        if graceful {
            // Harvest while the shard still counts as... it just went
            // dead, so merge its snapshot directly: a graceful drain keeps
            // every result it computed.
            let snapshot = self.shards[id].sched.result_cache().snapshot();
            let mut state = self.state.lock();
            for (key, cell) in &snapshot {
                state.harvest.entry(key.clone()).or_insert_with(|| cell.clone());
            }
        }
        self.ring.lock().remove(id);
        self.metrics.gauge("fleet_shards_alive").set(self.alive_shards().len() as u64);

        // Re-place orphaned cells. Under a graceful drain the cache
        // entries move first, so the resubmitted duplicates cache-hit.
        let mut replaced = 0;
        let mut state = self.state.lock();
        let harvest_keys: Vec<String> = state.harvest.keys().cloned().collect();
        let harvested: std::collections::BTreeSet<&String> = harvest_keys.iter().collect();
        let mut resubmit: BTreeMap<usize, Vec<(usize, usize, CampaignCell)>> = BTreeMap::new();
        {
            let ring = self.ring.lock();
            for (ci, campaign) in state.campaigns.iter().enumerate() {
                for (pi, placed) in campaign.cells.iter().enumerate() {
                    if placed.shard != id || harvested.contains(&placed.key) {
                        continue;
                    }
                    let new_owner = ring.owner(&placed.key).expect("ring still has live shards");
                    resubmit.entry(new_owner).or_default().push((ci, pi, placed.cell.clone()));
                }
            }
        }
        if graceful {
            let ring = self.ring.lock();
            for (key, cell) in self.shards[id].sched.result_cache().snapshot() {
                if let Some(owner) = ring.owner(&key) {
                    self.shards[owner].sched.result_cache().insert(key, cell);
                }
            }
        }
        for (owner, batch) in resubmit {
            let cells: Vec<CampaignCell> = batch.iter().map(|(_, _, c)| c.clone()).collect();
            let (priority, deadline) = {
                let (ci, _, _) = batch[0];
                (state.campaigns[ci].priority, state.campaigns[ci].deadline_ms)
            };
            // A full queue during disaster recovery would deadlock the
            // fleet; the per-shard queue capacity (256) dwarfs test and
            // bench campaigns, so treat overflow as a hard bug.
            self.shards[owner]
                .sched
                .submit_cells(cells, priority, deadline)
                .expect("recovery resubmission fits the new owner's queue");
            for (ci, pi, _) in batch {
                state.campaigns[ci].cells[pi].shard = owner;
                replaced += 1;
            }
        }
        self.metrics.counter("fleet_cells_replaced_total").add(replaced as u64);
        replaced
    }

    /// Progress of a fleet campaign, judged against the harvest.
    pub fn campaign_status(&self, id: &str) -> Option<FleetCampaignStatus> {
        let state = self.state.lock();
        let campaign = state.campaigns.iter().find(|c| c.id == id)?;
        let done = campaign.cells.iter().filter(|p| state.harvest.contains_key(&p.key)).count();
        Some(FleetCampaignStatus {
            id: campaign.id.clone(),
            total: campaign.cells.len(),
            done,
            complete: done == campaign.cells.len(),
        })
    }

    /// The fleet's durable results: content address → cached cell. After
    /// [`Fleet::drain`], serializing this is the byte-identical artifact
    /// the chaos tests compare against a single-gateway control.
    pub fn results(&self) -> BTreeMap<String, CachedCell> {
        self.state.lock().harvest.clone()
    }

    /// Per-shard status rows plus ring occupancy, for `GET /v1/fleet`.
    pub fn status(&self) -> Vec<ShardStatus> {
        (0..self.shards.len())
            .map(|id| {
                let shard = &self.shards[id];
                ShardStatus {
                    shard: id,
                    alive: shard.alive.load(Ordering::SeqCst),
                    queue_depth: shard.sched.queue_depth(),
                    cache_entries: shard.sched.result_cache().len(),
                    cache_hits: shard.metrics.counter("sched_cache_hits_total").get(),
                    cache_misses: shard.metrics.counter("sched_cache_misses_total").get(),
                }
            })
            .collect()
    }

    /// Total executions across the fleet (sum of per-shard cache misses):
    /// with dedup working, this equals the number of *unique* cells ever
    /// placed, no matter how many shards died mid-campaign.
    pub fn total_executions(&self) -> u64 {
        self.shards.iter().map(|s| s.metrics.counter("sched_cache_misses_total").get()).sum()
    }

    /// Total cross-shard steals.
    pub fn steals(&self) -> u64 {
        self.metrics.counter("fleet_steals_total").get()
    }

    /// Runs one demonstration live migration: boots a source VM for
    /// `target`, warms it with `warmup` traces, then migrates it to a
    /// fresh host (re-attesting through the fleet's shared session cache)
    /// and records the report. This is what `POST /v1/migrations` and the
    /// CLI's `migrate` command execute.
    ///
    /// # Errors
    ///
    /// [`MigrationError`] (the source VM is dropped here; REST callers get
    /// the message).
    pub fn run_migration(
        &self,
        target: VmTarget,
        warmup: &[confbench_types::OpTrace],
        cfg: &MigrationConfig,
    ) -> Result<MigrationReport, MigrationError> {
        let mut source = TeeVmBuilder::new(target).seed(self.seed).build();
        for trace in warmup {
            source.execute(trace);
        }
        let target_builder = TeeVmBuilder::new(target).seed(self.seed ^ 0x5EED);
        let result = migrate(source, target_builder, &self.attest, &[], cfg);
        match &result {
            Ok((_, report)) => {
                self.metrics.counter("migrations_total").inc();
                self.metrics
                    .counter("migration_rounds_total")
                    .add(u64::from(report.precopy_rounds) + u64::from(report.stopcopy_pages > 0));
                self.metrics.counter("migration_pages_copied_total").add(report.pages_total);
                self.metrics.gauge("migration_last_downtime_us").set(report.downtime_us);
                self.state.lock().migrations.push(report.clone());
            }
            Err(_) => {
                self.metrics.counter("migrations_failed_total").inc();
            }
        }
        result.map(|(_, report)| report)
    }

    /// Reports of migrations run so far (`GET /v1/migrations`).
    pub fn migrations(&self) -> Vec<MigrationReport> {
        self.state.lock().migrations.clone()
    }

    /// The fleet clock (shared by every shard).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }
}

//! The gateway fleet: sharded placement, work stealing, live migration.
//!
//! One ConfBench gateway owns one set of hosts and one scheduler queue, so
//! a host drain or crash loses every in-flight campaign job on it. This
//! crate adds the robustness layer on top:
//!
//! * [`HashRing`] — consistent-hash placement of campaign cells keyed on
//!   the scheduler's *content address* (`confbench_sched::cache_key`), so
//!   the memoization cache shards naturally and a resubmission routes to
//!   the shard that owns the cached cell;
//! * [`Fleet`] — N gateway shards sharing one [`FunctionStore`] (content
//!   addresses agree fleet-wide) and one `AttestService` (the session
//!   cache's single-flight and the collateral refresher's claim slots span
//!   the fleet: N shards cold-verifying the same TCB identity do *one* PCS
//!   collateral cycle), with cross-shard work stealing when a platform's
//!   workers idle and kill/drain recovery that completes campaigns
//!   byte-identically (dedup via the content-addressed cache — no cell
//!   executes twice);
//! * [`fsm`] — the migration state machine
//!   (`Idle → Draining → PreCopy → StopAndCopy → ReAttest →
//!   Resumed/Aborted`), pure and bounded so `confbench-mc` can model-check
//!   it exhaustively;
//! * [`wire`] — the versioned migration stream codec (`CBMG` frames)
//!   carrying dirty-page rounds, the architectural runtime state, and the
//!   re-attestation commit;
//! * [`mod@migrate`] — gateway-orchestrated live migration of a running
//!   confidential VM: drain → pre-copy dirty-page rounds over the
//!   SEPT/RMP models until the delta converges → stop-and-copy →
//!   re-attest on the target through the shared session cache → resume,
//!   with measured downtime; an abort at any stage hands the source VM
//!   back runnable.
//!
//! [`FunctionStore`]: confbench::FunctionStore

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod fsm;
pub mod migrate;
mod rest;
pub mod ring;
pub mod wire;

pub use fleet::{Fleet, FleetCampaignStatus, FleetConfig, FleetReceipt, ShardStatus};
pub use fsm::{FsmError, MigrationFsm, MigrationOp, MigrationPhase, SourceVm};
pub use migrate::{migrate, MigrationConfig, MigrationError, MigrationReport};
pub use ring::HashRing;
pub use wire::{MigrationFrame, WireError, MAX_PAGES_PER_FRAME, MAX_SESSION_ID_LEN};

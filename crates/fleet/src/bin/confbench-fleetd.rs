//! The ConfBench fleet daemon: N gateway shards behind one consistent-hash
//! placement ring, served over one REST surface.
//!
//! ```text
//! confbench-fleetd [--listen ADDR] [--shards N] [--vnodes N] [--seed N]
//!                  [--chaos-seed N] [--chaos-rate F]
//! ```
//!
//! A background driver thread pumps the shards (own queues first, then
//! cross-shard steals); the REST surface exposes the shard table, graceful
//! drain and abrupt kill of shards, campaign placement, and live
//! migrations. `--chaos-seed` (nonzero) arms deterministic TEE fault
//! injection on every shard's hosts at `--chaos-rate`.

use std::process::ExitCode;
use std::sync::Arc;

use confbench::TeeFaultPlan;
use confbench_fleet::{Fleet, FleetConfig};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("confbench-fleetd: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen = "127.0.0.1:7710".to_owned();
    let mut config = FleetConfig::default();
    let mut chaos_seed = 0u64;
    let mut chaos_rate = 0.1f64;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => listen = take_value(&args, &mut i, "--listen")?,
            "--shards" => {
                config.shards = take_value(&args, &mut i, "--shards")?
                    .parse()
                    .map_err(|e| format!("bad shard count: {e}"))?;
                if config.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--vnodes" => {
                config.vnodes = take_value(&args, &mut i, "--vnodes")?
                    .parse()
                    .map_err(|e| format!("bad vnode count: {e}"))?;
                if config.vnodes == 0 {
                    return Err("--vnodes must be at least 1".into());
                }
            }
            "--seed" => {
                config.seed = take_value(&args, &mut i, "--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--chaos-seed" => {
                chaos_seed = take_value(&args, &mut i, "--chaos-seed")?
                    .parse()
                    .map_err(|e| format!("bad chaos seed: {e}"))?;
            }
            "--chaos-rate" => {
                chaos_rate = take_value(&args, &mut i, "--chaos-rate")?
                    .parse()
                    .map_err(|e| format!("bad chaos rate: {e}"))?;
                if !(0.0..=1.0).contains(&chaos_rate) {
                    return Err("--chaos-rate must be in [0, 1]".into());
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: confbench-fleetd [--listen ADDR] [--shards N] [--vnodes N] [--seed N]\n\
                     \x20                       [--chaos-seed N] [--chaos-rate F]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument {other} (try --help)")),
        }
        i += 1;
    }

    if chaos_seed != 0 {
        eprintln!("chaos armed: seed {chaos_seed}, fault rate {chaos_rate} per TEE crossing");
        config.chaos = Some(Arc::new(TeeFaultPlan::new(chaos_seed, chaos_rate)));
    }
    let shards = config.shards;
    eprintln!("booting {shards} gateway shards (3 platforms each)...");
    let fleet = Arc::new(Fleet::new(config));

    let driver = Arc::clone(&fleet);
    std::thread::Builder::new()
        .name("fleet-pump".into())
        .spawn(move || loop {
            if !driver.pump() {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        })
        .map_err(|e| format!("cannot spawn fleet pump: {e}"))?;

    let server = fleet.serve_on(&listen).map_err(|e| format!("cannot listen on {listen}: {e}"))?;
    println!("confbench fleet listening on http://{}", server.addr());
    println!("  GET  /v1/fleet                    shard table, steals, replacements");
    println!("  POST /v1/fleet/campaigns          place a campaign across the fleet");
    println!("  GET  /v1/fleet/campaigns/ID       harvest-judged campaign progress");
    println!("  POST /v1/fleet/shards/ID/drain    graceful drain (cache migrates)");
    println!("  POST /v1/fleet/shards/ID/kill     abrupt kill (work re-places)");
    println!("  POST /v1/migrations               run a live migration");
    println!("  GET  /v1/migrations               migration reports");
    println!("fleet: {shards} shards on the placement ring");

    // Serve until interrupted.
    loop {
        std::thread::park();
    }
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    *i += 1;
    args.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
}

//! REST surface of the fleet: `/v1/fleet` and `/v1/migrations`.
//!
//! Mirrors the gateway's route conventions (canonical under `/v1` with a
//! deprecated unversioned alias) so fleet deployments and single-gateway
//! deployments speak the same dialect.

use std::collections::HashMap;
use std::sync::Arc;

use confbench_httpd::{Method, Request, Response, Router, Server};
use confbench_types::{TeePlatform, VmKind, VmTarget};
use serde::{Deserialize, Serialize};

use crate::fleet::Fleet;
use crate::migrate::{MigrationConfig, MigrationReport};

/// The current REST API version prefix (matches the gateway's).
const API_PREFIX: &str = "/v1";

/// Gateway-convention route registration: canonical `/v1` path plus the
/// deprecated unversioned alias carrying `Deprecation`/`Link` headers.
fn add_versioned<F>(router: &mut Router, method: Method, path: &str, handler: F)
where
    F: Fn(&Request, &HashMap<String, String>) -> Response + Send + Sync + 'static,
{
    let handler = Arc::new(handler);
    let canonical = Arc::clone(&handler);
    router.add(method, &format!("{API_PREFIX}{path}"), move |req, params| canonical(req, params));
    let successor = format!("<{API_PREFIX}{path}>; rel=\"successor-version\"");
    router.add(method, path, move |req, params| {
        let mut response = handler(req, params);
        response.headers.insert("deprecation".into(), "true".into());
        response.headers.insert("link".into(), successor.clone());
        response
    });
}

/// `POST /v1/migrations` request body.
#[derive(Debug, Deserialize)]
struct MigrationRequest {
    platform: TeePlatform,
    #[serde(default)]
    kind: Option<VmKind>,
    #[serde(default)]
    max_rounds: Option<u32>,
}

/// Serializable view of a [`MigrationReport`] (execution reports of the
/// mid-migration traces are summarized to a count).
#[derive(Debug, Serialize)]
struct MigrationView {
    precopy_rounds: u32,
    precopy_pages: u64,
    stopcopy_pages: u64,
    pages_total: u64,
    downtime_us: u64,
    wire_bytes: usize,
    frames: usize,
    session: String,
    source_executions: usize,
}

impl MigrationView {
    fn from_report(report: &MigrationReport) -> Self {
        MigrationView {
            precopy_rounds: report.precopy_rounds,
            precopy_pages: report.precopy_pages,
            stopcopy_pages: report.stopcopy_pages,
            pages_total: report.pages_total,
            downtime_us: report.downtime_us,
            wire_bytes: report.wire_bytes,
            frames: report.frames,
            session: report.session.clone(),
            source_executions: report.source_reports.len(),
        }
    }
}

#[derive(Debug, Serialize)]
struct FleetView {
    shards: Vec<crate::fleet::ShardStatus>,
    alive: usize,
    steals: u64,
    cells_replaced: u64,
    migrations: usize,
}

impl Fleet {
    /// Builds the fleet's REST router:
    ///
    /// * `GET /v1/fleet` — shard table (alive, queue depth, cache
    ///   hit/miss counters), steal and replacement totals;
    /// * `POST /v1/fleet/campaigns` — place a campaign across the fleet
    ///   (consistent-hash on each cell's content address);
    /// * `GET /v1/fleet/campaigns/{id}` — harvest-judged progress;
    /// * `POST /v1/fleet/shards/{id}/drain` — graceful drain: cache
    ///   entries migrate to new owners, orphaned cells re-place;
    /// * `POST /v1/fleet/shards/{id}/kill` — abrupt kill: unharvested
    ///   work re-places and re-executes on the survivors;
    /// * `POST /v1/migrations` — run a live migration for a platform,
    ///   returning the measured report (downtime, rounds, pages);
    /// * `GET /v1/migrations` — reports of migrations run so far.
    pub fn build_router(self: &Arc<Self>) -> Router {
        let mut router = Router::new();

        let fleet = Arc::clone(self);
        add_versioned(&mut router, Method::Get, "/fleet", move |_, _| {
            let shards = fleet.status();
            let view = FleetView {
                alive: shards.iter().filter(|s| s.alive).count(),
                shards,
                steals: fleet.steals(),
                cells_replaced: fleet.metrics().counter("fleet_cells_replaced_total").get(),
                migrations: fleet.migrations().len(),
            };
            Response::json(&view)
        });

        let fleet = Arc::clone(self);
        add_versioned(&mut router, Method::Post, "/fleet/campaigns", move |req, _| {
            let spec: confbench_types::CampaignSpec = match req.body_json() {
                Ok(spec) => spec,
                Err(e) => return Response::error(400, format!("bad campaign spec: {e}")),
            };
            match fleet.submit(spec) {
                Ok(receipt) => Response::json(&receipt),
                Err(confbench_sched::SubmitError::Invalid(e)) => {
                    Response::error(400, format!("invalid campaign: {e}"))
                }
                Err(e) => Response::error(429, format!("fleet cannot admit campaign: {e}")),
            }
        });

        let fleet = Arc::clone(self);
        add_versioned(
            &mut router,
            Method::Get,
            "/fleet/campaigns/:id",
            move |_, params| match fleet.campaign_status(&params["id"]) {
                Some(status) => Response::json(&status),
                None => Response::error(404, format!("unknown fleet campaign {}", params["id"])),
            },
        );

        let fleet = Arc::clone(self);
        add_versioned(&mut router, Method::Post, "/fleet/shards/:id/drain", move |_, params| {
            shard_action(&fleet, &params["id"], |f, id| f.drain_shard(id))
        });

        let fleet = Arc::clone(self);
        add_versioned(&mut router, Method::Post, "/fleet/shards/:id/kill", move |_, params| {
            shard_action(&fleet, &params["id"], |f, id| f.kill_shard(id))
        });

        let fleet = Arc::clone(self);
        add_versioned(&mut router, Method::Post, "/migrations", move |req, _| {
            let body: MigrationRequest = match req.body_json() {
                Ok(body) => body,
                Err(e) => return Response::error(400, format!("bad migration body: {e}")),
            };
            let target =
                VmTarget { platform: body.platform, kind: body.kind.unwrap_or(VmKind::Secure) };
            let mut cfg = MigrationConfig::default();
            if let Some(rounds) = body.max_rounds {
                cfg.max_rounds = rounds;
            }
            // Warm the source with a small deterministic workload so the
            // migration has heap pages and dirty deltas to move.
            let mut warm = confbench_types::OpTrace::new();
            warm.cpu(2_000_000);
            warm.alloc(24 * 4096);
            warm.cpu(500_000);
            match fleet.run_migration(target, &[warm], &cfg) {
                Ok(report) => Response::json(&MigrationView::from_report(&report)),
                Err(e) => Response::error(409, format!("migration aborted: {e}")),
            }
        });

        let fleet = Arc::clone(self);
        add_versioned(&mut router, Method::Get, "/migrations", move |_, _| {
            let views: Vec<MigrationView> =
                fleet.migrations().iter().map(MigrationView::from_report).collect();
            Response::json(&views)
        });

        router
    }

    /// Serves the fleet REST surface on `listen` (e.g. `127.0.0.1:0`).
    ///
    /// # Errors
    ///
    /// Socket bind/listen errors.
    pub fn serve_on(self: &Arc<Self>, listen: &str) -> std::io::Result<Server> {
        let router = self.build_router();
        let metrics = Arc::clone(self.metrics());
        Server::build(router).metrics(metrics).spawn(listen)
    }
}

fn shard_action(
    fleet: &Arc<Fleet>,
    raw_id: &str,
    action: impl Fn(&Fleet, usize) -> usize,
) -> Response {
    let Ok(id) = raw_id.parse::<usize>() else {
        return Response::error(400, format!("bad shard id {raw_id:?}"));
    };
    if id >= fleet.shard_count() {
        return Response::error(404, format!("unknown shard {id}"));
    }
    let replaced = action(fleet, id);
    Response::json(&serde_json::json!({
        "shard": id,
        "alive": fleet.alive_shards().contains(&id),
        "cells_replaced": replaced,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfig;
    use confbench_types::ManualClock;

    fn fleet() -> Arc<Fleet> {
        Arc::new(Fleet::new(FleetConfig {
            shards: 3,
            seed: 7,
            clock: Arc::new(ManualClock::new()),
            ..FleetConfig::default()
        }))
    }

    #[test]
    fn fleet_status_route_reports_shards() {
        let router = fleet().build_router();
        let resp = router.dispatch(&Request::new(Method::Get, "/v1/fleet"));
        assert_eq!(resp.status, 200);
        let view: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(view["alive"], 3);
        assert_eq!(view["shards"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn kill_route_marks_shard_dead() {
        let f = fleet();
        let router = f.build_router();
        let resp = router.dispatch(&Request::new(Method::Post, "/v1/fleet/shards/1/kill"));
        assert_eq!(resp.status, 200);
        let view: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(view["alive"], false);
        assert_eq!(f.alive_shards(), vec![0, 2]);
        // Unknown and malformed ids are typed REST errors.
        assert_eq!(
            router.dispatch(&Request::new(Method::Post, "/v1/fleet/shards/9/kill")).status,
            404
        );
        assert_eq!(
            router.dispatch(&Request::new(Method::Post, "/v1/fleet/shards/x/kill")).status,
            400
        );
    }

    #[test]
    fn migration_route_runs_and_lists() {
        let f = fleet();
        let router = f.build_router();
        let req = Request::new(Method::Post, "/v1/migrations")
            .json(&serde_json::json!({"platform": "tdx"}));
        let resp = router.dispatch(&req);
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let view: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert!(view["pages_total"].as_u64().unwrap() > 0);
        assert!(view["session"].as_str().unwrap().starts_with("as-"), "{view:?}");

        let list = router.dispatch(&Request::new(Method::Get, "/v1/migrations"));
        let views: serde_json::Value = serde_json::from_slice(&list.body).unwrap();
        assert_eq!(views.as_array().unwrap().len(), 1);
    }

    #[test]
    fn campaign_routes_submit_and_report_progress() {
        let f = fleet();
        let router = f.build_router();
        let spec = confbench_types::CampaignSpec {
            functions: vec![confbench_types::CampaignFunction::new("factors").arg("360360")],
            languages: vec![confbench_types::Language::Go],
            platforms: vec![confbench_types::TeePlatform::Tdx],
            modes: vec![VmKind::Secure, VmKind::Normal],
            trials: 1,
            seed: 7,
            priority: confbench_types::Priority::Normal,
            deadline_ms: None,
            device: None,
        };
        let resp = router.dispatch(&Request::new(Method::Post, "/v1/fleet/campaigns").json(&spec));
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let receipt: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(receipt["jobs"], 2);
        let id = receipt["id"].as_str().unwrap().to_owned();

        f.drain();
        let resp =
            router.dispatch(&Request::new(Method::Get, &format!("/v1/fleet/campaigns/{id}")));
        assert_eq!(resp.status, 200);
        let status: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(status["complete"], true, "{status:?}");
        assert_eq!(
            router.dispatch(&Request::new(Method::Get, "/v1/fleet/campaigns/nope")).status,
            404
        );
    }

    #[test]
    fn legacy_alias_carries_deprecation_headers() {
        let router = fleet().build_router();
        let resp = router.dispatch(&Request::new(Method::Get, "/fleet"));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.headers.get("deprecation").map(String::as_str), Some("true"));
    }
}

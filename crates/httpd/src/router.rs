//! Path routing with parameter capture.

use std::collections::HashMap;
use std::sync::Arc;

use crate::http::{Method, Request, Response};

/// A request handler: receives the request plus captured path parameters.
pub type Handler = Arc<dyn Fn(&Request, &HashMap<String, String>) -> Response + Send + Sync>;

struct Route {
    method: Method,
    segments: Vec<Segment>,
    handler: Handler,
}

enum Segment {
    Literal(String),
    Param(String),
}

/// A method-and-path router supporting `:param` captures.
///
/// # Example
///
/// ```
/// use confbench_httpd::{Method, Request, Response, Router};
///
/// let mut router = Router::new();
/// router.add(Method::Get, "/functions/:name", |_req, params| {
///     Response::text(format!("fn={}", params["name"]))
/// });
/// let req = Request::new(Method::Get, "/functions/fib");
/// let resp = router.dispatch(&req);
/// assert_eq!(resp.body, b"fn=fib");
/// ```
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl Router {
    /// Creates an empty router (dispatch returns 404 for everything).
    pub fn new() -> Self {
        Router::default()
    }

    /// Registers a handler for `method` on `pattern`. Pattern segments
    /// starting with `:` capture the corresponding path segment.
    pub fn add<F>(&mut self, method: Method, pattern: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request, &HashMap<String, String>) -> Response + Send + Sync + 'static,
    {
        let segments = pattern
            .trim_matches('/')
            .split('/')
            .filter(|s| !s.is_empty())
            .map(|s| match s.strip_prefix(':') {
                Some(name) => Segment::Param(name.to_owned()),
                None => Segment::Literal(s.to_owned()),
            })
            .collect();
        self.routes.push(Route { method, segments, handler: Arc::new(handler) });
        self
    }

    /// Routes a request, returning 404/405 when nothing matches.
    pub fn dispatch(&self, request: &Request) -> Response {
        let parts: Vec<&str> =
            request.path.trim_matches('/').split('/').filter(|s| !s.is_empty()).collect();
        let mut saw_path_match = false;
        for route in &self.routes {
            if let Some(params) = match_segments(&route.segments, &parts) {
                saw_path_match = true;
                if route.method == request.method {
                    return (route.handler)(request, &params);
                }
            }
        }
        if saw_path_match {
            Response::error(405, "method not allowed")
        } else {
            Response::error(404, "not found")
        }
    }
}

fn match_segments(segments: &[Segment], parts: &[&str]) -> Option<HashMap<String, String>> {
    if segments.len() != parts.len() {
        return None;
    }
    let mut params = HashMap::new();
    for (seg, part) in segments.iter().zip(parts) {
        match seg {
            Segment::Literal(lit) if lit == part => {}
            Segment::Literal(_) => return None,
            Segment::Param(name) => {
                params.insert(name.clone(), (*part).to_owned());
            }
        }
    }
    Some(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router() -> Router {
        let mut r = Router::new();
        r.add(Method::Get, "/health", |_, _| Response::text("ok"));
        r.add(Method::Post, "/run", |_, _| Response::text("ran"));
        r.add(Method::Get, "/functions/:name", |_, p| Response::text(p["name"].clone()));
        r.add(Method::Get, "/a/:x/b/:y", |_, p| Response::text(format!("{}-{}", p["x"], p["y"])));
        r
    }

    #[test]
    fn literal_match() {
        let r = router();
        let resp = r.dispatch(&Request::new(Method::Get, "/health"));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"ok");
    }

    #[test]
    fn param_capture() {
        let r = router();
        let resp = r.dispatch(&Request::new(Method::Get, "/functions/cpustress"));
        assert_eq!(resp.body, b"cpustress");
        let resp = r.dispatch(&Request::new(Method::Get, "/a/1/b/2"));
        assert_eq!(resp.body, b"1-2");
    }

    #[test]
    fn not_found_vs_method_not_allowed() {
        let r = router();
        assert_eq!(r.dispatch(&Request::new(Method::Get, "/nope")).status, 404);
        assert_eq!(r.dispatch(&Request::new(Method::Get, "/run")).status, 405);
        assert_eq!(r.dispatch(&Request::new(Method::Post, "/health")).status, 405);
    }

    #[test]
    fn trailing_slashes_ignored() {
        let r = router();
        assert_eq!(r.dispatch(&Request::new(Method::Get, "/health/")).status, 200);
    }

    #[test]
    fn segment_count_must_match() {
        let r = router();
        assert_eq!(r.dispatch(&Request::new(Method::Get, "/functions/a/b")).status, 404);
        assert_eq!(r.dispatch(&Request::new(Method::Get, "/functions")).status, 404);
    }

    #[test]
    fn registration_order_breaks_literal_vs_param_overlap() {
        // Both routes match GET /functions/list; dispatch is first-registered
        // wins, so a literal route must be added before the param catch-all
        // to take precedence.
        let mut r = Router::new();
        r.add(Method::Get, "/functions/list", |_, _| Response::text("literal"));
        r.add(Method::Get, "/functions/:name", |_, p| Response::text(p["name"].clone()));
        assert_eq!(r.dispatch(&Request::new(Method::Get, "/functions/list")).body, b"literal");
        assert_eq!(r.dispatch(&Request::new(Method::Get, "/functions/fib")).body, b"fib");

        // Registered the other way round, the param route shadows the
        // literal — pinning the (documented) footgun.
        let mut shadowed = Router::new();
        shadowed.add(Method::Get, "/functions/:name", |_, p| Response::text(p["name"].clone()));
        shadowed.add(Method::Get, "/functions/list", |_, _| Response::text("literal"));
        assert_eq!(shadowed.dispatch(&Request::new(Method::Get, "/functions/list")).body, b"list");
    }

    #[test]
    fn wrong_method_on_param_route_falls_through_to_later_match() {
        // A path-matching route with the wrong method must not hijack
        // dispatch: a later route with the right method still wins, and 405
        // is only the answer when no method matches anywhere.
        let mut r = Router::new();
        r.add(Method::Get, "/items/:id", |_, p| Response::text(format!("get {}", p["id"])));
        r.add(Method::Post, "/items/special", |_, _| Response::text("posted"));
        assert_eq!(r.dispatch(&Request::new(Method::Post, "/items/special")).body, b"posted");
        assert_eq!(r.dispatch(&Request::new(Method::Post, "/items/other")).status, 405);
        assert_eq!(r.dispatch(&Request::new(Method::Get, "/items/special")).body, b"get special");
    }

    #[test]
    fn slash_variants_normalize() {
        let r = router();
        // Leading/trailing/doubled slashes collapse to the same segments.
        assert_eq!(r.dispatch(&Request::new(Method::Get, "//health")).status, 200);
        assert_eq!(r.dispatch(&Request::new(Method::Get, "/health//")).status, 200);
        assert_eq!(r.dispatch(&Request::new(Method::Get, "/functions//fib")).body, b"fib");
        assert_eq!(r.dispatch(&Request::new(Method::Post, "/run/")).status, 200);
    }

    #[test]
    fn root_path_is_not_found_unless_registered() {
        let r = router();
        assert_eq!(r.dispatch(&Request::new(Method::Get, "/")).status, 404);
        let mut with_root = Router::new();
        with_root.add(Method::Get, "/", |_, _| Response::text("home"));
        assert_eq!(with_root.dispatch(&Request::new(Method::Get, "/")).body, b"home");
        // An empty pattern and "/" are the same zero-segment route.
        assert_eq!(with_root.dispatch(&Request::new(Method::Get, "")).body, b"home");
    }
}

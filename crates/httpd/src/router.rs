//! Path routing with parameter capture.

use std::collections::HashMap;
use std::sync::Arc;

use crate::http::{Method, Request, Response};

/// A request handler: receives the request plus captured path parameters.
pub type Handler = Arc<dyn Fn(&Request, &HashMap<String, String>) -> Response + Send + Sync>;

struct Route {
    method: Method,
    segments: Vec<Segment>,
    handler: Handler,
}

enum Segment {
    Literal(String),
    Param(String),
}

/// A method-and-path router supporting `:param` captures.
///
/// # Example
///
/// ```
/// use confbench_httpd::{Method, Request, Response, Router};
///
/// let mut router = Router::new();
/// router.add(Method::Get, "/functions/:name", |_req, params| {
///     Response::text(format!("fn={}", params["name"]))
/// });
/// let req = Request::new(Method::Get, "/functions/fib");
/// let resp = router.dispatch(&req);
/// assert_eq!(resp.body, b"fn=fib");
/// ```
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl Router {
    /// Creates an empty router (dispatch returns 404 for everything).
    pub fn new() -> Self {
        Router::default()
    }

    /// Registers a handler for `method` on `pattern`. Pattern segments
    /// starting with `:` capture the corresponding path segment.
    pub fn add<F>(&mut self, method: Method, pattern: &str, handler: F) -> &mut Self
    where
        F: Fn(&Request, &HashMap<String, String>) -> Response + Send + Sync + 'static,
    {
        let segments = pattern
            .trim_matches('/')
            .split('/')
            .filter(|s| !s.is_empty())
            .map(|s| match s.strip_prefix(':') {
                Some(name) => Segment::Param(name.to_owned()),
                None => Segment::Literal(s.to_owned()),
            })
            .collect();
        self.routes.push(Route { method, segments, handler: Arc::new(handler) });
        self
    }

    /// Routes a request, returning 404/405 when nothing matches.
    pub fn dispatch(&self, request: &Request) -> Response {
        let parts: Vec<&str> =
            request.path.trim_matches('/').split('/').filter(|s| !s.is_empty()).collect();
        let mut saw_path_match = false;
        for route in &self.routes {
            if let Some(params) = match_segments(&route.segments, &parts) {
                saw_path_match = true;
                if route.method == request.method {
                    return (route.handler)(request, &params);
                }
            }
        }
        if saw_path_match {
            Response::error(405, "method not allowed")
        } else {
            Response::error(404, "not found")
        }
    }
}

fn match_segments(segments: &[Segment], parts: &[&str]) -> Option<HashMap<String, String>> {
    if segments.len() != parts.len() {
        return None;
    }
    let mut params = HashMap::new();
    for (seg, part) in segments.iter().zip(parts) {
        match seg {
            Segment::Literal(lit) if lit == part => {}
            Segment::Literal(_) => return None,
            Segment::Param(name) => {
                params.insert(name.clone(), (*part).to_owned());
            }
        }
    }
    Some(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router() -> Router {
        let mut r = Router::new();
        r.add(Method::Get, "/health", |_, _| Response::text("ok"));
        r.add(Method::Post, "/run", |_, _| Response::text("ran"));
        r.add(Method::Get, "/functions/:name", |_, p| Response::text(p["name"].clone()));
        r.add(Method::Get, "/a/:x/b/:y", |_, p| Response::text(format!("{}-{}", p["x"], p["y"])));
        r
    }

    #[test]
    fn literal_match() {
        let r = router();
        let resp = r.dispatch(&Request::new(Method::Get, "/health"));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"ok");
    }

    #[test]
    fn param_capture() {
        let r = router();
        let resp = r.dispatch(&Request::new(Method::Get, "/functions/cpustress"));
        assert_eq!(resp.body, b"cpustress");
        let resp = r.dispatch(&Request::new(Method::Get, "/a/1/b/2"));
        assert_eq!(resp.body, b"1-2");
    }

    #[test]
    fn not_found_vs_method_not_allowed() {
        let r = router();
        assert_eq!(r.dispatch(&Request::new(Method::Get, "/nope")).status, 404);
        assert_eq!(r.dispatch(&Request::new(Method::Get, "/run")).status, 405);
        assert_eq!(r.dispatch(&Request::new(Method::Post, "/health")).status, 405);
    }

    #[test]
    fn trailing_slashes_ignored() {
        let r = router();
        assert_eq!(r.dispatch(&Request::new(Method::Get, "/health/")).status, 200);
    }

    #[test]
    fn segment_count_must_match() {
        let r = router();
        assert_eq!(r.dispatch(&Request::new(Method::Get, "/functions/a/b")).status, 404);
        assert_eq!(r.dispatch(&Request::new(Method::Get, "/functions")).status, 404);
    }
}

//! HTTP/1.1 message types, parsing, and serialization.

use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Supported request methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// GET
    Get,
    /// POST
    Post,
    /// PUT
    Put,
    /// DELETE
    Delete,
}

impl Method {
    fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "DELETE" => Some(Method::Delete),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
        })
    }
}

/// Errors from reading or parsing an HTTP message.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request/status line or header.
    Malformed(String),
    /// Method not recognized.
    BadMethod(String),
    /// Body longer than the configured limit.
    BodyTooLarge(usize),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Malformed(msg) => write!(f, "malformed http message: {msg}"),
            HttpError::BadMethod(m) => write!(f, "unsupported method: {m}"),
            HttpError::BodyTooLarge(n) => write!(f, "body of {n} bytes exceeds limit"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HttpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Maximum accepted body size (16 MiB — enough for function uploads).
pub const MAX_BODY: usize = 16 << 20;

/// Hard cap on a whole HTTP message (request line + headers + body).
const MESSAGE_LIMIT: u64 = (MAX_BODY + (64 << 10)) as u64;

/// An HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Path without the query string.
    pub path: String,
    /// Decoded query parameters.
    pub query: HashMap<String, String>,
    /// Headers, keys lowercased.
    pub headers: HashMap<String, String>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// Creates a request (client side).
    pub fn new(method: Method, path_and_query: &str) -> Self {
        let (path, query) = split_query(path_and_query);
        Request { method, path, query, headers: HashMap::new(), body: Vec::new() }
    }

    /// Sets a JSON body (client side).
    pub fn json(mut self, value: &impl serde::Serialize) -> Self {
        self.body = serde_json::to_vec(value).expect("serializable value");
        self.headers.insert("content-type".into(), "application/json".into());
        self
    }

    /// Deserializes the body as JSON.
    ///
    /// # Errors
    ///
    /// Returns serde's error on malformed JSON.
    pub fn body_json<T: serde::de::DeserializeOwned>(&self) -> Result<T, serde_json::Error> {
        serde_json::from_slice(&self.body)
    }

    /// Reads one request from a stream.
    ///
    /// # Errors
    ///
    /// [`HttpError`] on malformed input or I/O failure.
    pub fn read_from(stream: &mut impl Read) -> Result<Request, HttpError> {
        // Bound the whole message so a hostile peer cannot feed an
        // arbitrarily long request line or header block into memory.
        let mut reader = BufReader::new(stream.by_ref().take(MESSAGE_LIMIT));
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let mut parts = line.trim_end().splitn(3, ' ');
        let method = parts
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| HttpError::Malformed("empty request line".into()))?;
        let method =
            Method::parse(method).ok_or_else(|| HttpError::BadMethod(method.to_owned()))?;
        let target =
            parts.next().ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
        let (path, query) = split_query(target);

        let headers = read_headers(&mut reader)?;
        let body = read_body(&mut reader, &headers)?;
        Ok(Request { method, path, query, headers, body })
    }

    /// Serializes the request to a stream.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn write_to(&self, stream: &mut impl Write) -> Result<(), HttpError> {
        let query = encode_query(&self.query);
        write!(stream, "{} {}{} HTTP/1.1\r\n", self.method, self.path, query)?;
        for (k, v) in &self.headers {
            write!(stream, "{k}: {v}\r\n")?;
        }
        write!(stream, "content-length: {}\r\n\r\n", self.body.len())?;
        stream.write_all(&self.body)?;
        stream.flush()?;
        Ok(())
    }
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers, keys lowercased.
    pub headers: HashMap<String, String>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// 200 with a JSON body.
    pub fn json(value: &impl serde::Serialize) -> Self {
        let body = serde_json::to_vec(value).expect("serializable value");
        let mut headers = HashMap::new();
        headers.insert("content-type".into(), "application/json".into());
        Response { status: 200, headers, body }
    }

    /// 200 with a plain-text body.
    pub fn text(body: impl Into<String>) -> Self {
        let mut headers = HashMap::new();
        headers.insert("content-type".into(), "text/plain".into());
        Response { status: 200, headers, body: body.into().into_bytes() }
    }

    /// An error response with a plain-text message.
    pub fn error(status: u16, message: impl Into<String>) -> Self {
        let mut r = Response::text(message.into());
        r.status = status;
        r
    }

    /// Deserializes the body as JSON.
    ///
    /// # Errors
    ///
    /// Returns serde's error on malformed JSON.
    pub fn body_json<T: serde::de::DeserializeOwned>(&self) -> Result<T, serde_json::Error> {
        serde_json::from_slice(&self.body)
    }

    /// Reads one response from a stream.
    ///
    /// # Errors
    ///
    /// [`HttpError`] on malformed input or I/O failure.
    pub fn read_from(stream: &mut impl Read) -> Result<Response, HttpError> {
        let mut reader = BufReader::new(stream.by_ref().take(MESSAGE_LIMIT));
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let mut parts = line.trim_end().splitn(3, ' ');
        let _version = parts.next();
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| HttpError::Malformed(format!("bad status line: {line:?}")))?;
        let headers = read_headers(&mut reader)?;
        let body = read_body(&mut reader, &headers)?;
        Ok(Response { status, headers, body })
    }

    /// Serializes the response to a stream.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn write_to(&self, stream: &mut impl Write) -> Result<(), HttpError> {
        write!(stream, "HTTP/1.1 {} {}\r\n", self.status, reason(self.status))?;
        for (k, v) in &self.headers {
            write!(stream, "{k}: {v}\r\n")?;
        }
        write!(stream, "content-length: {}\r\n\r\n", self.body.len())?;
        stream.write_all(&self.body)?;
        stream.flush()?;
        Ok(())
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

fn read_headers(reader: &mut impl BufRead) -> Result<HashMap<String, String>, HttpError> {
    let mut headers = HashMap::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            return Ok(headers);
        }
        let (k, v) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header: {line:?}")))?;
        headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_owned());
    }
}

fn read_body(
    reader: &mut impl BufRead,
    headers: &HashMap<String, String>,
) -> Result<Vec<u8>, HttpError> {
    let len: usize = headers.get("content-length").and_then(|v| v.parse().ok()).unwrap_or(0);
    if len > MAX_BODY {
        return Err(HttpError::BodyTooLarge(len));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(body)
}

fn split_query(target: &str) -> (String, HashMap<String, String>) {
    match target.split_once('?') {
        None => (target.to_owned(), HashMap::new()),
        Some((path, qs)) => {
            let mut query = HashMap::new();
            for pair in qs.split('&').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                query.insert(percent_decode(k), percent_decode(v));
            }
            (path.to_owned(), query)
        }
    }
}

fn encode_query(query: &HashMap<String, String>) -> String {
    if query.is_empty() {
        return String::new();
    }
    let mut pairs: Vec<_> = query.iter().collect();
    pairs.sort();
    let qs: Vec<String> =
        pairs.iter().map(|(k, v)| format!("{}={}", percent_encode(k), percent_encode(v))).collect();
    format!("?{}", qs.join("&"))
}

fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 3 <= bytes.len() {
            if let Some(hex) = s.get(i + 1..i + 3) {
                if let Ok(b) = u8::from_str_radix(hex, 16) {
                    out.push(b);
                    i += 3;
                    continue;
                }
            }
            out.push(b'%');
            i += 1;
        } else if bytes[i] == b'+' {
            out.push(b' ');
            i += 1;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn request_roundtrip() {
        let req = Request::new(Method::Post, "/run?tee=tdx&kind=secure")
            .json(&serde_json::json!({"x": 1}));
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        let parsed = Request::read_from(&mut Cursor::new(buf)).unwrap();
        assert_eq!(parsed.method, Method::Post);
        assert_eq!(parsed.path, "/run");
        assert_eq!(parsed.query["tee"], "tdx");
        assert_eq!(parsed.query["kind"], "secure");
        let v: serde_json::Value = parsed.body_json().unwrap();
        assert_eq!(v["x"], 1);
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::json(&serde_json::json!({"ok": true}));
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let parsed = Response::read_from(&mut Cursor::new(buf)).unwrap();
        assert_eq!(parsed.status, 200);
        let v: serde_json::Value = parsed.body_json().unwrap();
        assert_eq!(v["ok"], true);
    }

    #[test]
    fn error_response_carries_status() {
        let resp = Response::error(404, "nope");
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found"));
        assert!(text.ends_with("nope"));
    }

    #[test]
    fn bad_method_rejected() {
        let raw = b"BREW /coffee HTTP/1.1\r\n\r\n".to_vec();
        assert!(matches!(Request::read_from(&mut Cursor::new(raw)), Err(HttpError::BadMethod(_))));
    }

    #[test]
    fn malformed_header_rejected() {
        let raw = b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n".to_vec();
        assert!(matches!(Request::read_from(&mut Cursor::new(raw)), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn oversized_body_rejected() {
        let raw = format!("POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(
            Request::read_from(&mut Cursor::new(raw.into_bytes())),
            Err(HttpError::BodyTooLarge(_))
        ));
    }

    #[test]
    fn percent_coding_roundtrips() {
        let original = "hello world/100%+fun";
        assert_eq!(percent_decode(&percent_encode(original)), original);
    }

    #[test]
    fn missing_content_length_means_empty_body() {
        let raw = b"GET /x HTTP/1.1\r\nhost: localhost\r\n\r\n".to_vec();
        let req = Request::read_from(&mut Cursor::new(raw)).unwrap();
        assert!(req.body.is_empty());
        assert_eq!(req.headers["host"], "localhost");
    }
}

//! HTTP/1.1 message types, parsing, and serialization.

use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Maximum length of a request/status line in bytes.
pub const MAX_START_LINE: usize = 8 << 10;
/// Maximum length of a single header line in bytes.
pub const MAX_HEADER_LINE: usize = 8 << 10;
/// Maximum number of headers per message.
pub const MAX_HEADERS: usize = 100;
/// Maximum total header-block size in bytes.
pub const MAX_HEADER_BYTES: usize = 64 << 10;

/// Supported request methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// GET
    Get,
    /// POST
    Post,
    /// PUT
    Put,
    /// DELETE
    Delete,
}

impl Method {
    fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "DELETE" => Some(Method::Delete),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
        })
    }
}

/// Errors from reading or parsing an HTTP message.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request/status line or header.
    Malformed(String),
    /// Method not recognized.
    BadMethod(String),
    /// Body longer than the configured limit.
    BodyTooLarge(usize),
    /// Request line or header block exceeds the configured limits.
    HeadersTooLarge(String),
    /// The peer closed the connection before sending any request bytes
    /// (the normal end of a keep-alive connection, not a protocol error).
    Closed,
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl HttpError {
    /// The HTTP status a server should answer with for this parse error.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::HeadersTooLarge(_) => 431,
            HttpError::BodyTooLarge(_) => 413,
            _ => 400,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Malformed(msg) => write!(f, "malformed http message: {msg}"),
            HttpError::BadMethod(m) => write!(f, "unsupported method: {m}"),
            HttpError::BodyTooLarge(n) => write!(f, "body of {n} bytes exceeds limit"),
            HttpError::HeadersTooLarge(msg) => write!(f, "header block too large: {msg}"),
            HttpError::Closed => write!(f, "connection closed before a request arrived"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HttpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Maximum accepted body size (16 MiB — enough for function uploads).
pub const MAX_BODY: usize = 16 << 20;

/// Hard cap on a whole HTTP message (request line + headers + body).
const MESSAGE_LIMIT: u64 = (MAX_BODY + (64 << 10)) as u64;

/// An HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Path without the query string.
    pub path: String,
    /// Decoded query parameters.
    pub query: HashMap<String, String>,
    /// Headers, keys lowercased.
    pub headers: HashMap<String, String>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// Creates a request (client side).
    pub fn new(method: Method, path_and_query: &str) -> Self {
        let (path, query) = split_query(path_and_query);
        Request { method, path, query, headers: HashMap::new(), body: Vec::new() }
    }

    /// Sets a JSON body (client side).
    pub fn json(mut self, value: &impl serde::Serialize) -> Self {
        self.body = serde_json::to_vec(value).expect("serializable value");
        self.headers.insert("content-type".into(), "application/json".into());
        self
    }

    /// Deserializes the body as JSON.
    ///
    /// # Errors
    ///
    /// Returns serde's error on malformed JSON.
    pub fn body_json<T: serde::de::DeserializeOwned>(&self) -> Result<T, serde_json::Error> {
        serde_json::from_slice(&self.body)
    }

    /// Reads one request from a stream.
    ///
    /// # Errors
    ///
    /// [`HttpError`] on malformed input or I/O failure.
    pub fn read_from(stream: &mut impl Read) -> Result<Request, HttpError> {
        Request::read_from_buffered(&mut BufReader::new(stream))
    }

    /// Reads one request from a persistent buffered reader (the keep-alive
    /// server loop reuses one [`BufReader`] across requests so bytes the
    /// reader buffered past a message boundary are not lost).
    ///
    /// # Errors
    ///
    /// [`HttpError::Closed`] on clean EOF before any request bytes;
    /// otherwise as [`Request::read_from`].
    pub fn read_from_buffered(reader: &mut impl BufRead) -> Result<Request, HttpError> {
        // Bound the whole message so a hostile peer cannot feed an
        // arbitrarily long request line or header block into memory.
        let mut reader = reader.take(MESSAGE_LIMIT);
        let line = read_line_limited(&mut reader, MAX_START_LINE)?.ok_or(HttpError::Closed)?;
        let mut parts = line.trim_end().splitn(3, ' ');
        let method = parts
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| HttpError::Malformed("empty request line".into()))?;
        let method =
            Method::parse(method).ok_or_else(|| HttpError::BadMethod(method.to_owned()))?;
        // `splitn` yields an empty token for `GET  HTTP/1.1` (double space):
        // filter it out so a missing target is rejected, not accepted as "".
        let target = parts
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
        let (path, query) = split_query(target);

        let headers = read_headers(&mut reader)?;
        let body = read_body(&mut reader, &headers)?;
        Ok(Request { method, path, query, headers, body })
    }

    /// Whether the sender asked to keep the connection open after this
    /// request (HTTP/1.1 default; an explicit `Connection: close` opts out).
    pub fn wants_keep_alive(&self) -> bool {
        !self.headers.get("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Serializes the request to a stream.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn write_to(&self, stream: &mut impl Write) -> Result<(), HttpError> {
        // Assemble the whole message first: one write per request keeps a
        // small request in a single TCP segment (no Nagle/delayed-ACK
        // interplay between header and body segments).
        let query = encode_query(&self.query);
        let mut message = Vec::with_capacity(256 + self.body.len());
        write!(message, "{} {}{} HTTP/1.1\r\n", self.method, self.path, query)?;
        for (k, v) in &self.headers {
            write!(message, "{k}: {v}\r\n")?;
        }
        if !self.headers.contains_key("connection") {
            // HTTP/1.1 defaults to keep-alive; say so explicitly for the
            // benefit of intermediaries and older peers.
            write!(message, "connection: keep-alive\r\n")?;
        }
        write!(message, "content-length: {}\r\n\r\n", self.body.len())?;
        message.extend_from_slice(&self.body);
        stream.write_all(&message)?;
        stream.flush()?;
        Ok(())
    }
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers, keys lowercased.
    pub headers: HashMap<String, String>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// 200 with a JSON body.
    pub fn json(value: &impl serde::Serialize) -> Self {
        let body = serde_json::to_vec(value).expect("serializable value");
        let mut headers = HashMap::new();
        headers.insert("content-type".into(), "application/json".into());
        Response { status: 200, headers, body }
    }

    /// 200 with a plain-text body.
    pub fn text(body: impl Into<String>) -> Self {
        let mut headers = HashMap::new();
        headers.insert("content-type".into(), "text/plain".into());
        Response { status: 200, headers, body: body.into().into_bytes() }
    }

    /// An error response with a plain-text message.
    pub fn error(status: u16, message: impl Into<String>) -> Self {
        let mut r = Response::text(message.into());
        r.status = status;
        r
    }

    /// Deserializes the body as JSON.
    ///
    /// # Errors
    ///
    /// Returns serde's error on malformed JSON.
    pub fn body_json<T: serde::de::DeserializeOwned>(&self) -> Result<T, serde_json::Error> {
        serde_json::from_slice(&self.body)
    }

    /// Reads one response from a stream.
    ///
    /// # Errors
    ///
    /// [`HttpError`] on malformed input or I/O failure; [`HttpError::Closed`]
    /// when the peer closed before sending any response bytes.
    pub fn read_from(stream: &mut impl Read) -> Result<Response, HttpError> {
        let mut reader = BufReader::new(stream.by_ref().take(MESSAGE_LIMIT));
        let line = read_line_limited(&mut reader, MAX_START_LINE)?.ok_or(HttpError::Closed)?;
        let mut parts = line.trim_end().splitn(3, ' ');
        let _version = parts.next();
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| HttpError::Malformed(format!("bad status line: {line:?}")))?;
        let headers = read_headers(&mut reader)?;
        let body = read_body(&mut reader, &headers)?;
        Ok(Response { status, headers, body })
    }

    /// Whether the sender will keep the connection open after this response
    /// (HTTP/1.1 default; an explicit `Connection: close` opts out).
    pub fn keep_alive(&self) -> bool {
        !self.headers.get("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Serializes the response to a stream.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn write_to(&self, stream: &mut impl Write) -> Result<(), HttpError> {
        // One write per response, for the same reason as
        // [`Request::write_to`].
        stream.write_all(&self.to_bytes())?;
        stream.flush()?;
        Ok(())
    }

    /// Serializes the whole response into one buffer (the reactor's write
    /// state machine flushes it incrementally as the socket drains).
    pub(crate) fn to_bytes(&self) -> Vec<u8> {
        let mut message = Vec::with_capacity(256 + self.body.len());
        let _ = write!(message, "HTTP/1.1 {} {}\r\n", self.status, reason(self.status));
        for (k, v) in &self.headers {
            let _ = write!(message, "{k}: {v}\r\n");
        }
        let _ = write!(message, "content-length: {}\r\n\r\n", self.body.len());
        message.extend_from_slice(&self.body);
        message
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Reads one `\n`-terminated line of at most `max` bytes. Returns `None` on
/// clean EOF before any bytes, [`HttpError::HeadersTooLarge`] when the line
/// would exceed `max` (a slow-loris or oversized-field defence: the line is
/// abandoned rather than accumulated without bound).
fn read_line_limited(reader: &mut impl BufRead, max: usize) -> Result<Option<String>, HttpError> {
    // Read raw bytes and validate UTF-8 explicitly: `BufRead::read_line`
    // would surface non-UTF-8 bytes as an *I/O* error (InvalidData), which
    // misclassifies a malformed request as a transport failure. The fuzz
    // sweep found exactly that on bit-flipped request lines.
    let mut raw = Vec::new();
    let n = reader.take((max + 1) as u64).read_until(b'\n', &mut raw)?;
    if n == 0 {
        return Ok(None);
    }
    if n > max && !raw.ends_with(b"\n") {
        return Err(HttpError::HeadersTooLarge(format!("line exceeds {max} bytes")));
    }
    let line = String::from_utf8(raw)
        .map_err(|_| HttpError::Malformed("non-utf-8 bytes in request line or header".into()))?;
    Ok(Some(line))
}

fn read_headers(reader: &mut impl BufRead) -> Result<HashMap<String, String>, HttpError> {
    let mut headers = HashMap::new();
    let mut total_bytes = 0usize;
    loop {
        let line = read_line_limited(reader, MAX_HEADER_LINE)?
            .ok_or_else(|| HttpError::Malformed("connection closed inside header block".into()))?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            return Ok(headers);
        }
        total_bytes += line.len();
        if total_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::HeadersTooLarge(format!(
                "header block exceeds {MAX_HEADER_BYTES} bytes"
            )));
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::HeadersTooLarge(format!("more than {MAX_HEADERS} headers")));
        }
        let (k, v) = trimmed
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header: {trimmed:?}")))?;
        let key = k.trim().to_ascii_lowercase();
        // Duplicate content-length headers are a request-smuggling vector:
        // reject them outright instead of last-writer-wins.
        if key == "content-length" && headers.contains_key(&key) {
            return Err(HttpError::Malformed("duplicate content-length header".into()));
        }
        headers.insert(key, v.trim().to_owned());
    }
}

fn read_body(
    reader: &mut impl BufRead,
    headers: &HashMap<String, String>,
) -> Result<Vec<u8>, HttpError> {
    // A missing content-length means no body; a present one must parse as a
    // non-negative integer — serving an empty body for `-1` or garbage would
    // silently desynchronize peer and server framing.
    let len: usize = match headers.get("content-length") {
        None => 0,
        Some(v) => {
            // `u64::parse` accepts a leading `+`; HTTP content-length is
            // DIGIT-only, and anything looser desynchronizes framing with
            // peers that reject it.
            if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
                return Err(HttpError::Malformed(format!("bad content-length: {v:?}")));
            }
            v.parse::<u64>()
                .ok()
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| HttpError::Malformed(format!("bad content-length: {v:?}")))?
        }
    };
    if len > MAX_BODY {
        return Err(HttpError::BodyTooLarge(len));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(body)
}

/// Scans an accumulating request buffer for a complete header block
/// (request line + headers + blank line), enforcing the same size caps as
/// the blocking parser *incrementally* — a slow-loris peer dripping header
/// lines forever is cut off at the caps without ever completing a block.
///
/// Returns `Ok(true)` when the terminator has arrived, `Ok(false)` when
/// more bytes are needed, and [`HttpError::HeadersTooLarge`] as soon as a
/// cap is exceeded (even mid-line).
fn header_block_complete(buf: &[u8]) -> Result<bool, HttpError> {
    let mut offset = 0; // start of the current line
    let mut lines = 0usize; // complete lines seen; line 0 is the request line
    let mut header_bytes = 0usize;
    while let Some(nl) = buf[offset..].iter().position(|&b| b == b'\n') {
        let line_len = nl + 1;
        if lines == 0 {
            // `read_line_limited` accepts a line of max+1 bytes when the
            // last byte is the newline itself; mirror that bound exactly.
            if line_len > MAX_START_LINE + 1 {
                return Err(HttpError::HeadersTooLarge(format!(
                    "line exceeds {MAX_START_LINE} bytes"
                )));
            }
        } else {
            let line = &buf[offset..offset + line_len];
            if line.iter().all(u8::is_ascii_whitespace) {
                return Ok(true); // blank line: header block complete
            }
            if line_len > MAX_HEADER_LINE + 1 {
                return Err(HttpError::HeadersTooLarge(format!(
                    "line exceeds {MAX_HEADER_LINE} bytes"
                )));
            }
            header_bytes += line_len;
            if header_bytes > MAX_HEADER_BYTES {
                return Err(HttpError::HeadersTooLarge(format!(
                    "header block exceeds {MAX_HEADER_BYTES} bytes"
                )));
            }
            if lines > MAX_HEADERS {
                return Err(HttpError::HeadersTooLarge(format!("more than {MAX_HEADERS} headers")));
            }
        }
        lines += 1;
        offset += line_len;
    }
    // No newline in the tail yet: a partial line can still breach the caps
    // (an endless request line never contains '\n' at all).
    let partial = buf.len() - offset;
    if lines == 0 && partial > MAX_START_LINE {
        return Err(HttpError::HeadersTooLarge(format!("line exceeds {MAX_START_LINE} bytes")));
    }
    if lines > 0 && partial > MAX_HEADER_LINE {
        return Err(HttpError::HeadersTooLarge(format!("line exceeds {MAX_HEADER_LINE} bytes")));
    }
    if lines > 0 && header_bytes + partial > MAX_HEADER_BYTES {
        return Err(HttpError::HeadersTooLarge(format!(
            "header block exceeds {MAX_HEADER_BYTES} bytes"
        )));
    }
    Ok(false)
}

/// Attempts to parse one complete request from the front of `buf` without
/// blocking: the reactor calls this after every read. Returns the request
/// plus the number of bytes it consumed (pipelined followers stay in the
/// buffer), `None` when the message is still incomplete, or the same
/// [`HttpError`]s as [`Request::read_from_buffered`] — including cap
/// violations detected before the header block is even complete.
pub(crate) fn try_parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>, HttpError> {
    if buf.is_empty() || !header_block_complete(buf)? {
        return Ok(None);
    }
    let mut cursor = std::io::Cursor::new(buf);
    match Request::read_from_buffered(&mut cursor) {
        Ok(request) => Ok(Some((request, cursor.position() as usize))),
        // Headers are complete but the declared body has not all arrived.
        Err(HttpError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(None),
        Err(e) => Err(e),
    }
}

fn split_query(target: &str) -> (String, HashMap<String, String>) {
    match target.split_once('?') {
        None => (target.to_owned(), HashMap::new()),
        Some((path, qs)) => {
            let mut query = HashMap::new();
            for pair in qs.split('&').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                query.insert(percent_decode(k), percent_decode(v));
            }
            (path.to_owned(), query)
        }
    }
}

fn encode_query(query: &HashMap<String, String>) -> String {
    if query.is_empty() {
        return String::new();
    }
    let mut pairs: Vec<_> = query.iter().collect();
    pairs.sort();
    let qs: Vec<String> =
        pairs.iter().map(|(k, v)| format!("{}={}", percent_encode(k), percent_encode(v))).collect();
    format!("?{}", qs.join("&"))
}

fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 3 <= bytes.len() {
            if let Some(hex) = s.get(i + 1..i + 3) {
                if let Ok(b) = u8::from_str_radix(hex, 16) {
                    out.push(b);
                    i += 3;
                    continue;
                }
            }
            out.push(b'%');
            i += 1;
        } else if bytes[i] == b'+' {
            out.push(b' ');
            i += 1;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn request_roundtrip() {
        let req = Request::new(Method::Post, "/run?tee=tdx&kind=secure")
            .json(&serde_json::json!({"x": 1}));
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        let parsed = Request::read_from(&mut Cursor::new(buf)).unwrap();
        assert_eq!(parsed.method, Method::Post);
        assert_eq!(parsed.path, "/run");
        assert_eq!(parsed.query["tee"], "tdx");
        assert_eq!(parsed.query["kind"], "secure");
        let v: serde_json::Value = parsed.body_json().unwrap();
        assert_eq!(v["x"], 1);
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::json(&serde_json::json!({"ok": true}));
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let parsed = Response::read_from(&mut Cursor::new(buf)).unwrap();
        assert_eq!(parsed.status, 200);
        let v: serde_json::Value = parsed.body_json().unwrap();
        assert_eq!(v["ok"], true);
    }

    #[test]
    fn error_response_carries_status() {
        let resp = Response::error(404, "nope");
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found"));
        assert!(text.ends_with("nope"));
    }

    #[test]
    fn bad_method_rejected() {
        let raw = b"BREW /coffee HTTP/1.1\r\n\r\n".to_vec();
        assert!(matches!(Request::read_from(&mut Cursor::new(raw)), Err(HttpError::BadMethod(_))));
    }

    #[test]
    fn malformed_header_rejected() {
        let raw = b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n".to_vec();
        assert!(matches!(Request::read_from(&mut Cursor::new(raw)), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn oversized_body_rejected() {
        let raw = format!("POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(
            Request::read_from(&mut Cursor::new(raw.into_bytes())),
            Err(HttpError::BodyTooLarge(_))
        ));
    }

    #[test]
    fn percent_coding_roundtrips() {
        let original = "hello world/100%+fun";
        assert_eq!(percent_decode(&percent_encode(original)), original);
    }

    #[test]
    fn missing_content_length_means_empty_body() {
        let raw = b"GET /x HTTP/1.1\r\nhost: localhost\r\n\r\n".to_vec();
        let req = Request::read_from(&mut Cursor::new(raw)).unwrap();
        assert!(req.body.is_empty());
        assert_eq!(req.headers["host"], "localhost");
    }

    #[test]
    fn empty_stream_reads_as_closed_not_malformed() {
        let raw: Vec<u8> = Vec::new();
        assert!(matches!(Request::read_from(&mut Cursor::new(raw)), Err(HttpError::Closed)));
    }

    #[test]
    fn oversized_request_line_rejected_431() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_START_LINE));
        let err = Request::read_from(&mut Cursor::new(raw.into_bytes())).unwrap_err();
        assert!(matches!(err, HttpError::HeadersTooLarge(_)), "got {err}");
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn oversized_header_line_rejected_431() {
        let raw = format!("GET / HTTP/1.1\r\nx-big: {}\r\n\r\n", "v".repeat(MAX_HEADER_LINE));
        let err = Request::read_from(&mut Cursor::new(raw.into_bytes())).unwrap_err();
        assert!(matches!(err, HttpError::HeadersTooLarge(_)), "got {err}");
    }

    #[test]
    fn too_many_headers_rejected_431() {
        // A slow-loris stream: endless small header lines used to be read
        // forever; now the count cap cuts the request off.
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            raw.push_str(&format!("x-h{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        let err = Request::read_from(&mut Cursor::new(raw.into_bytes())).unwrap_err();
        assert!(matches!(err, HttpError::HeadersTooLarge(_)), "got {err}");
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn truncated_header_block_is_malformed() {
        let raw = b"GET / HTTP/1.1\r\nhost: x\r\n".to_vec(); // no terminating blank line
        assert!(matches!(Request::read_from(&mut Cursor::new(raw)), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn malformed_content_length_rejected_not_zeroed() {
        // `.parse().ok().unwrap_or(0)` used to serve an empty body for all
        // of these; they must be 400-class parse errors.
        for bad in ["abc", "-5", "1e3", "0x10", "18446744073709551616"] {
            let raw = format!("POST / HTTP/1.1\r\ncontent-length: {bad}\r\n\r\n");
            let err = Request::read_from(&mut Cursor::new(raw.into_bytes())).unwrap_err();
            assert!(matches!(err, HttpError::Malformed(_)), "content-length {bad:?} gave {err}");
            assert_eq!(err.status(), 400);
        }
    }

    #[test]
    fn duplicate_content_length_rejected() {
        let raw =
            b"POST / HTTP/1.1\r\ncontent-length: 3\r\ncontent-length: 5\r\n\r\nabcde".to_vec();
        let err = Request::read_from(&mut Cursor::new(raw)).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "got {err}");
        // Other duplicate headers keep the lenient last-writer-wins behavior.
        let raw = b"GET / HTTP/1.1\r\nx-a: 1\r\nx-a: 2\r\n\r\n".to_vec();
        let req = Request::read_from(&mut Cursor::new(raw)).unwrap();
        assert_eq!(req.headers["x-a"], "2");
    }

    #[test]
    fn connection_close_header_recognized() {
        let raw = b"GET / HTTP/1.1\r\nconnection: close\r\n\r\n".to_vec();
        let req = Request::read_from(&mut Cursor::new(raw)).unwrap();
        assert!(!req.wants_keep_alive());
        let raw = b"GET / HTTP/1.1\r\nconnection: Keep-Alive\r\n\r\n".to_vec();
        let req = Request::read_from(&mut Cursor::new(raw)).unwrap();
        assert!(req.wants_keep_alive());
        let raw = b"GET / HTTP/1.1\r\n\r\n".to_vec();
        assert!(Request::read_from(&mut Cursor::new(raw)).unwrap().wants_keep_alive());

        let mut resp = Response::text("x");
        assert!(resp.keep_alive(), "keep-alive is the HTTP/1.1 default");
        resp.headers.insert("connection".into(), "close".into());
        assert!(!resp.keep_alive());
    }

    #[test]
    fn incremental_parse_waits_for_complete_messages() {
        let mut raw = Vec::new();
        let mut req = Request::new(Method::Post, "/echo");
        req.body = b"hello body".to_vec();
        req.write_to(&mut raw).unwrap();
        // Every strict prefix is incomplete; the full message parses and
        // consumes exactly its own length.
        for cut in [0, 1, 10, raw.len() - 1] {
            assert!(try_parse_request(&raw[..cut]).unwrap().is_none(), "prefix of {cut} bytes");
        }
        let (parsed, consumed) = try_parse_request(&raw).unwrap().unwrap();
        assert_eq!(parsed.path, "/echo");
        assert_eq!(parsed.body, b"hello body");
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn incremental_parse_leaves_pipelined_request_in_buffer() {
        let mut raw = Vec::new();
        Request::new(Method::Get, "/first").write_to(&mut raw).unwrap();
        let first_len = raw.len();
        Request::new(Method::Get, "/second").write_to(&mut raw).unwrap();
        let (a, consumed) = try_parse_request(&raw).unwrap().unwrap();
        assert_eq!(a.path, "/first");
        assert_eq!(consumed, first_len);
        let (b, rest) = try_parse_request(&raw[consumed..]).unwrap().unwrap();
        assert_eq!(b.path, "/second");
        assert_eq!(consumed + rest, raw.len());
    }

    #[test]
    fn incremental_parse_enforces_caps_before_block_completes() {
        // An endless request line with no newline: cut off at the cap even
        // though no terminator will ever arrive.
        let raw = vec![b'a'; MAX_START_LINE + 1];
        let err = try_parse_request(&raw).unwrap_err();
        assert!(matches!(err, HttpError::HeadersTooLarge(_)), "got {err}");

        // A slow-loris header flood: each line is small but the count cap
        // fires long before the (never-sent) blank line.
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..=MAX_HEADERS {
            raw.extend_from_slice(format!("x-drip-{i}: v\r\n").as_bytes());
        }
        let err = try_parse_request(&raw).unwrap_err();
        assert!(matches!(err, HttpError::HeadersTooLarge(_)), "got {err}");
        assert_eq!(err.status(), 431);

        // An oversized single header line, newline never sent.
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(&vec![b'h'; MAX_HEADER_LINE + 2]);
        let err = try_parse_request(&raw).unwrap_err();
        assert!(matches!(err, HttpError::HeadersTooLarge(_)), "got {err}");
    }

    #[test]
    fn incremental_parse_matches_blocking_parser_on_malformed_input() {
        for raw in [
            &b"BREW /coffee HTTP/1.1\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\ncontent-length: nope\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\ncontent-length: 3\r\ncontent-length: 5\r\n\r\nabcde"[..],
        ] {
            let blocking = Request::read_from(&mut Cursor::new(raw.to_vec())).unwrap_err();
            let incremental = try_parse_request(raw).unwrap_err();
            assert_eq!(blocking.status(), incremental.status(), "for {raw:?}");
        }
        // Oversized declared body: rejected as soon as the headers land.
        let raw = format!("POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n", MAX_BODY + 1);
        let err = try_parse_request(raw.as_bytes()).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge(_)));
    }

    #[test]
    fn buffered_reader_survives_two_back_to_back_requests() {
        let mut raw = Vec::new();
        Request::new(Method::Get, "/first").write_to(&mut raw).unwrap();
        Request::new(Method::Get, "/second").write_to(&mut raw).unwrap();
        let mut cursor = Cursor::new(raw);
        let mut reader = std::io::BufReader::new(&mut cursor);
        let a = Request::read_from_buffered(&mut reader).unwrap();
        let b = Request::read_from_buffered(&mut reader).unwrap();
        assert_eq!(a.path, "/first");
        assert_eq!(b.path, "/second");
        assert!(matches!(Request::read_from_buffered(&mut reader), Err(HttpError::Closed)));
    }

    #[test]
    fn non_utf8_request_line_is_malformed_not_io() {
        // Regression: `read_line_limited` used to funnel non-UTF-8 bytes
        // through `BufRead::read_line`, which reports them as an *I/O* error
        // (kind InvalidData) — misclassifying a malformed request as a
        // transport failure. The fuzz sweep found this via bit flips.
        let raw = b"GET /\xff\xfe HTTP/1.1\r\n\r\n".to_vec();
        let err = Request::read_from(&mut Cursor::new(raw)).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "got {err:?}");
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn non_utf8_header_line_is_malformed_not_io() {
        let raw = b"GET / HTTP/1.1\r\nx-bad: \x80\x81\r\n\r\n".to_vec();
        let err = Request::read_from(&mut Cursor::new(raw)).unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "got {err:?}");
    }

    #[test]
    fn missing_request_target_is_malformed() {
        for raw in [&b"GET\r\n\r\n"[..], &b"GET  HTTP/1.1\r\n\r\n"[..], &b"\r\n\r\n"[..]] {
            let err = Request::read_from(&mut Cursor::new(raw.to_vec())).unwrap_err();
            assert_eq!(err.status(), 400, "for {raw:?}: {err:?}");
        }
    }

    #[test]
    fn hostile_content_length_values_are_rejected_cleanly() {
        // (` 5` is absent: header-value OWS trimming normalizes it to `5`.)
        for bad in ["-1", "1e9", "18446744073709551616", "0x10", "nope", "+3", ""] {
            let raw = format!("POST / HTTP/1.1\r\ncontent-length: {bad}\r\n\r\n");
            let err = Request::read_from(&mut Cursor::new(raw.into_bytes())).unwrap_err();
            assert!(matches!(err, HttpError::Malformed(_)), "for {bad:?}: {err:?}");
        }
        // In-range for u64 but over the body cap: a 413, not an allocation.
        let raw = format!("POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n", u64::MAX);
        let err = Request::read_from(&mut Cursor::new(raw.into_bytes())).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge(_)), "got {err:?}");
    }

    /// The property every mutant must satisfy: the parser returns `Ok` or a
    /// typed `Err` — it never panics, and it never leaks a malformed request
    /// as an `Io` error (only genuine EOF may surface as `Io`).
    fn assert_clean_parse(mutant: &[u8]) {
        match Request::read_from(&mut Cursor::new(mutant.to_vec())) {
            Ok(_) | Err(HttpError::Closed) => {}
            Err(HttpError::Io(e)) => {
                assert_eq!(
                    e.kind(),
                    std::io::ErrorKind::UnexpectedEof,
                    "Io error other than EOF for mutant {mutant:?}"
                );
            }
            Err(_) => {}
        }
        // The incremental parser must agree it can make a clean decision too.
        let _ = try_parse_request(mutant);
    }

    #[test]
    fn fuzz_sweep_request_parser() {
        let corpus: Vec<Vec<u8>> = {
            let mut c = Vec::new();
            for req in [
                Request::new(Method::Get, "/v1/campaigns?limit=5&offset=0"),
                Request::new(Method::Post, "/v1/functions").json(&serde_json::json!({
                    "name": "echo", "language": "rust", "source": "fn main() {}"
                })),
                Request::new(Method::Delete, "/v1/campaigns/42"),
                Request::new(Method::Put, "/v1/policies/tdx").json(&serde_json::json!({
                    "min_tcb": 7
                })),
            ] {
                let mut raw = Vec::new();
                req.write_to(&mut raw).unwrap();
                c.push(raw);
            }
            c
        };

        let mut mutator = confbench_crypto::fuzz::Mutator::new(0xC0FF_BE7C_0001);
        let iters = confbench_crypto::fuzz::sweep_iters();
        for base in &corpus {
            for _ in 0..iters {
                let mutant = mutator.mutate(base);
                assert_clean_parse(&mutant);
            }
        }
    }
}

//! A minimal HTTP/1.1 framework and TCP relay.
//!
//! The real ConfBench gateway is built on the Axum web framework and its
//! hosts steer traffic to VMs with `socat` (paper §III-B). Neither is
//! available offline, so this crate supplies the equivalent substrate from
//! scratch over `std::net`:
//!
//! * [`Request`] / [`Response`] — HTTP/1.1 messages with JSON helpers;
//! * [`Router`] — method + path routing with `:param` captures;
//! * [`Server`] / [`Client`] — a threaded listener and a blocking client;
//! * [`TcpRelay`] — socat-style bidirectional port forwarding;
//! * [`FaultInjector`] — deterministic connection drops, delays, and error
//!   statuses for resilience testing.
//!
//! # Example
//!
//! ```
//! use confbench_httpd::{Client, Method, Request, Response, Router, Server};
//!
//! let mut router = Router::new();
//! router.add(Method::Get, "/health", |_, _| Response::text("ok"));
//! let server = Server::spawn(router)?;
//! let resp = Client::new(server.addr()).send(&Request::new(Method::Get, "/health"))?;
//! assert_eq!(resp.status, 200);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod http;
mod relay;
mod router;
mod server;

pub use fault::{Fault, FaultInjector, Trigger};
pub use http::{HttpError, Method, Request, Response, MAX_BODY};
pub use relay::TcpRelay;
pub use router::{Handler, Router};
pub use server::{Client, Server};

//! A minimal HTTP/1.1 framework and TCP relay.
//!
//! The real ConfBench gateway is built on the Axum web framework and its
//! hosts steer traffic to VMs with `socat` (paper §III-B). Neither is
//! available offline, so this crate supplies the equivalent substrate from
//! scratch over `std::net`:
//!
//! * [`Request`] / [`Response`] — HTTP/1.1 messages with JSON helpers and
//!   hardened framing (size-capped request lines and headers, strict
//!   `content-length` parsing);
//! * [`Router`] — method + path routing with `:param` captures;
//! * [`Server`] — an epoll-reactor listener with HTTP/1.1 keep-alive:
//!   one reactor thread owns every socket nonblocking, a bounded worker
//!   pool executes handlers only, saturation answers `503` +
//!   `Retry-After`, and shutdown drains gracefully, with `httpd_*`
//!   metrics throughout ([`ServerConfig`] tunes workers/admission
//!   window/timeouts);
//! * [`Client`] — a blocking client with persistent pooled connections and
//!   transparent retry on stale keep-alive sockets;
//! * [`TcpRelay`] — socat-style bidirectional port forwarding;
//! * [`FaultInjector`] — deterministic connection drops, delays, error
//!   statuses, and mid-keep-alive closes for resilience testing.
//!
//! # Example
//!
//! ```
//! use confbench_httpd::{Client, Method, Request, Response, Router, Server};
//!
//! let mut router = Router::new();
//! router.add(Method::Get, "/health", |_, _| Response::text("ok"));
//! let server = Server::spawn(router)?;
//! let resp = Client::new(server.addr()).send(&Request::new(Method::Get, "/health"))?;
//! assert_eq!(resp.status, 200);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// `poll` needs FFI for epoll/eventfd (no libc crate offline); it is the
// only module allowed to opt back in via `#[allow(unsafe_code)]`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod fault;
mod http;
mod poll;
mod relay;
mod router;
mod server;

pub use fault::{Fault, FaultInjector, Trigger};
pub use http::{
    HttpError, Method, Request, Response, MAX_BODY, MAX_HEADERS, MAX_HEADER_BYTES, MAX_HEADER_LINE,
    MAX_START_LINE,
};
pub use relay::TcpRelay;
pub use router::{Handler, Router};
pub use server::{Client, Server, ServerBuilder, ServerConfig};

//! A socat-style TCP relay.
//!
//! The paper's hosts run `socat` to steer traffic from per-TEE ports to the
//! hosted VMs (§III-B). [`TcpRelay`] reproduces that: it listens on a local
//! port and forwards each connection bidirectionally to a target address.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::fault::{Fault, FaultInjector};
use crate::http::Response;
use crate::server::{connectable, join_with_timeout};

/// A running bidirectional TCP relay. Dropping it stops the listener.
///
/// # Example
///
/// ```no_run
/// use confbench_httpd::TcpRelay;
///
/// // Forward a local port to a VM's service address.
/// let relay = TcpRelay::spawn("127.0.0.1:0", "127.0.0.1:9000".parse()?)?;
/// println!("relay on {}", relay.addr());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct TcpRelay {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    connections: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpRelay {
    /// Binds `listen` and forwards every connection to `target`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(listen: &str, target: SocketAddr) -> io::Result<TcpRelay> {
        TcpRelay::spawn_inner(listen, target, None)
    }

    /// As [`TcpRelay::spawn`], with a [`FaultInjector`] deciding the fate of
    /// each relayed connection. `Status` faults answer with a canned HTTP
    /// response instead of forwarding (the relay fronts HTTP backends here).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn_with_faults(
        listen: &str,
        target: SocketAddr,
        faults: Arc<FaultInjector>,
    ) -> io::Result<TcpRelay> {
        TcpRelay::spawn_inner(listen, target, Some(faults))
    }

    fn spawn_inner(
        listen: &str,
        target: SocketAddr,
        faults: Option<Arc<FaultInjector>>,
    ) -> io::Result<TcpRelay> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicU64::new(0));
        let flag = Arc::clone(&shutdown);
        let conn_counter = Arc::clone(&connections);
        let accept_thread = std::thread::Builder::new()
            .name(format!("relay-{addr}"))
            .spawn(move || accept_loop(listener, target, flag, conn_counter, faults))?;
        Ok(TcpRelay { addr, shutdown, connections, accept_thread: Some(accept_thread) })
    }

    /// The listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections relayed so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::SeqCst)
    }

    /// Stops the relay.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop via loopback: a wildcard bind address is not
        // connectable, and an unbounded join could hang shutdown.
        let _ = TcpStream::connect_timeout(&connectable(self.addr), Duration::from_secs(1));
        if let Some(handle) = self.accept_thread.take() {
            join_with_timeout(handle, Duration::from_secs(5));
        }
    }
}

impl Drop for TcpRelay {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    target: SocketAddr,
    shutdown: Arc<AtomicBool>,
    connections: Arc<AtomicU64>,
    faults: Option<Arc<FaultInjector>>,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut client) = stream else { continue };
        connections.fetch_add(1, Ordering::SeqCst);
        match faults.as_ref().and_then(|f| f.decide()) {
            Some(Fault::DropConnection) => continue, // close without forwarding
            Some(Fault::Status(code)) => {
                let _ = std::thread::Builder::new().name("relay-conn".into()).spawn(move || {
                    // Answer immediately, then drain the client's request
                    // until EOF so its in-flight writes never hit a closed
                    // socket (EPIPE) before it reads the response. The drain
                    // is bounded by a total deadline, not per read: a client
                    // trickling bytes must not hold the thread open forever.
                    let _ = Response::error(code, "injected fault").write_to(&mut client);
                    let _ = client.shutdown(std::net::Shutdown::Write);
                    let _ = client.set_read_timeout(Some(Duration::from_millis(100)));
                    let deadline = std::time::Instant::now() + Duration::from_millis(500);
                    let mut buf = [0u8; 16 * 1024];
                    while std::time::Instant::now() < deadline {
                        match client.read(&mut buf) {
                            Ok(0) | Err(_) => break,
                            Ok(_) => {}
                        }
                    }
                });
                continue;
            }
            Some(Fault::Delay(d)) => {
                let _ = std::thread::Builder::new().name("relay-conn".into()).spawn(move || {
                    std::thread::sleep(d);
                    if let Ok(upstream) =
                        TcpStream::connect_timeout(&target, Duration::from_secs(10))
                    {
                        pipe_both(client, upstream);
                    }
                });
                continue;
            }
            // The relay forwards whole connections, so a mid-keep-alive close
            // is indistinguishable from a plain forward here; the server-side
            // injector handles that fault.
            Some(Fault::CloseAfterResponse) | None => {}
        }
        let _ = std::thread::Builder::new().name("relay-conn".into()).spawn(move || {
            if let Ok(upstream) = TcpStream::connect_timeout(&target, Duration::from_secs(10)) {
                pipe_both(client, upstream);
            }
        });
    }
}

fn pipe_both(a: TcpStream, b: TcpStream) {
    let (Ok(a2), Ok(b2)) = (a.try_clone(), b.try_clone()) else {
        return;
    };
    let t = std::thread::spawn(move || pipe(a2, b));
    pipe(b2, a);
    let _ = t.join();
}

fn pipe(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(std::net::Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{Method, Request, Response};
    use crate::router::Router;
    use crate::server::{Client, Server};

    #[test]
    fn relays_http_traffic_transparently() {
        let mut router = Router::new();
        router.add(Method::Get, "/vm", |_, _| Response::text("from the vm"));
        let backend = Server::spawn(router).unwrap();
        let relay = TcpRelay::spawn("127.0.0.1:0", backend.addr()).unwrap();

        let client = Client::new(relay.addr());
        let resp = client.send(&Request::new(Method::Get, "/vm")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"from the vm");
        assert_eq!(relay.connections(), 1);

        // Keep-alive passes through the relay: later requests reuse the
        // same relayed connection instead of opening new ones.
        for _ in 0..3 {
            let resp = client.send(&Request::new(Method::Get, "/vm")).unwrap();
            assert_eq!(resp.status, 200);
        }
        assert_eq!(relay.connections(), 1);
        assert_eq!(client.reused_connections(), 3);

        // A fresh client opens a second relayed connection.
        let other = Client::new(relay.addr());
        assert_eq!(other.send(&Request::new(Method::Get, "/vm")).unwrap().status, 200);
        assert_eq!(relay.connections(), 2);
    }

    #[test]
    fn relay_faults_drop_then_recover() {
        let mut router = Router::new();
        router.add(Method::Get, "/vm", |_, _| Response::text("alive"));
        let backend = Server::spawn(router).unwrap();
        let faults = Arc::new(
            FaultInjector::new()
                .rule(crate::fault::Trigger::Nth(1), Fault::DropConnection)
                .rule(crate::fault::Trigger::Nth(2), Fault::Status(500)),
        );
        let relay = TcpRelay::spawn_with_faults("127.0.0.1:0", backend.addr(), faults).unwrap();
        let client = Client::new(relay.addr()).timeout(Duration::from_secs(2));
        let req = Request::new(Method::Get, "/vm");
        assert!(client.send(&req).is_err(), "first connection dropped");
        assert_eq!(client.send(&req).unwrap().status, 500, "second gets canned 500");
        let resp = client.send(&req).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"alive");
        assert_eq!(relay.connections(), 3);
    }

    #[test]
    fn relay_to_dead_target_drops_connection() {
        // Point at a port with (almost certainly) no listener.
        let target: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let relay = TcpRelay::spawn("127.0.0.1:0", target).unwrap();
        let client = Client::new(relay.addr()).timeout(Duration::from_millis(500));
        assert!(client.send(&Request::new(Method::Get, "/x")).is_err());
    }
}

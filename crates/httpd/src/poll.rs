//! Thin epoll + eventfd wrappers for the reactor.
//!
//! The build environment has no `libc`/`mio`/`tokio`, so the two syscall
//! families the readiness loop needs are declared directly against the C
//! library every Rust binary on Linux already links. This is the only
//! module in the crate allowed to use `unsafe`; everything it exposes is a
//! safe, owned-fd API: [`Epoll`] (level-triggered interest registration and
//! waiting) and [`Waker`] (an eventfd other threads write to pull the
//! reactor out of `epoll_wait`).

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::Instant;

/// Readable readiness (or a peer that closed with data pending).
pub(crate) const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub(crate) const EPOLLOUT: u32 = 0x004;
/// Error condition; always reported, never masked.
pub(crate) const EPOLLERR: u32 = 0x008;
/// Peer hung up both directions; always reported, never masked.
pub(crate) const EPOLLHUP: u32 = 0x010;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// Kernel `struct epoll_event`. Packed on x86_64 (the kernel ABI differs
/// from natural C layout there); naturally aligned elsewhere.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub(crate) struct EpollEvent {
    events: u32,
    data: u64,
}

/// Kernel `struct epoll_event` (non-x86_64 layout).
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
pub(crate) struct EpollEvent {
    events: u32,
    data: u64,
}

impl EpollEvent {
    fn new(events: u32, token: u64) -> Self {
        EpollEvent { events, data: token }
    }

    /// The readiness bits reported for this event.
    pub(crate) fn events(&self) -> u32 {
        self.events // packed-field copy, not a reference
    }

    /// The registration token the event belongs to.
    pub(crate) fn token(&self) -> u64 {
        self.data
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
}

/// Converts a raw syscall return into an owned fd or the thread's errno.
fn owned_fd(ret: i32) -> io::Result<OwnedFd> {
    if ret < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: the kernel just handed us this descriptor and nothing else
    // owns it; OwnedFd takes over closing it.
    #[allow(unsafe_code)]
    Ok(unsafe { OwnedFd::from_raw_fd(ret) })
}

/// An epoll instance. Registrations are level-triggered: a ready fd is
/// re-reported every wait until the readiness is consumed or the interest
/// mask is changed, which lets state transitions be plain `modify` calls
/// with no edge bookkeeping.
pub(crate) struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    pub(crate) fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 reads no memory.
        #[allow(unsafe_code)]
        let ret = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        Ok(Epoll { fd: owned_fd(ret)? })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent::new(events, token);
        // SAFETY: `event` outlives the call; the kernel copies it out.
        #[allow(unsafe_code)]
        let ret = unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut event) };
        if ret < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with the given interest mask under `token`.
    pub(crate) fn add(&self, fd: &impl AsRawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd.as_raw_fd(), events, token)
    }

    /// Replaces the interest mask for an already-registered `fd`.
    pub(crate) fn modify(&self, fd: &impl AsRawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd.as_raw_fd(), events, token)
    }

    /// Removes `fd` from the interest set (dropping the fd does this too,
    /// but an explicit delete keeps spurious events out of the same tick).
    pub(crate) fn delete(&self, fd: &impl AsRawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd.as_raw_fd(), 0, 0)
    }

    /// Waits until readiness or `deadline`, filling `events`. `None` waits
    /// indefinitely (a [`Waker`] is then the only way to return early).
    /// Returns the number of events written; 0 on timeout. EINTR retries.
    pub(crate) fn wait(
        &self,
        events: &mut [EpollEvent],
        deadline: Option<Instant>,
    ) -> io::Result<usize> {
        loop {
            let timeout_ms: i32 = match deadline {
                None => -1,
                Some(d) => {
                    // Round up so a deadline 0.2 ms away sleeps 1 ms instead
                    // of spinning through 0 ms waits until it expires.
                    let remaining = d.saturating_duration_since(Instant::now());
                    remaining
                        .as_millis()
                        .saturating_add(u128::from(remaining.subsec_nanos() % 1_000_000 != 0))
                        .min(i32::MAX as u128) as i32
                }
            };
            let capacity = events.len().min(i32::MAX as usize) as i32;
            // SAFETY: `events` is a live, writable buffer of `capacity`
            // epoll_event slots; the kernel writes at most that many.
            #[allow(unsafe_code)]
            let ret = unsafe {
                epoll_wait(self.fd.as_raw_fd(), events.as_mut_ptr(), capacity, timeout_ms)
            };
            if ret >= 0 {
                return Ok(ret as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// An eventfd the worker pool (and `Server::stop`) writes to wake the
/// reactor out of `epoll_wait`. Cloneable across threads; `wake` is
/// async-signal-safe cheap (one 8-byte write).
#[derive(Clone)]
pub(crate) struct Waker {
    file: std::sync::Arc<File>,
}

impl Waker {
    pub(crate) fn new() -> io::Result<Waker> {
        // SAFETY: eventfd reads no memory.
        #[allow(unsafe_code)]
        let ret = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        Ok(Waker { file: std::sync::Arc::new(File::from(owned_fd(ret)?)) })
    }

    /// Makes the reactor's next (or current) `epoll_wait` return.
    pub(crate) fn wake(&self) {
        let _ = (&*self.file).write_all(&1u64.to_ne_bytes());
    }

    /// Clears the pending wake count so level-triggered polling settles.
    pub(crate) fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = (&*self.file).read(&mut buf);
    }
}

impl AsRawFd for Waker {
    fn as_raw_fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }
}

/// A zeroed event buffer for [`Epoll::wait`].
pub(crate) fn event_buffer(capacity: usize) -> Vec<EpollEvent> {
    vec![EpollEvent::new(0, 0); capacity]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    #[test]
    fn waker_wakes_and_drains() {
        let epoll = Epoll::new().unwrap();
        let waker = Waker::new().unwrap();
        epoll.add(&waker, EPOLLIN, 7).unwrap();
        let mut events = event_buffer(4);
        // Nothing pending: a short wait times out with no events.
        let n = epoll.wait(&mut events, Some(Instant::now() + Duration::from_millis(5))).unwrap();
        assert_eq!(n, 0);
        waker.wake();
        let n = epoll.wait(&mut events, Some(Instant::now() + Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert_ne!(events[0].events() & EPOLLIN, 0);
        // Level-triggered: still readable until drained.
        waker.drain();
        let n = epoll.wait(&mut events, Some(Instant::now() + Duration::from_millis(5))).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn socket_readiness_and_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(&listener, EPOLLIN, 1).unwrap();
        let mut events = event_buffer(4);
        let n = epoll.wait(&mut events, Some(Instant::now() + Duration::from_millis(5))).unwrap();
        assert_eq!(n, 0, "no pending connection yet");

        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = epoll.wait(&mut events, Some(Instant::now() + Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 1);

        // Mask the listener out; the pending connection no longer reports.
        epoll.modify(&listener, 0, 1).unwrap();
        let n = epoll.wait(&mut events, Some(Instant::now() + Duration::from_millis(5))).unwrap();
        assert_eq!(n, 0);
        epoll.delete(&listener).unwrap();
        drop(client);
    }
}

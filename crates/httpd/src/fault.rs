//! Deterministic fault injection for [`Server`](crate::Server) and
//! [`TcpRelay`](crate::TcpRelay).
//!
//! Resilience features (retry, failover, circuit breakers) need repeatable
//! failures to be testable. A [`FaultInjector`] counts incoming requests and
//! fires configured [`Fault`]s when a [`Trigger`] matches the request's
//! ordinal — no randomness, so a test that injects "drop connection on
//! requests 1–3" observes the same behaviour on every run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What to do to a matched request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Close the connection without writing a response.
    DropConnection,
    /// Sleep before handling the request normally.
    Delay(Duration),
    /// Skip the handler and answer with this HTTP status.
    Status(u16),
    /// Answer normally — advertising keep-alive — then close the connection
    /// anyway. Simulates a server dying mid-keep-alive: the client's pooled
    /// socket goes stale and its next send hits EOF, exercising the
    /// retry-once-on-stale-socket path.
    CloseAfterResponse,
}

/// Which requests a rule applies to. Request ordinals are 1-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Exactly the `n`th request.
    Nth(u64),
    /// The first `n` requests.
    FirstN(u64),
    /// Every `n`th request (`n`, `2n`, `3n`, …).
    EveryNth(u64),
    /// Every request.
    Always,
}

impl Trigger {
    fn matches(self, ordinal: u64) -> bool {
        match self {
            Trigger::Nth(n) => ordinal == n,
            Trigger::FirstN(n) => ordinal <= n,
            // `ordinal` is never 0, so `is_multiple_of(0)` is false: a zero
            // period never fires.
            Trigger::EveryNth(n) => ordinal.is_multiple_of(n),
            Trigger::Always => true,
        }
    }
}

/// A counter plus rule list deciding the fate of each incoming request.
///
/// Attach one with [`Server::spawn_with_faults`](crate::Server::spawn_with_faults)
/// or [`TcpRelay::spawn_with_faults`](crate::TcpRelay::spawn_with_faults).
/// The first matching rule wins.
///
/// # Example
///
/// ```
/// use confbench_httpd::{Fault, FaultInjector, Trigger};
///
/// let faults = FaultInjector::new()
///     .rule(Trigger::FirstN(2), Fault::DropConnection)
///     .rule(Trigger::Nth(3), Fault::Status(500));
/// assert_eq!(faults.decide(), Some(Fault::DropConnection)); // request 1
/// assert_eq!(faults.decide(), Some(Fault::DropConnection)); // request 2
/// assert_eq!(faults.decide(), Some(Fault::Status(500)));    // request 3
/// assert_eq!(faults.decide(), None);                        // request 4
/// ```
#[derive(Debug, Default)]
pub struct FaultInjector {
    rules: Vec<(Trigger, Fault)>,
    seen: AtomicU64,
}

impl FaultInjector {
    /// An injector with no rules (all requests pass through).
    pub fn new() -> Self {
        FaultInjector::default()
    }

    /// Adds a rule, builder-style.
    pub fn rule(mut self, trigger: Trigger, fault: Fault) -> Self {
        self.rules.push((trigger, fault));
        self
    }

    /// Counts one request and returns the fault to apply, if any.
    pub fn decide(&self) -> Option<Fault> {
        let ordinal = self.seen.fetch_add(1, Ordering::SeqCst) + 1;
        self.rules.iter().find(|(t, _)| t.matches(ordinal)).map(|(_, f)| *f)
    }

    /// Requests counted so far.
    pub fn requests_seen(&self) -> u64 {
        self.seen.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_injector_passes_everything() {
        let f = FaultInjector::new();
        for _ in 0..5 {
            assert_eq!(f.decide(), None);
        }
        assert_eq!(f.requests_seen(), 5);
    }

    #[test]
    fn nth_fires_exactly_once() {
        let f = FaultInjector::new().rule(Trigger::Nth(2), Fault::Status(500));
        assert_eq!(f.decide(), None);
        assert_eq!(f.decide(), Some(Fault::Status(500)));
        assert_eq!(f.decide(), None);
    }

    #[test]
    fn every_nth_recurs() {
        let f = FaultInjector::new().rule(Trigger::EveryNth(3), Fault::DropConnection);
        let hits: Vec<bool> = (0..9).map(|_| f.decide().is_some()).collect();
        assert_eq!(hits, vec![false, false, true, false, false, true, false, false, true]);
    }

    #[test]
    fn first_matching_rule_wins() {
        let f = FaultInjector::new()
            .rule(Trigger::Always, Fault::Delay(Duration::from_millis(1)))
            .rule(Trigger::Nth(1), Fault::DropConnection);
        assert_eq!(f.decide(), Some(Fault::Delay(Duration::from_millis(1))));
    }

    #[test]
    fn every_nth_zero_never_fires() {
        let f = FaultInjector::new().rule(Trigger::EveryNth(0), Fault::DropConnection);
        assert_eq!(f.decide(), None);
    }
}

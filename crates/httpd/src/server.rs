//! A bounded-worker HTTP/1.1 server with keep-alive, and a
//! connection-pooling client.
//!
//! The server accepts on one thread and serves connections from a fixed
//! worker pool (no thread-per-connection): each worker owns a connection
//! for its keep-alive lifetime, looping over requests until the peer
//! closes, an idle timeout fires, or the per-connection request cap is
//! reached. When every worker is busy and the pending-connection backlog
//! is full, new connections are answered `503` + `Retry-After` instead of
//! spawning without bound. [`Server::shutdown`] drains gracefully: accept
//! stops, idle keep-alive connections are cut immediately, and in-flight
//! requests get a deadline to finish.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use confbench_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use parking_lot::Mutex;

use crate::fault::{Fault, FaultInjector};
use crate::http::{HttpError, Request, Response};
use crate::router::Router;

/// Turns a bound address into one a client can connect to: wildcard binds
/// (`0.0.0.0` / `[::]`) are not connectable, so substitute loopback.
pub(crate) fn connectable(addr: SocketAddr) -> SocketAddr {
    let mut addr = addr;
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr {
            SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        });
    }
    addr
}

/// Waits up to `timeout` for `handle` to finish, then joins it; detaches
/// (drops the handle) if it does not finish in time so shutdown can't hang.
pub(crate) fn join_with_timeout(handle: JoinHandle<()>, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    while !handle.is_finished() {
        if Instant::now() >= deadline {
            return; // detach rather than block forever
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = handle.join();
}

/// Connection-layer tuning for a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads serving connections. Each worker owns one connection
    /// at a time for its keep-alive lifetime. Clamped to ≥ 1.
    pub workers: usize,
    /// Pending connections held while all workers are busy; overflow is
    /// answered `503` + `Retry-After`. Clamped to ≥ 1.
    pub backlog: usize,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it.
    pub keep_alive_idle: Duration,
    /// Requests served on one connection before the server closes it
    /// (`connection: close` on the final response). Clamped to ≥ 1.
    pub max_requests_per_conn: u64,
    /// Read timeout for the first request of a connection.
    pub read_timeout: Duration,
    /// `Retry-After` hint (seconds) on backpressure 503s. Gateways wire
    /// this from their retry policy so the hint matches their own backoff.
    pub retry_after_secs: u64,
    /// How long [`Server::shutdown`] waits for in-flight requests before
    /// force-closing their connections.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    /// 8 workers, 64-connection backlog, 5 s keep-alive idle, 1000
    /// requests/connection, 30 s read timeout, `Retry-After: 1`, 5 s drain.
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            backlog: 64,
            keep_alive_idle: Duration::from_secs(5),
            max_requests_per_conn: 1000,
            read_timeout: Duration::from_secs(30),
            retry_after_secs: 1,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Cached `httpd_*` instrument handles.
struct HttpdMetrics {
    connections_total: Arc<Counter>,
    active: Arc<Gauge>,
    requests_total: Arc<Counter>,
    keepalive_reuse: Arc<Counter>,
    rejected_total: Arc<Counter>,
    workers_busy: Arc<Gauge>,
    requests_per_conn: Arc<Histogram>,
}

impl HttpdMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        HttpdMetrics {
            connections_total: registry.counter("httpd_connections_total"),
            active: registry.gauge("httpd_connections_active"),
            requests_total: registry.counter("httpd_requests_total"),
            keepalive_reuse: registry.counter("httpd_keepalive_reuse_total"),
            rejected_total: registry.counter("httpd_rejected_total"),
            workers_busy: registry.gauge("httpd_workers_busy"),
            requests_per_conn: registry.histogram("httpd_requests_per_conn", &[1, 2, 5, 10, 100]),
        }
    }
}

/// Bounded handoff between the accept thread and the worker pool.
#[derive(Default)]
struct ConnQueue {
    state: StdMutex<(VecDeque<TcpStream>, bool)>, // (pending, closed)
    cv: Condvar,
}

impl ConnQueue {
    /// Enqueues a connection; gives it back when the backlog is full or the
    /// queue is closed.
    fn try_push(&self, stream: TcpStream, capacity: usize) -> Result<(), TcpStream> {
        let mut state = self.state.lock().expect("conn queue lock");
        if state.1 || state.0.len() >= capacity {
            return Err(stream);
        }
        state.0.push_back(stream);
        drop(state);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks until a connection is available or the queue is closed and
    /// drained. `None` tells the worker to exit.
    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.state.lock().expect("conn queue lock");
        loop {
            if let Some(stream) = state.0.pop_front() {
                return Some(stream);
            }
            if state.1 {
                return None;
            }
            state = self.cv.wait(state).expect("conn queue lock");
        }
    }

    /// Closes the queue and returns connections never handed to a worker.
    fn close(&self) -> Vec<TcpStream> {
        let mut state = self.state.lock().expect("conn queue lock");
        state.1 = true;
        let pending = state.0.drain(..).collect();
        drop(state);
        self.cv.notify_all();
        pending
    }

    fn depth(&self) -> usize {
        self.state.lock().expect("conn queue lock").0.len()
    }
}

/// Live-connection registry so shutdown can cut idle keep-alive sockets
/// immediately and force-close stragglers after the drain deadline.
#[derive(Default)]
struct ConnRegistry {
    next_id: AtomicU64,
    conns: Mutex<HashMap<u64, ConnEntry>>,
}

struct ConnEntry {
    stream: TcpStream,
    busy: Arc<AtomicBool>,
}

impl ConnRegistry {
    fn register(&self, stream: &TcpStream, busy: Arc<AtomicBool>) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        self.conns.lock().insert(id, ConnEntry { stream: clone, busy });
        Some(id)
    }

    fn deregister(&self, id: Option<u64>) {
        if let Some(id) = id {
            self.conns.lock().remove(&id);
        }
    }

    /// Shuts down connections not currently serving a request (blocked
    /// waiting for the peer's next keep-alive request).
    fn close_idle(&self) {
        for entry in self.conns.lock().values() {
            if !entry.busy.load(Ordering::SeqCst) {
                let _ = entry.stream.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    fn close_all(&self) {
        for entry in self.conns.lock().values() {
            let _ = entry.stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// State shared by the accept thread and the worker pool.
struct Shared {
    router: Router,
    config: ServerConfig,
    faults: Option<Arc<FaultInjector>>,
    metrics: HttpdMetrics,
    registry: Arc<MetricsRegistry>,
    shutdown: AtomicBool,
    queue: ConnQueue,
    conns: ConnRegistry,
}

impl Shared {
    /// Answers a connection the pool cannot take with `503` + `Retry-After`.
    fn reject(&self, stream: TcpStream) {
        use std::io::Read;
        self.metrics.rejected_total.inc();
        let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
        let mut response = Response::error(503, "server saturated: all workers busy, backlog full");
        response.headers.insert("retry-after".into(), self.config.retry_after_secs.to_string());
        response.headers.insert("connection".into(), "close".into());
        let _ = response.write_to(&mut &stream);
        // Drain the client's (unread) request briefly before closing:
        // dropping a socket with buffered input sends RST, which would
        // discard the 503 from the peer's receive buffer.
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
        let mut buf = [0u8; 4096];
        while let Ok(n) = (&stream).read(&mut buf) {
            if n == 0 {
                break;
            }
        }
    }
}

/// Configures and spawns a [`Server`]; obtained from [`Server::build`].
pub struct ServerBuilder {
    router: Router,
    config: ServerConfig,
    faults: Option<Arc<FaultInjector>>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl ServerBuilder {
    /// Overrides the connection-layer tuning (default [`ServerConfig::default`]).
    pub fn config(mut self, config: ServerConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a [`FaultInjector`] deciding the fate of each request.
    pub fn faults(mut self, faults: Arc<FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Publishes `httpd_*` metrics into a shared registry (default: a fresh
    /// registry reachable via [`Server::metrics`]).
    pub fn metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Binds `addr` and starts the accept thread plus the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(self, addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let mut config = self.config;
        config.workers = config.workers.max(1);
        config.backlog = config.backlog.max(1);
        config.max_requests_per_conn = config.max_requests_per_conn.max(1);
        let registry = self.metrics.unwrap_or_default();
        let shared = Arc::new(Shared {
            router: self.router,
            config,
            faults: self.faults,
            metrics: HttpdMetrics::register(&registry),
            registry,
            shutdown: AtomicBool::new(false),
            queue: ConnQueue::default(),
            conns: ConnRegistry::default(),
        });

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name(format!("httpd-{addr}"))
            .spawn(move || accept_loop(listener, accept_shared))?;

        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let worker_shared = Arc::clone(&shared);
            // Handlers run language interpreters whose recursion is deep in
            // debug builds, so give workers a generous stack.
            workers.push(
                std::thread::Builder::new()
                    .name(format!("httpd-worker-{i}"))
                    .stack_size(16 << 20)
                    .spawn(move || worker_loop(&worker_shared))?,
            );
        }
        Ok(Server { addr, shared, accept_thread: Some(accept_thread), workers })
    }
}

/// A running HTTP server. Dropping it shuts the listener down.
///
/// # Example
///
/// ```
/// use confbench_httpd::{Client, Method, Request, Response, Router, Server};
///
/// let mut router = Router::new();
/// router.add(Method::Get, "/ping", |_, _| Response::text("pong"));
/// let server = Server::spawn(router)?;
/// let resp = Client::new(server.addr()).send(&Request::new(Method::Get, "/ping"))?;
/// assert_eq!(resp.body, b"pong");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts configuring a server for `router`.
    pub fn build(router: Router) -> ServerBuilder {
        ServerBuilder { router, config: ServerConfig::default(), faults: None, metrics: None }
    }

    /// Binds `127.0.0.1:0` and serves `router` with default tuning.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(router: Router) -> io::Result<Server> {
        Server::build(router).spawn("127.0.0.1:0")
    }

    /// Binds a specific address.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn_on(addr: &str, router: Router) -> io::Result<Server> {
        Server::build(router).spawn(addr)
    }

    /// As [`Server::spawn`], with a [`FaultInjector`] deciding the fate of
    /// each incoming request (testing/chaos harness).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn_with_faults(router: Router, faults: Arc<FaultInjector>) -> io::Result<Server> {
        Server::build(router).faults(faults).spawn("127.0.0.1:0")
    }

    /// As [`Server::spawn_on`], with fault injection.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn_on_with_faults(
        addr: &str,
        router: Router,
        faults: Arc<FaultInjector>,
    ) -> io::Result<Server> {
        Server::build(router).faults(faults).spawn(addr)
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry the server's `httpd_*` instruments live in.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.shared.registry
    }

    /// Connections currently owned by workers.
    pub fn active_connections(&self) -> u64 {
        self.shared.metrics.active.get()
    }

    /// Worker threads serving connections.
    pub fn worker_count(&self) -> usize {
        self.shared.config.workers
    }

    /// Connections waiting in the backlog for a free worker.
    pub fn backlog_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Gracefully shuts down: stops accepting, rejects backlogged
    /// connections, cuts idle keep-alive sockets, lets in-flight requests
    /// finish within the drain deadline, then joins the pool.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection. Connect to
        // loopback with the bound port: a wildcard bind address (0.0.0.0)
        // is not connectable, which used to leave the loop blocked.
        let _ = TcpStream::connect_timeout(&connectable(self.addr), Duration::from_secs(1));
        if let Some(handle) = self.accept_thread.take() {
            join_with_timeout(handle, Duration::from_secs(5));
        }
        // Backlogged connections never reached a worker: tell them to retry.
        for stream in self.shared.queue.close() {
            self.shared.reject(stream);
        }
        // Idle keep-alive connections close now; in-flight requests get the
        // drain deadline to finish (their connections go idle on completion
        // because the drain flag forces `connection: close`).
        self.shared.conns.close_idle();
        let deadline = Instant::now() + self.shared.config.drain_timeout;
        while self.shared.metrics.active.get() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
            self.shared.conns.close_idle();
        }
        self.shared.conns.close_all();
        for handle in self.workers.drain(..) {
            join_with_timeout(handle, Duration::from_secs(1));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() || !self.workers.is_empty() {
            self.stop();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if let Err(stream) = shared.queue.try_push(stream, shared.config.backlog) {
            shared.reject(stream);
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(stream) = shared.queue.pop() {
        shared.metrics.workers_busy.inc();
        handle_connection(stream, shared);
        shared.metrics.workers_busy.dec();
    }
}

/// Decrements the active gauge, records the per-connection request count,
/// and deregisters the connection — on every exit path, panics included.
struct ConnGuard<'a> {
    shared: &'a Shared,
    id: Option<u64>,
    served: u64,
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.shared.metrics.requests_per_conn.observe(self.served);
        self.shared.metrics.active.dec();
        self.shared.conns.deregister(self.id);
    }
}

/// Serves requests on one connection until the peer closes, asks to close,
/// idles out, hits the request cap, or the server drains.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    shared.metrics.connections_total.inc();
    shared.metrics.active.inc();
    let busy = Arc::new(AtomicBool::new(false));
    let mut guard =
        ConnGuard { shared, id: shared.conns.register(&stream, Arc::clone(&busy)), served: 0 };
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(&stream);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) && guard.served > 0 {
            break; // draining: no new keep-alive requests
        }
        let idle = if guard.served == 0 {
            shared.config.read_timeout
        } else {
            shared.config.keep_alive_idle
        };
        let _ = stream.set_read_timeout(Some(idle));
        let request = match Request::read_from_buffered(&mut reader) {
            Ok(request) => request,
            Err(HttpError::Closed) => break, // clean end of keep-alive
            Err(HttpError::Io(_)) => break,  // idle timeout or peer reset
            Err(e) => {
                // Parse errors answer with their status (400/413/431) and
                // close: the stream position is no longer trustworthy.
                let mut response = Response::error(e.status(), e.to_string());
                response.headers.insert("connection".into(), "close".into());
                let _ = response.write_to(&mut &stream);
                break;
            }
        };
        busy.store(true, Ordering::SeqCst);
        guard.served += 1;
        shared.metrics.requests_total.inc();
        if guard.served > 1 {
            shared.metrics.keepalive_reuse.inc();
        }

        let fault = shared.faults.as_deref().and_then(|f| f.decide());
        if fault == Some(Fault::DropConnection) {
            return; // close without a response: the client sees a reset/EOF
        }
        if let Some(Fault::Delay(d)) = fault {
            std::thread::sleep(d);
        }
        let mut response = match fault {
            Some(Fault::Status(code)) => Response::error(code, "injected fault"),
            _ => {
                // A panicking handler must not kill the pool's worker.
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    shared.router.dispatch(&request)
                }))
                .unwrap_or_else(|_| Response::error(500, "handler panicked"))
            }
        };

        let draining = shared.shutdown.load(Ordering::SeqCst);
        let exhausted = guard.served >= shared.config.max_requests_per_conn;
        // `CloseAfterResponse` deliberately lies (keep-alive advertised,
        // socket closed anyway) to simulate a server dying mid-keep-alive.
        let fault_close = fault == Some(Fault::CloseAfterResponse);
        let close = !request.wants_keep_alive() || !response.keep_alive() || draining || exhausted;
        if !fault_close {
            response
                .headers
                .insert("connection".into(), if close { "close" } else { "keep-alive" }.into());
        }
        let write_ok = response.write_to(&mut &stream).is_ok();
        busy.store(false, Ordering::SeqCst);
        if !write_ok || close || fault_close {
            break;
        }
    }
}

/// Statistics a [`Client`] keeps about its connection pool.
#[derive(Debug, Default)]
struct ClientStats {
    reused: AtomicU64,
    stale_retries: AtomicU64,
}

/// An HTTP client for one server address, with persistent connection reuse.
///
/// Sockets whose response advertised keep-alive return to a shared pool and
/// are reused by later sends (clones share the pool). A send on a pooled
/// socket that fails with a stale-socket error (EOF/reset — the server
/// closed it between requests) is transparently retried once on a fresh
/// connection; failures on fresh connections propagate.
#[derive(Clone)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    pool: Arc<Mutex<Vec<TcpStream>>>,
    stats: Arc<ClientStats>,
}

/// Idle sockets kept per pool; excess connections close on return.
const POOL_CAP: usize = 8;

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("addr", &self.addr)
            .field("timeout", &self.timeout)
            .field("pooled", &self.pool.lock().len())
            .finish()
    }
}

impl Client {
    /// Creates a client for `addr` with a 30 s timeout.
    pub fn new(addr: SocketAddr) -> Self {
        Client {
            addr,
            timeout: Duration::from_secs(30),
            pool: Arc::new(Mutex::new(Vec::new())),
            stats: Arc::new(ClientStats::default()),
        }
    }

    /// Creates a client resolving `addr` (e.g. `"127.0.0.1:8080"`).
    ///
    /// # Errors
    ///
    /// Resolution failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no address resolved"))?;
        Ok(Client::new(addr))
    }

    /// Overrides the request timeout (the connection pool is shared with
    /// the original).
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sends served on a reused pooled socket so far.
    pub fn reused_connections(&self) -> u64 {
        self.stats.reused.load(Ordering::SeqCst)
    }

    /// Stale pooled sockets detected and retried on a fresh connection.
    pub fn stale_retries(&self) -> u64 {
        self.stats.stale_retries.load(Ordering::SeqCst)
    }

    /// Idle sockets currently pooled.
    pub fn pooled_connections(&self) -> usize {
        self.pool.lock().len()
    }

    /// Sends a request, returning the response.
    ///
    /// # Errors
    ///
    /// Connection or protocol failures.
    pub fn send(&self, request: &Request) -> Result<Response, HttpError> {
        self.send_with_timeout(request, self.timeout)
    }

    /// As [`Client::send`] with an explicit per-request timeout (deadline
    /// propagation clamps this below the client default).
    ///
    /// # Errors
    ///
    /// Connection or protocol failures.
    pub fn send_with_timeout(
        &self,
        request: &Request,
        timeout: Duration,
    ) -> Result<Response, HttpError> {
        // Take the pooled socket in its own statement: an `if let` on
        // `.lock().pop()` would hold the pool guard for the whole body and
        // deadlock against `maybe_pool`'s re-lock.
        let pooled = self.pool.lock().pop();
        if let Some(mut stream) = pooled {
            match Self::exchange(&mut stream, request, timeout) {
                Ok(response) => {
                    self.stats.reused.fetch_add(1, Ordering::SeqCst);
                    self.maybe_pool(stream, &response);
                    return Ok(response);
                }
                Err(e) if is_stale_socket(&e) => {
                    // The server closed the pooled socket between requests
                    // (idle timeout, request cap, restart): retry once on a
                    // fresh connection.
                    self.stats.stale_retries.fetch_add(1, Ordering::SeqCst);
                }
                Err(e) => return Err(e),
            }
        }
        let mut stream = TcpStream::connect_timeout(&self.addr, timeout)?;
        let response = Self::exchange(&mut stream, request, timeout)?;
        self.maybe_pool(stream, &response);
        Ok(response)
    }

    fn exchange(
        stream: &mut TcpStream,
        request: &Request,
        timeout: Duration,
    ) -> Result<Response, HttpError> {
        // Without nodelay, the second small write on a reused socket sits
        // behind Nagle waiting for the peer's delayed ACK (~40 ms per
        // request), erasing the keep-alive win.
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        request.write_to(stream)?;
        Response::read_from(stream)
    }

    fn maybe_pool(&self, stream: TcpStream, response: &Response) {
        if response.keep_alive() {
            let mut pool = self.pool.lock();
            if pool.len() < POOL_CAP {
                pool.push(stream);
            }
        }
    }
}

/// Errors that mean a pooled socket went stale (safe to retry on a fresh
/// connection) as opposed to a live server misbehaving or timing out.
fn is_stale_socket(e: &HttpError) -> bool {
    match e {
        HttpError::Closed => true,
        HttpError::Io(e) => matches!(
            e.kind(),
            io::ErrorKind::UnexpectedEof
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::BrokenPipe
        ),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;

    fn test_server() -> Server {
        let mut router = Router::new();
        router.add(Method::Get, "/hello/:who", |_, p| Response::text(format!("hi {}", p["who"])));
        router.add(Method::Post, "/echo", |req, _| {
            let mut r = Response::text(String::from_utf8_lossy(&req.body).into_owned());
            r.status = 201;
            r
        });
        Server::spawn(router).expect("bind")
    }

    #[test]
    fn serves_requests_over_real_sockets() {
        let server = test_server();
        let client = Client::new(server.addr());
        let resp = client.send(&Request::new(Method::Get, "/hello/world")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"hi world");
        server.shutdown();
    }

    #[test]
    fn post_bodies_roundtrip() {
        let server = test_server();
        let client = Client::new(server.addr());
        let mut req = Request::new(Method::Post, "/echo");
        req.body = b"payload".to_vec();
        let resp = client.send(&req).unwrap();
        assert_eq!(resp.status, 201);
        assert_eq!(resp.body, b"payload");
    }

    #[test]
    fn concurrent_clients() {
        let server = test_server();
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let client = Client::new(addr);
                    let resp =
                        client.send(&Request::new(Method::Get, &format!("/hello/{i}"))).unwrap();
                    assert_eq!(resp.body, format!("hi {i}").into_bytes());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn unknown_route_is_404() {
        let server = test_server();
        let client = Client::new(server.addr());
        let resp = client.send(&Request::new(Method::Get, "/nope")).unwrap();
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn keep_alive_reuses_one_connection() {
        let server = test_server();
        let client = Client::new(server.addr());
        for _ in 0..5 {
            let resp = client.send(&Request::new(Method::Get, "/hello/ka")).unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(resp.headers.get("connection").map(String::as_str), Some("keep-alive"));
        }
        assert_eq!(client.reused_connections(), 4, "first send connects, four reuse");
        let m = server.metrics();
        assert_eq!(m.counter_value("httpd_connections_total"), Some(1));
        assert_eq!(m.counter_value("httpd_requests_total"), Some(5));
        assert_eq!(m.counter_value("httpd_keepalive_reuse_total"), Some(4));
    }

    #[test]
    fn connection_close_header_is_honored() {
        let server = test_server();
        let client = Client::new(server.addr());
        let mut req = Request::new(Method::Get, "/hello/x");
        req.headers.insert("connection".into(), "close".into());
        let resp = client.send(&req).unwrap();
        assert_eq!(resp.headers.get("connection").map(String::as_str), Some("close"));
        assert_eq!(client.pooled_connections(), 0, "closed socket not pooled");
        // The next send opens a second connection.
        client.send(&Request::new(Method::Get, "/hello/y")).unwrap();
        assert_eq!(server.metrics().counter_value("httpd_connections_total"), Some(2));
    }

    #[test]
    fn idle_timeout_closes_and_client_recovers() {
        let mut router = Router::new();
        router.add(Method::Get, "/ok", |_, _| Response::text("up"));
        let config =
            ServerConfig { keep_alive_idle: Duration::from_millis(50), ..ServerConfig::default() };
        let server = Server::build(router).config(config).spawn("127.0.0.1:0").unwrap();
        let client = Client::new(server.addr());
        client.send(&Request::new(Method::Get, "/ok")).unwrap();
        assert_eq!(client.pooled_connections(), 1);
        std::thread::sleep(Duration::from_millis(250));
        // The pooled socket is stale (server idled it out); the client must
        // retry transparently on a fresh connection.
        let resp = client.send(&Request::new(Method::Get, "/ok")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(client.stale_retries(), 1);
        assert_eq!(server.metrics().counter_value("httpd_connections_total"), Some(2));
    }

    #[test]
    fn request_cap_closes_connection() {
        let mut router = Router::new();
        router.add(Method::Get, "/ok", |_, _| Response::text("up"));
        let config = ServerConfig { max_requests_per_conn: 2, ..ServerConfig::default() };
        let server = Server::build(router).config(config).spawn("127.0.0.1:0").unwrap();
        let client = Client::new(server.addr());
        client.send(&Request::new(Method::Get, "/ok")).unwrap();
        let second = client.send(&Request::new(Method::Get, "/ok")).unwrap();
        assert_eq!(second.headers.get("connection").map(String::as_str), Some("close"));
        client.send(&Request::new(Method::Get, "/ok")).unwrap();
        assert_eq!(server.metrics().counter_value("httpd_connections_total"), Some(2));
    }

    #[test]
    fn saturation_returns_503_with_retry_after() {
        let started = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&started);
        let mut router = Router::new();
        router.add(Method::Get, "/slow", move |_, _| {
            flag.store(true, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(400));
            Response::text("done")
        });
        let config =
            ServerConfig { workers: 1, backlog: 1, retry_after_secs: 7, ..ServerConfig::default() };
        let server = Server::build(router).config(config).spawn("127.0.0.1:0").unwrap();
        let addr = server.addr();
        // Occupy the single worker and wait until its handler is running…
        let in_worker =
            std::thread::spawn(move || Client::new(addr).send(&Request::new(Method::Get, "/slow")));
        while !started.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(2));
        }
        // …then park a second connection in the (size-1) backlog.
        let in_backlog =
            std::thread::spawn(move || Client::new(addr).send(&Request::new(Method::Get, "/slow")));
        while server.backlog_depth() == 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Worker busy + backlog full: this one must be rejected quickly.
        let start = Instant::now();
        let resp = Client::new(addr).send(&Request::new(Method::Get, "/slow")).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.headers.get("retry-after").map(String::as_str), Some("7"));
        assert!(start.elapsed() < Duration::from_millis(200), "503 must not wait for a worker");
        for h in [in_worker, in_backlog] {
            let resp = h.join().unwrap().unwrap();
            assert_eq!(resp.status, 200, "queued requests still complete");
        }
        assert_eq!(server.metrics().counter_value("httpd_rejected_total"), Some(1));
    }

    #[test]
    fn graceful_drain_finishes_in_flight_request() {
        let mut router = Router::new();
        router.add(Method::Get, "/slow", |_, _| {
            std::thread::sleep(Duration::from_millis(200));
            Response::text("finished")
        });
        let server = Server::spawn(router).unwrap();
        let addr = server.addr();
        let inflight =
            std::thread::spawn(move || Client::new(addr).send(&Request::new(Method::Get, "/slow")));
        std::thread::sleep(Duration::from_millis(50));
        let start = Instant::now();
        server.shutdown();
        assert!(start.elapsed() >= Duration::from_millis(100), "shutdown waited for the request");
        let resp = inflight.join().unwrap().unwrap();
        assert_eq!(resp.body, b"finished");
        assert_eq!(
            resp.headers.get("connection").map(String::as_str),
            Some("close"),
            "draining forces close"
        );
    }

    #[test]
    fn shutdown_cuts_idle_keepalive_connections_quickly() {
        let server = test_server();
        let client = Client::new(server.addr());
        client.send(&Request::new(Method::Get, "/hello/x")).unwrap();
        assert_eq!(client.pooled_connections(), 1, "idle keep-alive socket held");
        let start = Instant::now();
        server.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "idle connections must not hold up drain"
        );
    }

    #[test]
    fn fault_injected_status_and_drop() {
        let mut router = Router::new();
        router.add(Method::Get, "/ok", |_, _| Response::text("fine"));
        let faults = Arc::new(
            FaultInjector::new()
                .rule(crate::fault::Trigger::Nth(1), Fault::DropConnection)
                .rule(crate::fault::Trigger::Nth(2), Fault::Status(500)),
        );
        let server = Server::spawn_with_faults(router, Arc::clone(&faults)).unwrap();
        let client = Client::new(server.addr()).timeout(Duration::from_secs(2));
        let req = Request::new(Method::Get, "/ok");
        // Request 1: dropped without a response.
        assert!(client.send(&req).is_err());
        // Request 2: injected 500 instead of the handler.
        assert_eq!(client.send(&req).unwrap().status, 500);
        // Request 3: passes through.
        let resp = client.send(&req).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"fine");
        assert_eq!(faults.requests_seen(), 3);
    }

    #[test]
    fn fault_injected_delay_still_answers() {
        let mut router = Router::new();
        router.add(Method::Get, "/ok", |_, _| Response::text("slow"));
        let faults = Arc::new(
            FaultInjector::new()
                .rule(crate::fault::Trigger::Always, Fault::Delay(Duration::from_millis(30))),
        );
        let server = Server::spawn_with_faults(router, faults).unwrap();
        let client = Client::new(server.addr());
        let start = std::time::Instant::now();
        let resp = client.send(&Request::new(Method::Get, "/ok")).unwrap();
        assert_eq!(resp.body, b"slow");
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn close_after_response_fault_exercises_stale_retry() {
        let mut router = Router::new();
        router.add(Method::Get, "/ok", |_, _| Response::text("fine"));
        let faults = Arc::new(
            FaultInjector::new().rule(crate::fault::Trigger::Nth(1), Fault::CloseAfterResponse),
        );
        let server = Server::spawn_with_faults(router, faults).unwrap();
        let client = Client::new(server.addr()).timeout(Duration::from_secs(2));
        // Request 1 succeeds; the response advertises keep-alive but the
        // server closes the socket anyway (mid-keep-alive fault).
        let resp = client.send(&Request::new(Method::Get, "/ok")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(client.pooled_connections(), 1, "client pooled the doomed socket");
        // Request 2 hits the stale socket and must retry transparently.
        let resp = client.send(&Request::new(Method::Get, "/ok")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(client.stale_retries(), 1);
    }

    #[test]
    fn panicking_handler_answers_500_and_worker_survives() {
        let mut router = Router::new();
        router.add(Method::Get, "/boom", |_, _| panic!("handler exploded"));
        router.add(Method::Get, "/ok", |_, _| Response::text("alive"));
        let config = ServerConfig { workers: 1, ..ServerConfig::default() };
        let server = Server::build(router).config(config).spawn("127.0.0.1:0").unwrap();
        let client = Client::new(server.addr()).timeout(Duration::from_secs(2));
        let resp = client.send(&Request::new(Method::Get, "/boom")).unwrap();
        assert_eq!(resp.status, 500);
        // The single worker must still be alive to serve this.
        let resp = client.send(&Request::new(Method::Get, "/ok")).unwrap();
        assert_eq!(resp.body, b"alive");
    }

    #[test]
    fn malformed_request_gets_status_and_close() {
        let server = test_server();
        use std::io::{Read, Write};
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        raw.write_all(b"POST /echo HTTP/1.1\r\ncontent-length: nope\r\n\r\n").unwrap();
        let mut buf = String::new();
        raw.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        raw.read_to_string(&mut buf).unwrap(); // server closes → EOF ends the read
        assert!(buf.starts_with("HTTP/1.1 400"), "got {buf:?}");
        assert!(buf.contains("connection: close"));
    }

    #[test]
    fn wildcard_bind_still_shuts_down() {
        // A 0.0.0.0 bind used to wedge stop(): the wakeup connection went to
        // the (unconnectable) wildcard address. Must finish promptly now.
        let mut router = Router::new();
        router.add(Method::Get, "/ok", |_, _| Response::text("up"));
        let server = Server::spawn_on("0.0.0.0:0", router).unwrap();
        let port = server.addr().port();
        let client = Client::new(format!("127.0.0.1:{port}").parse().unwrap());
        assert_eq!(client.send(&Request::new(Method::Get, "/ok")).unwrap().status, 200);
        let start = std::time::Instant::now();
        server.shutdown();
        assert!(start.elapsed() < Duration::from_secs(3), "shutdown hung on wildcard bind");
    }

    #[test]
    fn shutdown_stops_accepting() {
        let server = test_server();
        let addr = server.addr();
        server.shutdown();
        // Either the connect fails or the read does; both count as down.
        let client = Client::new(addr).timeout(Duration::from_millis(300));
        assert!(client.send(&Request::new(Method::Get, "/hello/x")).is_err());
    }
}

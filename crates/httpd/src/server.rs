//! A small threaded HTTP server and client.

use std::io;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::fault::{Fault, FaultInjector};
use crate::http::{HttpError, Request, Response};
use crate::router::Router;

/// Turns a bound address into one a client can connect to: wildcard binds
/// (`0.0.0.0` / `[::]`) are not connectable, so substitute loopback.
pub(crate) fn connectable(addr: SocketAddr) -> SocketAddr {
    let mut addr = addr;
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr {
            SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        });
    }
    addr
}

/// Waits up to `timeout` for `handle` to finish, then joins it; detaches
/// (drops the handle) if it does not finish in time so shutdown can't hang.
pub(crate) fn join_with_timeout(handle: JoinHandle<()>, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    while !handle.is_finished() {
        if Instant::now() >= deadline {
            return; // detach rather than block forever
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = handle.join();
}

/// A running HTTP server. Dropping it shuts the listener down.
///
/// # Example
///
/// ```
/// use confbench_httpd::{Client, Method, Request, Response, Router, Server};
///
/// let mut router = Router::new();
/// router.add(Method::Get, "/ping", |_, _| Response::text("pong"));
/// let server = Server::spawn(router)?;
/// let resp = Client::new(server.addr()).send(&Request::new(Method::Get, "/ping"))?;
/// assert_eq!(resp.body, b"pong");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `127.0.0.1:0` and serves `router` on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(router: Router) -> io::Result<Server> {
        Server::spawn_on("127.0.0.1:0", router)
    }

    /// Binds a specific address.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn_on(addr: &str, router: Router) -> io::Result<Server> {
        Server::spawn_inner(addr, router, None)
    }

    /// As [`Server::spawn`], with a [`FaultInjector`] deciding the fate of
    /// each incoming connection (testing/chaos harness).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn_with_faults(router: Router, faults: Arc<FaultInjector>) -> io::Result<Server> {
        Server::spawn_inner("127.0.0.1:0", router, Some(faults))
    }

    /// As [`Server::spawn_on`], with fault injection.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn_on_with_faults(
        addr: &str,
        router: Router,
        faults: Arc<FaultInjector>,
    ) -> io::Result<Server> {
        Server::spawn_inner(addr, router, Some(faults))
    }

    fn spawn_inner(
        addr: &str,
        router: Router,
        faults: Option<Arc<FaultInjector>>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let router = Arc::new(router);
        let flag = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name(format!("httpd-{addr}"))
            .spawn(move || accept_loop(listener, router, flag, faults))?;
        Ok(Server { addr, shutdown, accept_thread: Some(accept_thread) })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown and joins the accept thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection. Connect to
        // loopback with the bound port: a wildcard bind address (0.0.0.0)
        // is not connectable, which used to leave the loop blocked.
        let _ = TcpStream::connect_timeout(&connectable(self.addr), Duration::from_secs(1));
        if let Some(handle) = self.accept_thread.take() {
            join_with_timeout(handle, Duration::from_secs(5));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    router: Arc<Router>,
    shutdown: Arc<AtomicBool>,
    faults: Option<Arc<FaultInjector>>,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let router = Arc::clone(&router);
        let faults = faults.clone();
        // One thread per connection: ConfBench's control plane is low-rate.
        // Handlers run language interpreters whose recursion is deep in
        // debug builds, so give connections a generous stack.
        let _ = std::thread::Builder::new().name("httpd-conn".into()).stack_size(16 << 20).spawn(
            move || {
                handle_connection(stream, &router, faults.as_deref());
            },
        );
    }
}

fn handle_connection(mut stream: TcpStream, router: &Router, faults: Option<&FaultInjector>) {
    let fault = faults.and_then(|f| f.decide());
    if fault == Some(Fault::DropConnection) {
        return; // close without reading: the client sees a reset/EOF
    }
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let request = match Request::read_from(&mut stream) {
        Ok(request) => request,
        Err(HttpError::Io(_)) => return, // peer went away
        Err(e) => {
            let _ = Response::error(400, e.to_string()).write_to(&mut stream);
            return;
        }
    };
    if let Some(Fault::Delay(d)) = fault {
        std::thread::sleep(d);
    }
    let response = match fault {
        Some(Fault::Status(code)) => Response::error(code, "injected fault"),
        _ => router.dispatch(&request),
    };
    let _ = response.write_to(&mut stream);
}

/// A minimal HTTP client for one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
}

impl Client {
    /// Creates a client for `addr` with a 30 s timeout.
    pub fn new(addr: SocketAddr) -> Self {
        Client { addr, timeout: Duration::from_secs(30) }
    }

    /// Creates a client resolving `addr` (e.g. `"127.0.0.1:8080"`).
    ///
    /// # Errors
    ///
    /// Resolution failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no address resolved"))?;
        Ok(Client::new(addr))
    }

    /// Overrides the request timeout.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sends a request, returning the response.
    ///
    /// # Errors
    ///
    /// Connection or protocol failures.
    pub fn send(&self, request: &Request) -> Result<Response, HttpError> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        request.write_to(&mut stream)?;
        Response::read_from(&mut stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;

    fn test_server() -> Server {
        let mut router = Router::new();
        router.add(Method::Get, "/hello/:who", |_, p| Response::text(format!("hi {}", p["who"])));
        router.add(Method::Post, "/echo", |req, _| {
            let mut r = Response::text(String::from_utf8_lossy(&req.body).into_owned());
            r.status = 201;
            r
        });
        Server::spawn(router).expect("bind")
    }

    #[test]
    fn serves_requests_over_real_sockets() {
        let server = test_server();
        let client = Client::new(server.addr());
        let resp = client.send(&Request::new(Method::Get, "/hello/world")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"hi world");
        server.shutdown();
    }

    #[test]
    fn post_bodies_roundtrip() {
        let server = test_server();
        let client = Client::new(server.addr());
        let mut req = Request::new(Method::Post, "/echo");
        req.body = b"payload".to_vec();
        let resp = client.send(&req).unwrap();
        assert_eq!(resp.status, 201);
        assert_eq!(resp.body, b"payload");
    }

    #[test]
    fn concurrent_clients() {
        let server = test_server();
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let client = Client::new(addr);
                    let resp =
                        client.send(&Request::new(Method::Get, &format!("/hello/{i}"))).unwrap();
                    assert_eq!(resp.body, format!("hi {i}").into_bytes());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn unknown_route_is_404() {
        let server = test_server();
        let client = Client::new(server.addr());
        let resp = client.send(&Request::new(Method::Get, "/nope")).unwrap();
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn fault_injected_status_and_drop() {
        let mut router = Router::new();
        router.add(Method::Get, "/ok", |_, _| Response::text("fine"));
        let faults = Arc::new(
            FaultInjector::new()
                .rule(crate::fault::Trigger::Nth(1), Fault::DropConnection)
                .rule(crate::fault::Trigger::Nth(2), Fault::Status(500)),
        );
        let server = Server::spawn_with_faults(router, Arc::clone(&faults)).unwrap();
        let client = Client::new(server.addr()).timeout(Duration::from_secs(2));
        let req = Request::new(Method::Get, "/ok");
        // Request 1: dropped without a response.
        assert!(client.send(&req).is_err());
        // Request 2: injected 500 instead of the handler.
        assert_eq!(client.send(&req).unwrap().status, 500);
        // Request 3: passes through.
        let resp = client.send(&req).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"fine");
        assert_eq!(faults.requests_seen(), 3);
    }

    #[test]
    fn fault_injected_delay_still_answers() {
        let mut router = Router::new();
        router.add(Method::Get, "/ok", |_, _| Response::text("slow"));
        let faults = Arc::new(
            FaultInjector::new()
                .rule(crate::fault::Trigger::Always, Fault::Delay(Duration::from_millis(30))),
        );
        let server = Server::spawn_with_faults(router, faults).unwrap();
        let client = Client::new(server.addr());
        let start = std::time::Instant::now();
        let resp = client.send(&Request::new(Method::Get, "/ok")).unwrap();
        assert_eq!(resp.body, b"slow");
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn wildcard_bind_still_shuts_down() {
        // A 0.0.0.0 bind used to wedge stop(): the wakeup connection went to
        // the (unconnectable) wildcard address. Must finish promptly now.
        let mut router = Router::new();
        router.add(Method::Get, "/ok", |_, _| Response::text("up"));
        let server = Server::spawn_on("0.0.0.0:0", router).unwrap();
        let port = server.addr().port();
        let client = Client::new(format!("127.0.0.1:{port}").parse().unwrap());
        assert_eq!(client.send(&Request::new(Method::Get, "/ok")).unwrap().status, 200);
        let start = std::time::Instant::now();
        server.shutdown();
        assert!(start.elapsed() < Duration::from_secs(3), "shutdown hung on wildcard bind");
    }

    #[test]
    fn shutdown_stops_accepting() {
        let server = test_server();
        let addr = server.addr();
        server.shutdown();
        // Either the connect fails or the read does; both count as down.
        let client = Client::new(addr).timeout(Duration::from_millis(300));
        assert!(client.send(&Request::new(Method::Get, "/hello/x")).is_err());
    }
}

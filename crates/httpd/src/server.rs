//! An epoll-reactor HTTP/1.1 server with keep-alive, and a
//! connection-pooling client.
//!
//! One reactor thread owns the listener and every connection socket in
//! nonblocking mode; each connection is a small state machine (reading →
//! dispatching → writing → keep-alive idle). The worker pool executes
//! handlers only: a connection occupies a worker exactly while
//! `Router::dispatch` runs and hands the socket back to the reactor for
//! all I/O, so an idle keep-alive socket costs a few hundred bytes of
//! state instead of a pinned thread. Admission control caps open
//! connections at `workers + backlog`; overflow is answered `503` +
//! `Retry-After` as a nonblocking write state inside the reactor, so a
//! slow or malicious rejected client can never stall the accept path.
//! Idle/read timeouts ride the `epoll_wait` timeout, and
//! [`Server::shutdown`] drains gracefully by walking the connection
//! table: accept stops, idle sockets close immediately, and dispatched
//! requests get a deadline to finish.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{
    IpAddr, Ipv4Addr, Ipv6Addr, Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use confbench_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use parking_lot::Mutex;

use crate::fault::{Fault, FaultInjector};
use crate::http::{try_parse_request, HttpError, Request, Response};
use crate::poll::{event_buffer, Epoll, Waker, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};
use crate::router::Router;

/// Turns a bound address into one a client can connect to: wildcard binds
/// (`0.0.0.0` / `[::]`) are not connectable, so substitute loopback.
pub(crate) fn connectable(addr: SocketAddr) -> SocketAddr {
    let mut addr = addr;
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr {
            SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        });
    }
    addr
}

/// Waits up to `timeout` for `handle` to finish, then joins it; detaches
/// (drops the handle) if it does not finish in time so shutdown can't hang.
pub(crate) fn join_with_timeout(handle: JoinHandle<()>, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    while !handle.is_finished() {
        if Instant::now() >= deadline {
            return; // detach rather than block forever
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = handle.join();
}

/// Total budget for draining a connection that was answered out-of-band
/// (backpressure 503s and protocol-error responses): the peer's unread
/// request bytes are discarded for at most this long before the socket
/// closes, no matter how slowly they trickle in.
const REJECT_DRAIN_TOTAL: Duration = Duration::from_millis(500);
/// One shared budget for joining the whole worker pool on shutdown (a
/// wedged handler detaches its worker instead of serializing 1 s each).
const WORKER_JOIN_TOTAL: Duration = Duration::from_secs(1);
/// Events drained per `epoll_wait` call.
const EVENT_BATCH: usize = 256;
/// Bytes read per `read` call on a ready connection.
const READ_CHUNK: usize = 16 * 1024;
/// Reserved epoll token for the listener.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Reserved epoll token for the reactor waker.
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// Connection-layer tuning for a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads executing handlers. A connection occupies a worker
    /// only while its request dispatches; all socket I/O (including idle
    /// keep-alive waits) stays on the reactor thread. Clamped to ≥ 1.
    pub workers: usize,
    /// Admitted connections allowed beyond `workers`: once `workers +
    /// backlog` connections are open, further arrivals are answered `503`
    /// + `Retry-After`. Clamped to ≥ 1.
    pub backlog: usize,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it.
    pub keep_alive_idle: Duration,
    /// Requests served on one connection before the server closes it
    /// (`connection: close` on the final response). Clamped to ≥ 1.
    pub max_requests_per_conn: u64,
    /// Deadline for a connection's first request. Expiry with partial
    /// request bytes answers `408 Request Timeout`; with none it closes
    /// silently.
    pub read_timeout: Duration,
    /// `Retry-After` hint (seconds) on backpressure 503s. Gateways wire
    /// this from their retry policy so the hint matches their own backoff.
    pub retry_after_secs: u64,
    /// How long [`Server::shutdown`] waits for in-flight requests before
    /// force-closing their connections.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    /// 8 workers, 1024 connections of admission headroom, 5 s keep-alive
    /// idle, 1000 requests/connection, 30 s read timeout, `Retry-After: 1`,
    /// 5 s drain.
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            backlog: 1024,
            keep_alive_idle: Duration::from_secs(5),
            max_requests_per_conn: 1000,
            read_timeout: Duration::from_secs(30),
            retry_after_secs: 1,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Cached `httpd_*` instrument handles.
struct HttpdMetrics {
    connections_total: Arc<Counter>,
    active: Arc<Gauge>,
    requests_total: Arc<Counter>,
    keepalive_reuse: Arc<Counter>,
    rejected_total: Arc<Counter>,
    workers_busy: Arc<Gauge>,
    dispatch_depth: Arc<Gauge>,
    requests_per_conn: Arc<Histogram>,
}

impl HttpdMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        HttpdMetrics {
            connections_total: registry.counter("httpd_connections_total"),
            active: registry.gauge("httpd_connections_active"),
            requests_total: registry.counter("httpd_requests_total"),
            keepalive_reuse: registry.counter("httpd_keepalive_reuse_total"),
            rejected_total: registry.counter("httpd_rejected_total"),
            workers_busy: registry.gauge("httpd_workers_busy"),
            dispatch_depth: registry.gauge("httpd_dispatch_queue_depth"),
            requests_per_conn: registry.histogram("httpd_requests_per_conn", &[1, 2, 5, 10, 100]),
        }
    }
}

/// A parsed request handed from the reactor to the worker pool.
struct Task {
    conn: u64,
    request: Request,
    /// Injected [`Fault::Delay`], slept on the worker (not the reactor).
    delay: Option<Duration>,
}

/// Handoff queue between the reactor and the worker pool.
#[derive(Default)]
struct TaskQueue {
    state: StdMutex<(VecDeque<Task>, bool)>, // (pending, closed)
    cv: Condvar,
}

impl TaskQueue {
    fn push(&self, task: Task) {
        let mut state = self.state.lock().expect("task queue lock");
        if state.1 {
            return;
        }
        state.0.push_back(task);
        drop(state);
        self.cv.notify_one();
    }

    /// Blocks until a task is available or the queue is closed. `None`
    /// tells the worker to exit.
    fn pop(&self) -> Option<Task> {
        let mut state = self.state.lock().expect("task queue lock");
        loop {
            if let Some(task) = state.0.pop_front() {
                return Some(task);
            }
            if state.1 {
                return None;
            }
            state = self.cv.wait(state).expect("task queue lock");
        }
    }

    /// Closes the queue, dropping tasks never picked up (their connections
    /// are force-closed by the reactor's drain deadline).
    fn close(&self) {
        let mut state = self.state.lock().expect("task queue lock");
        state.1 = true;
        state.0.clear();
        drop(state);
        self.cv.notify_all();
    }
}

/// State shared by the reactor thread and the worker pool.
struct Shared {
    router: Router,
    config: ServerConfig,
    faults: Option<Arc<FaultInjector>>,
    metrics: HttpdMetrics,
    registry: Arc<MetricsRegistry>,
    shutdown: AtomicBool,
    tasks: TaskQueue,
    /// Responses ready to be written, applied by the reactor each tick.
    completions: Mutex<Vec<(u64, Response)>>,
    epoll: Epoll,
    waker: Waker,
}

/// Where a connection is in its request lifecycle. Transitions happen only
/// on the reactor thread, which is what makes the drain-vs-dispatch race
/// of the old registry design impossible: a connection is `Dispatching`
/// from the instant its request parses, atomically with everything else
/// the reactor decides.
#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    /// Waiting for (more of) a request; interest `EPOLLIN`.
    Reading,
    /// Request handed to the worker pool; no I/O interest.
    Dispatching,
    /// Response bytes draining to the peer; interest `EPOLLOUT`.
    Writing,
    /// Out-of-band answer written (503/4xx); unread request bytes are
    /// discarded until [`REJECT_DRAIN_TOTAL`] so the close cannot RST the
    /// response out of the peer's receive buffer. Interest `EPOLLIN`.
    RejectDraining,
}

/// Per-connection reactor state.
struct Conn {
    stream: TcpStream,
    state: State,
    /// Unparsed request bytes received so far.
    buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    served: u64,
    req_keep_alive: bool,
    fault_close: bool,
    close_after_write: bool,
    /// Admitted (counted in `httpd_connections_active`); rejects are not.
    counted: bool,
    /// Drain unread input briefly after the final write instead of
    /// closing immediately (reject/error answers).
    linger: bool,
    /// Dropped from the epoll set early (peer hung up mid-dispatch).
    unregistered: bool,
    /// Generation guard: a timer entry only fires if it matches.
    timer_gen: u64,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            state: State::Reading,
            buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            served: 0,
            req_keep_alive: true,
            fault_close: false,
            close_after_write: false,
            counted: true,
            linger: false,
            unregistered: false,
            timer_gen: 0,
        }
    }
}

/// The readiness loop: owns the listener and every connection socket.
struct Reactor {
    shared: Arc<Shared>,
    listener: Option<TcpListener>,
    conns: HashMap<u64, Conn>,
    /// Min-heap of (deadline, conn, generation); stale generations are
    /// skipped lazily when popped.
    timers: BinaryHeap<Reverse<(Instant, u64, u64)>>,
    next_id: u64,
    draining: bool,
    drain_deadline: Option<Instant>,
}

enum WriteOutcome {
    Done,
    Pending,
    Failed,
}

impl Reactor {
    fn run(&mut self) {
        let mut events = event_buffer(EVENT_BATCH);
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            }
            if self.draining {
                if self.conns.is_empty() {
                    break;
                }
                if self.drain_deadline.is_some_and(|d| Instant::now() >= d) {
                    for id in self.conns.keys().copied().collect::<Vec<_>>() {
                        self.close_conn(id);
                    }
                    break;
                }
            }
            let n = match self.shared.epoll.wait(&mut events, self.next_deadline()) {
                Ok(n) => n,
                Err(_) => {
                    // Unexpected epoll failure: back off instead of spinning.
                    std::thread::sleep(Duration::from_millis(1));
                    0
                }
            };
            for event in events.iter().take(n) {
                let (token, bits) = (event.token(), event.events());
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.shared.waker.drain(),
                    id => self.conn_ready(id, bits),
                }
            }
            self.apply_completions();
            self.fire_timers();
        }
    }

    /// Stops accepting and cuts connections not serving a request; the
    /// rest get until `drain_timeout` to finish.
    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + self.shared.config.drain_timeout);
        if let Some(listener) = self.listener.take() {
            let _ = self.shared.epoll.delete(&listener);
        }
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| matches!(c.state, State::Reading | State::RejectDraining))
            .map(|(id, _)| *id)
            .collect();
        for id in idle {
            self.close_conn(id);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let accepted = match self.listener.as_ref() {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _)) => self.register_conn(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return, // transient (EMFILE etc.): retry next tick
            }
        }
    }

    /// Admits a fresh connection, or answers `503` + `Retry-After` when
    /// `workers + backlog` connections are already open. The rejection is
    /// itself a nonblocking write + bounded drain, so it can never stall
    /// the accept path (the historical trickle-client DoS).
    fn register_conn(&mut self, stream: TcpStream) {
        let _ = stream.set_nonblocking(true);
        let _ = stream.set_nodelay(true);
        let id = self.next_id;
        self.next_id += 1;
        let capacity = (self.shared.config.workers + self.shared.config.backlog) as u64;
        if self.draining || self.shared.metrics.active.get() >= capacity {
            self.shared.metrics.rejected_total.inc();
            let mut response =
                Response::error(503, "server saturated: all workers busy, backlog full");
            response
                .headers
                .insert("retry-after".into(), self.shared.config.retry_after_secs.to_string());
            response.headers.insert("connection".into(), "close".into());
            let mut conn = Conn::new(stream);
            conn.counted = false;
            conn.linger = true;
            conn.close_after_write = true;
            conn.write_buf = response.to_bytes();
            conn.state = State::Writing;
            if self.shared.epoll.add(&conn.stream, EPOLLOUT, id).is_err() {
                return; // drop: the peer sees a reset
            }
            self.conns.insert(id, conn);
            self.arm_timer(id, Instant::now() + REJECT_DRAIN_TOTAL);
            self.flush_write(id);
            return;
        }
        self.shared.metrics.connections_total.inc();
        self.shared.metrics.active.inc();
        let conn = Conn::new(stream);
        if self.shared.epoll.add(&conn.stream, EPOLLIN, id).is_err() {
            self.shared.metrics.active.dec();
            return;
        }
        self.conns.insert(id, conn);
        self.arm_timer(id, Instant::now() + self.shared.config.read_timeout);
    }

    fn conn_ready(&mut self, id: u64, bits: u32) {
        let Some(state) = self.conns.get(&id).map(|c| c.state) else { return };
        if bits & (EPOLLHUP | EPOLLERR) != 0 {
            match state {
                // The worker still owns this request; drop the fd from the
                // epoll set so it stops reporting, and let the completion
                // discover the dead peer at write time.
                State::Dispatching => {
                    if let Some(conn) = self.conns.get_mut(&id) {
                        let _ = self.shared.epoll.delete(&conn.stream);
                        conn.unregistered = true;
                    }
                }
                // Pending input may precede the hangup; read it to EOF so a
                // final pipelined request or the FIN is seen in order.
                State::Reading | State::RejectDraining if bits & EPOLLIN != 0 => self.readable(id),
                _ => self.close_conn(id),
            }
            return;
        }
        if bits & EPOLLIN != 0 {
            self.readable(id);
        }
        if bits & EPOLLOUT != 0 {
            self.flush_write(id);
        }
    }

    fn readable(&mut self, id: u64) {
        let Some(state) = self.conns.get(&id).map(|c| c.state) else { return };
        match state {
            State::Reading => {
                let mut chunk = [0u8; READ_CHUNK];
                let mut eof = false;
                loop {
                    let Some(conn) = self.conns.get_mut(&id) else { return };
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            eof = true;
                            break;
                        }
                        Ok(n) => conn.buf.extend_from_slice(&chunk[..n]),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            self.close_conn(id);
                            return;
                        }
                    }
                }
                self.advance(id, eof);
            }
            State::RejectDraining => {
                let mut chunk = [0u8; READ_CHUNK];
                loop {
                    let Some(conn) = self.conns.get_mut(&id) else { return };
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            self.close_conn(id);
                            return;
                        }
                        Ok(_) => {} // discard
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            self.close_conn(id);
                            return;
                        }
                    }
                }
            }
            _ => {}
        }
    }

    /// Parses as many complete requests as the buffer holds, dispatching
    /// each; answers protocol errors; handles a peer close (`eof`).
    fn advance(&mut self, id: u64, eof: bool) {
        loop {
            let parsed = {
                let Some(conn) = self.conns.get_mut(&id) else { return };
                if conn.state != State::Reading {
                    return;
                }
                match try_parse_request(&conn.buf) {
                    Ok(Some((request, consumed))) => {
                        conn.buf.drain(..consumed);
                        Ok(Some(request))
                    }
                    Ok(None) => Ok(None),
                    Err(e) => Err(e),
                }
            };
            match parsed {
                Ok(Some(request)) => self.start_request(id, request),
                Ok(None) => break,
                Err(e) => {
                    // Parse errors answer with their status (400/413/431)
                    // and close: the stream position is untrustworthy.
                    let mut response = Response::error(e.status(), e.to_string());
                    response.headers.insert("connection".into(), "close".into());
                    self.send_response_and_close(id, response);
                    return;
                }
            }
        }
        if !eof {
            return;
        }
        let partial = match self.conns.get(&id) {
            Some(conn) if conn.state == State::Reading => !conn.buf.is_empty(),
            _ => return,
        };
        if partial {
            let mut response =
                Response::error(400, "malformed http message: connection closed mid-request");
            response.headers.insert("connection".into(), "close".into());
            self.send_response_and_close(id, response);
        } else {
            self.close_conn(id); // clean end of keep-alive
        }
    }

    /// Applies fault decisions and hands the request to the worker pool.
    fn start_request(&mut self, id: u64, request: Request) {
        {
            let Some(conn) = self.conns.get_mut(&id) else { return };
            conn.served += 1;
            conn.req_keep_alive = request.wants_keep_alive();
            self.shared.metrics.requests_total.inc();
            if conn.served > 1 {
                self.shared.metrics.keepalive_reuse.inc();
            }
        }
        let fault = self.shared.faults.as_deref().and_then(|f| f.decide());
        match fault {
            Some(Fault::DropConnection) => {
                // Close without a response: the client sees a reset/EOF.
                self.close_conn(id);
                return;
            }
            Some(Fault::Status(code)) => {
                self.finish_response(id, Response::error(code, "injected fault"));
                return;
            }
            _ => {}
        }
        let delay = if let Some(Fault::Delay(d)) = fault { Some(d) } else { None };
        {
            let Some(conn) = self.conns.get_mut(&id) else { return };
            // `CloseAfterResponse` deliberately lies (keep-alive advertised,
            // socket closed anyway) to simulate a server dying mid-keep-alive.
            conn.fault_close = fault == Some(Fault::CloseAfterResponse);
            conn.state = State::Dispatching;
            conn.timer_gen += 1; // cancel the read/idle timer
        }
        self.set_interest(id, 0); // quiesce: level-triggered EPOLLIN would spin
        self.shared.metrics.dispatch_depth.inc();
        self.shared.tasks.push(Task { conn: id, request, delay });
    }

    /// Queues `response` for writing and decides the connection's fate.
    fn finish_response(&mut self, id: u64, mut response: Response) {
        let draining = self.draining;
        {
            let Some(conn) = self.conns.get_mut(&id) else { return };
            let exhausted = conn.served >= self.shared.config.max_requests_per_conn;
            let close = !conn.req_keep_alive || !response.keep_alive() || draining || exhausted;
            if !conn.fault_close {
                response
                    .headers
                    .insert("connection".into(), if close { "close" } else { "keep-alive" }.into());
            }
            conn.close_after_write = close || conn.fault_close;
            conn.write_buf = response.to_bytes();
            conn.write_pos = 0;
            conn.state = State::Writing;
        }
        self.set_interest(id, EPOLLOUT);
        self.flush_write(id);
    }

    /// Queues an error answer (408/4xx/431) followed by a lingering close.
    fn send_response_and_close(&mut self, id: u64, response: Response) {
        {
            let Some(conn) = self.conns.get_mut(&id) else { return };
            conn.write_buf = response.to_bytes();
            conn.write_pos = 0;
            conn.state = State::Writing;
            conn.close_after_write = true;
            conn.linger = true;
        }
        self.set_interest(id, EPOLLOUT);
        // Also bounds the write phase against a peer that never reads.
        self.arm_timer(id, Instant::now() + REJECT_DRAIN_TOTAL);
        self.flush_write(id);
    }

    fn flush_write(&mut self, id: u64) {
        let outcome = loop {
            let Some(conn) = self.conns.get_mut(&id) else { return };
            if conn.state != State::Writing {
                return;
            }
            if conn.write_pos >= conn.write_buf.len() {
                break WriteOutcome::Done;
            }
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => break WriteOutcome::Failed,
                Ok(n) => conn.write_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break WriteOutcome::Pending,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break WriteOutcome::Failed,
            }
        };
        match outcome {
            WriteOutcome::Done => self.write_complete(id),
            WriteOutcome::Pending => {} // EPOLLOUT interest already armed
            WriteOutcome::Failed => self.close_conn(id),
        }
    }

    fn write_complete(&mut self, id: u64) {
        let Some((linger, close_after)) =
            self.conns.get(&id).map(|c| (c.linger, c.close_after_write))
        else {
            return;
        };
        if linger {
            // Half-close, then discard the peer's unread bytes until the
            // drain budget expires: an immediate close would RST the
            // answer out of the peer's receive buffer.
            {
                let conn = self.conns.get_mut(&id).expect("conn checked above");
                let _ = conn.stream.shutdown(Shutdown::Write);
                conn.state = State::RejectDraining;
                conn.write_buf = Vec::new();
            }
            self.set_interest(id, EPOLLIN);
            self.arm_timer(id, Instant::now() + REJECT_DRAIN_TOTAL);
            self.readable(id);
        } else if close_after || self.draining {
            self.close_conn(id);
        } else {
            {
                let conn = self.conns.get_mut(&id).expect("conn checked above");
                conn.state = State::Reading;
                conn.write_buf = Vec::new();
                conn.write_pos = 0;
            }
            self.set_interest(id, EPOLLIN);
            self.arm_timer(id, Instant::now() + self.shared.config.keep_alive_idle);
            // A pipelined follow-up may already be buffered.
            self.advance(id, false);
        }
    }

    /// Applies responses the worker pool finished since the last tick.
    fn apply_completions(&mut self) {
        let done: Vec<(u64, Response)> = std::mem::take(&mut *self.shared.completions.lock());
        for (id, response) in done {
            self.finish_response(id, response);
        }
    }

    fn timer_fired(&mut self, id: u64) {
        let Some(state) = self.conns.get(&id).map(|c| c.state) else { return };
        match state {
            State::Reading => {
                let partial = self.conns.get(&id).is_some_and(|c| !c.buf.is_empty());
                if partial {
                    // The peer started a request but never finished it:
                    // tell it so instead of cutting the socket silently.
                    let mut response =
                        Response::error(408, "timed out waiting for a complete request");
                    response.headers.insert("connection".into(), "close".into());
                    self.send_response_and_close(id, response);
                } else {
                    // Idle keep-alive sockets close silently: pooled
                    // clients expect a clean EOF there.
                    self.close_conn(id);
                }
            }
            // Reject/error drain budget exhausted, or the peer never read
            // the final answer.
            State::RejectDraining | State::Writing => self.close_conn(id),
            State::Dispatching => {}
        }
    }

    fn fire_timers(&mut self) {
        let now = Instant::now();
        while let Some(Reverse((deadline, id, generation))) = self.timers.peek().copied() {
            if deadline > now {
                break;
            }
            self.timers.pop();
            if self.conns.get(&id).map(|c| c.timer_gen) == Some(generation) {
                self.timer_fired(id);
            }
        }
    }

    /// Re-arms the connection's (single) timer; any previous entry for it
    /// in the heap goes stale via the generation bump.
    fn arm_timer(&mut self, id: u64, deadline: Instant) {
        let Some(conn) = self.conns.get_mut(&id) else { return };
        conn.timer_gen += 1;
        let generation = conn.timer_gen;
        self.timers.push(Reverse((deadline, id, generation)));
    }

    /// The next instant the reactor must wake even without I/O.
    fn next_deadline(&self) -> Option<Instant> {
        let timer = self.timers.peek().map(|Reverse((deadline, _, _))| *deadline);
        match (timer, self.drain_deadline) {
            (Some(t), Some(d)) => Some(t.min(d)),
            (t, d) => t.or(d),
        }
    }

    fn set_interest(&mut self, id: u64, events: u32) {
        let Some(conn) = self.conns.get_mut(&id) else { return };
        if conn.unregistered {
            if self.shared.epoll.add(&conn.stream, events, id).is_ok() {
                conn.unregistered = false;
            }
        } else {
            let _ = self.shared.epoll.modify(&conn.stream, events, id);
        }
    }

    fn close_conn(&mut self, id: u64) {
        let Some(conn) = self.conns.remove(&id) else { return };
        if !conn.unregistered {
            let _ = self.shared.epoll.delete(&conn.stream);
        }
        if conn.counted {
            self.shared.metrics.requests_per_conn.observe(conn.served);
            self.shared.metrics.active.dec();
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(task) = shared.tasks.pop() {
        shared.metrics.dispatch_depth.dec();
        shared.metrics.workers_busy.inc();
        if let Some(delay) = task.delay {
            std::thread::sleep(delay);
        }
        // A panicking handler must not kill the pool's worker.
        let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.router.dispatch(&task.request)
        }))
        .unwrap_or_else(|_| Response::error(500, "handler panicked"));
        shared.metrics.workers_busy.dec();
        shared.completions.lock().push((task.conn, response));
        shared.waker.wake();
    }
}

/// Configures and spawns a [`Server`]; obtained from [`Server::build`].
pub struct ServerBuilder {
    router: Router,
    config: ServerConfig,
    faults: Option<Arc<FaultInjector>>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl ServerBuilder {
    /// Overrides the connection-layer tuning (default [`ServerConfig::default`]).
    pub fn config(mut self, config: ServerConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a [`FaultInjector`] deciding the fate of each request.
    pub fn faults(mut self, faults: Arc<FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Publishes `httpd_*` metrics into a shared registry (default: a fresh
    /// registry reachable via [`Server::metrics`]).
    pub fn metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Binds `addr` and starts the reactor thread plus the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (and epoll/eventfd setup failures).
    pub fn spawn(self, addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let mut config = self.config;
        config.workers = config.workers.max(1);
        config.backlog = config.backlog.max(1);
        config.max_requests_per_conn = config.max_requests_per_conn.max(1);
        let registry = self.metrics.unwrap_or_default();
        let epoll = Epoll::new()?;
        let waker = Waker::new()?;
        epoll.add(&listener, EPOLLIN, TOKEN_LISTENER)?;
        epoll.add(&waker, EPOLLIN, TOKEN_WAKER)?;
        let shared = Arc::new(Shared {
            router: self.router,
            config,
            faults: self.faults,
            metrics: HttpdMetrics::register(&registry),
            registry,
            shutdown: AtomicBool::new(false),
            tasks: TaskQueue::default(),
            completions: Mutex::new(Vec::new()),
            epoll,
            waker,
        });

        let reactor_shared = Arc::clone(&shared);
        let reactor_thread =
            std::thread::Builder::new().name(format!("httpd-{addr}")).spawn(move || {
                Reactor {
                    shared: reactor_shared,
                    listener: Some(listener),
                    conns: HashMap::new(),
                    timers: BinaryHeap::new(),
                    next_id: 0,
                    draining: false,
                    drain_deadline: None,
                }
                .run()
            })?;

        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let worker_shared = Arc::clone(&shared);
            // Handlers run language interpreters whose recursion is deep in
            // debug builds, so give workers a generous stack.
            workers.push(
                std::thread::Builder::new()
                    .name(format!("httpd-worker-{i}"))
                    .stack_size(16 << 20)
                    .spawn(move || worker_loop(&worker_shared))?,
            );
        }
        Ok(Server { addr, shared, reactor_thread: Some(reactor_thread), workers })
    }
}

/// A running HTTP server. Dropping it shuts the listener down.
///
/// # Example
///
/// ```
/// use confbench_httpd::{Client, Method, Request, Response, Router, Server};
///
/// let mut router = Router::new();
/// router.add(Method::Get, "/ping", |_, _| Response::text("pong"));
/// let server = Server::spawn(router)?;
/// let resp = Client::new(server.addr()).send(&Request::new(Method::Get, "/ping"))?;
/// assert_eq!(resp.body, b"pong");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    reactor_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts configuring a server for `router`.
    pub fn build(router: Router) -> ServerBuilder {
        ServerBuilder { router, config: ServerConfig::default(), faults: None, metrics: None }
    }

    /// Binds `127.0.0.1:0` and serves `router` with default tuning.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(router: Router) -> io::Result<Server> {
        Server::build(router).spawn("127.0.0.1:0")
    }

    /// Binds a specific address.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn_on(addr: &str, router: Router) -> io::Result<Server> {
        Server::build(router).spawn(addr)
    }

    /// As [`Server::spawn`], with a [`FaultInjector`] deciding the fate of
    /// each incoming request (testing/chaos harness).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn_with_faults(router: Router, faults: Arc<FaultInjector>) -> io::Result<Server> {
        Server::build(router).faults(faults).spawn("127.0.0.1:0")
    }

    /// As [`Server::spawn_on`], with fault injection.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn_on_with_faults(
        addr: &str,
        router: Router,
        faults: Arc<FaultInjector>,
    ) -> io::Result<Server> {
        Server::build(router).faults(faults).spawn(addr)
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry the server's `httpd_*` instruments live in.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.shared.registry
    }

    /// Connections currently admitted (open in the reactor).
    pub fn active_connections(&self) -> u64 {
        self.shared.metrics.active.get()
    }

    /// Worker threads executing handlers.
    pub fn worker_count(&self) -> usize {
        self.shared.config.workers
    }

    /// Admitted connections beyond the worker count — the portion of the
    /// admission window (`workers + backlog`) consumed by connections that
    /// would have queued for a worker under the old thread-per-connection
    /// design.
    pub fn backlog_depth(&self) -> usize {
        (self.shared.metrics.active.get() as usize).saturating_sub(self.shared.config.workers)
    }

    /// Gracefully shuts down: stops accepting, cuts idle keep-alive
    /// sockets, lets dispatched requests finish within the drain deadline,
    /// then joins the reactor and the pool.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
        if let Some(handle) = self.reactor_thread.take() {
            // The reactor needs the drain window plus slack to walk the
            // connection table and exit.
            join_with_timeout(handle, self.shared.config.drain_timeout + Duration::from_secs(2));
        }
        self.shared.tasks.close();
        self.shared.metrics.dispatch_depth.set(0);
        // One shared deadline for the whole pool: a wedged handler costs
        // the budget once, not per worker.
        let deadline = Instant::now() + WORKER_JOIN_TOTAL;
        for handle in self.workers.drain(..) {
            join_with_timeout(handle, deadline.saturating_duration_since(Instant::now()));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.reactor_thread.is_some() || !self.workers.is_empty() {
            self.stop();
        }
    }
}

/// Statistics a [`Client`] keeps about its connection pool.
#[derive(Debug, Default)]
struct ClientStats {
    reused: AtomicU64,
    stale_retries: AtomicU64,
}

/// An HTTP client for one server address, with persistent connection reuse.
///
/// Sockets whose response advertised keep-alive return to a shared pool and
/// are reused by later sends (clones share the pool). A send on a pooled
/// socket that fails with a stale-socket error (EOF/reset — the server
/// closed it between requests) is transparently retried once on a fresh
/// connection; failures on fresh connections propagate.
#[derive(Clone)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    pool: Arc<Mutex<Vec<TcpStream>>>,
    stats: Arc<ClientStats>,
}

/// Idle sockets kept per pool; excess connections close on return.
const POOL_CAP: usize = 8;

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("addr", &self.addr)
            .field("timeout", &self.timeout)
            .field("pooled", &self.pool.lock().len())
            .finish()
    }
}

impl Client {
    /// Creates a client for `addr` with a 30 s timeout.
    pub fn new(addr: SocketAddr) -> Self {
        Client {
            addr,
            timeout: Duration::from_secs(30),
            pool: Arc::new(Mutex::new(Vec::new())),
            stats: Arc::new(ClientStats::default()),
        }
    }

    /// Creates a client resolving `addr` (e.g. `"127.0.0.1:8080"`).
    ///
    /// # Errors
    ///
    /// Resolution failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no address resolved"))?;
        Ok(Client::new(addr))
    }

    /// Overrides the request timeout (the connection pool is shared with
    /// the original).
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sends served on a reused pooled socket so far.
    pub fn reused_connections(&self) -> u64 {
        self.stats.reused.load(Ordering::SeqCst)
    }

    /// Stale pooled sockets detected and retried on a fresh connection.
    pub fn stale_retries(&self) -> u64 {
        self.stats.stale_retries.load(Ordering::SeqCst)
    }

    /// Idle sockets currently pooled.
    pub fn pooled_connections(&self) -> usize {
        self.pool.lock().len()
    }

    /// Sends a request, returning the response.
    ///
    /// # Errors
    ///
    /// Connection or protocol failures.
    pub fn send(&self, request: &Request) -> Result<Response, HttpError> {
        self.send_with_timeout(request, self.timeout)
    }

    /// As [`Client::send`] with an explicit per-request timeout (deadline
    /// propagation clamps this below the client default).
    ///
    /// # Errors
    ///
    /// Connection or protocol failures.
    pub fn send_with_timeout(
        &self,
        request: &Request,
        timeout: Duration,
    ) -> Result<Response, HttpError> {
        // Take the pooled socket in its own statement: an `if let` on
        // `.lock().pop()` would hold the pool guard for the whole body and
        // deadlock against `maybe_pool`'s re-lock.
        let pooled = self.pool.lock().pop();
        if let Some(mut stream) = pooled {
            match Self::exchange(&mut stream, request, timeout) {
                Ok(response) => {
                    self.stats.reused.fetch_add(1, Ordering::SeqCst);
                    self.maybe_pool(stream, &response);
                    return Ok(response);
                }
                Err(e) if is_stale_socket(&e) => {
                    // The server closed the pooled socket between requests
                    // (idle timeout, request cap, restart): retry once on a
                    // fresh connection.
                    self.stats.stale_retries.fetch_add(1, Ordering::SeqCst);
                }
                Err(e) => return Err(e),
            }
        }
        let mut stream = TcpStream::connect_timeout(&self.addr, timeout)?;
        let response = Self::exchange(&mut stream, request, timeout)?;
        self.maybe_pool(stream, &response);
        Ok(response)
    }

    fn exchange(
        stream: &mut TcpStream,
        request: &Request,
        timeout: Duration,
    ) -> Result<Response, HttpError> {
        // Without nodelay, the second small write on a reused socket sits
        // behind Nagle waiting for the peer's delayed ACK (~40 ms per
        // request), erasing the keep-alive win.
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        request.write_to(stream)?;
        Response::read_from(stream)
    }

    fn maybe_pool(&self, stream: TcpStream, response: &Response) {
        if response.keep_alive() {
            let mut pool = self.pool.lock();
            if pool.len() < POOL_CAP {
                pool.push(stream);
            }
        }
    }
}

/// Errors that mean a pooled socket went stale (safe to retry on a fresh
/// connection) as opposed to a live server misbehaving or timing out.
fn is_stale_socket(e: &HttpError) -> bool {
    match e {
        HttpError::Closed => true,
        HttpError::Io(e) => matches!(
            e.kind(),
            io::ErrorKind::UnexpectedEof
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::BrokenPipe
        ),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;

    fn test_server() -> Server {
        let mut router = Router::new();
        router.add(Method::Get, "/hello/:who", |_, p| Response::text(format!("hi {}", p["who"])));
        router.add(Method::Post, "/echo", |req, _| {
            let mut r = Response::text(String::from_utf8_lossy(&req.body).into_owned());
            r.status = 201;
            r
        });
        Server::spawn(router).expect("bind")
    }

    #[test]
    fn serves_requests_over_real_sockets() {
        let server = test_server();
        let client = Client::new(server.addr());
        let resp = client.send(&Request::new(Method::Get, "/hello/world")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"hi world");
        server.shutdown();
    }

    #[test]
    fn post_bodies_roundtrip() {
        let server = test_server();
        let client = Client::new(server.addr());
        let mut req = Request::new(Method::Post, "/echo");
        req.body = b"payload".to_vec();
        let resp = client.send(&req).unwrap();
        assert_eq!(resp.status, 201);
        assert_eq!(resp.body, b"payload");
    }

    #[test]
    fn concurrent_clients() {
        let server = test_server();
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let client = Client::new(addr);
                    let resp =
                        client.send(&Request::new(Method::Get, &format!("/hello/{i}"))).unwrap();
                    assert_eq!(resp.body, format!("hi {i}").into_bytes());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn unknown_route_is_404() {
        let server = test_server();
        let client = Client::new(server.addr());
        let resp = client.send(&Request::new(Method::Get, "/nope")).unwrap();
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn keep_alive_reuses_one_connection() {
        let server = test_server();
        let client = Client::new(server.addr());
        for _ in 0..5 {
            let resp = client.send(&Request::new(Method::Get, "/hello/ka")).unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(resp.headers.get("connection").map(String::as_str), Some("keep-alive"));
        }
        assert_eq!(client.reused_connections(), 4, "first send connects, four reuse");
        let m = server.metrics();
        assert_eq!(m.counter_value("httpd_connections_total"), Some(1));
        assert_eq!(m.counter_value("httpd_requests_total"), Some(5));
        assert_eq!(m.counter_value("httpd_keepalive_reuse_total"), Some(4));
    }

    #[test]
    fn connection_close_header_is_honored() {
        let server = test_server();
        let client = Client::new(server.addr());
        let mut req = Request::new(Method::Get, "/hello/x");
        req.headers.insert("connection".into(), "close".into());
        let resp = client.send(&req).unwrap();
        assert_eq!(resp.headers.get("connection").map(String::as_str), Some("close"));
        assert_eq!(client.pooled_connections(), 0, "closed socket not pooled");
        // The next send opens a second connection.
        client.send(&Request::new(Method::Get, "/hello/y")).unwrap();
        assert_eq!(server.metrics().counter_value("httpd_connections_total"), Some(2));
    }

    #[test]
    fn idle_timeout_closes_and_client_recovers() {
        let mut router = Router::new();
        router.add(Method::Get, "/ok", |_, _| Response::text("up"));
        let config =
            ServerConfig { keep_alive_idle: Duration::from_millis(50), ..ServerConfig::default() };
        let server = Server::build(router).config(config).spawn("127.0.0.1:0").unwrap();
        let client = Client::new(server.addr());
        client.send(&Request::new(Method::Get, "/ok")).unwrap();
        assert_eq!(client.pooled_connections(), 1);
        std::thread::sleep(Duration::from_millis(250));
        // The pooled socket is stale (server idled it out); the client must
        // retry transparently on a fresh connection.
        let resp = client.send(&Request::new(Method::Get, "/ok")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(client.stale_retries(), 1);
        assert_eq!(server.metrics().counter_value("httpd_connections_total"), Some(2));
    }

    #[test]
    fn request_cap_closes_connection() {
        let mut router = Router::new();
        router.add(Method::Get, "/ok", |_, _| Response::text("up"));
        let config = ServerConfig { max_requests_per_conn: 2, ..ServerConfig::default() };
        let server = Server::build(router).config(config).spawn("127.0.0.1:0").unwrap();
        let client = Client::new(server.addr());
        client.send(&Request::new(Method::Get, "/ok")).unwrap();
        let second = client.send(&Request::new(Method::Get, "/ok")).unwrap();
        assert_eq!(second.headers.get("connection").map(String::as_str), Some("close"));
        client.send(&Request::new(Method::Get, "/ok")).unwrap();
        assert_eq!(server.metrics().counter_value("httpd_connections_total"), Some(2));
    }

    #[test]
    fn saturation_returns_503_with_retry_after() {
        let started = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&started);
        let mut router = Router::new();
        router.add(Method::Get, "/slow", move |_, _| {
            flag.store(true, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(400));
            Response::text("done")
        });
        let config =
            ServerConfig { workers: 1, backlog: 1, retry_after_secs: 7, ..ServerConfig::default() };
        let server = Server::build(router).config(config).spawn("127.0.0.1:0").unwrap();
        let addr = server.addr();
        // Occupy the single worker and wait until its handler is running…
        let in_worker =
            std::thread::spawn(move || Client::new(addr).send(&Request::new(Method::Get, "/slow")));
        while !started.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(2));
        }
        // …then park a second connection in the (size-1) backlog.
        let in_backlog =
            std::thread::spawn(move || Client::new(addr).send(&Request::new(Method::Get, "/slow")));
        while server.backlog_depth() == 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Worker busy + backlog full: this one must be rejected quickly.
        let start = Instant::now();
        let resp = Client::new(addr).send(&Request::new(Method::Get, "/slow")).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.headers.get("retry-after").map(String::as_str), Some("7"));
        assert!(start.elapsed() < Duration::from_millis(200), "503 must not wait for a worker");
        for h in [in_worker, in_backlog] {
            let resp = h.join().unwrap().unwrap();
            assert_eq!(resp.status, 200, "queued requests still complete");
        }
        assert_eq!(server.metrics().counter_value("httpd_rejected_total"), Some(1));
    }

    #[test]
    fn graceful_drain_finishes_in_flight_request() {
        let mut router = Router::new();
        router.add(Method::Get, "/slow", |_, _| {
            std::thread::sleep(Duration::from_millis(200));
            Response::text("finished")
        });
        let server = Server::spawn(router).unwrap();
        let addr = server.addr();
        let inflight =
            std::thread::spawn(move || Client::new(addr).send(&Request::new(Method::Get, "/slow")));
        std::thread::sleep(Duration::from_millis(50));
        let start = Instant::now();
        server.shutdown();
        assert!(start.elapsed() >= Duration::from_millis(100), "shutdown waited for the request");
        let resp = inflight.join().unwrap().unwrap();
        assert_eq!(resp.body, b"finished");
        assert_eq!(
            resp.headers.get("connection").map(String::as_str),
            Some("close"),
            "draining forces close"
        );
    }

    #[test]
    fn shutdown_cuts_idle_keepalive_connections_quickly() {
        let server = test_server();
        let client = Client::new(server.addr());
        client.send(&Request::new(Method::Get, "/hello/x")).unwrap();
        assert_eq!(client.pooled_connections(), 1, "idle keep-alive socket held");
        let start = Instant::now();
        server.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "idle connections must not hold up drain"
        );
    }

    #[test]
    fn fault_injected_status_and_drop() {
        let mut router = Router::new();
        router.add(Method::Get, "/ok", |_, _| Response::text("fine"));
        let faults = Arc::new(
            FaultInjector::new()
                .rule(crate::fault::Trigger::Nth(1), Fault::DropConnection)
                .rule(crate::fault::Trigger::Nth(2), Fault::Status(500)),
        );
        let server = Server::spawn_with_faults(router, Arc::clone(&faults)).unwrap();
        let client = Client::new(server.addr()).timeout(Duration::from_secs(2));
        let req = Request::new(Method::Get, "/ok");
        // Request 1: dropped without a response.
        assert!(client.send(&req).is_err());
        // Request 2: injected 500 instead of the handler.
        assert_eq!(client.send(&req).unwrap().status, 500);
        // Request 3: passes through.
        let resp = client.send(&req).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"fine");
        assert_eq!(faults.requests_seen(), 3);
    }

    #[test]
    fn fault_injected_delay_still_answers() {
        let mut router = Router::new();
        router.add(Method::Get, "/ok", |_, _| Response::text("slow"));
        let faults = Arc::new(
            FaultInjector::new()
                .rule(crate::fault::Trigger::Always, Fault::Delay(Duration::from_millis(30))),
        );
        let server = Server::spawn_with_faults(router, faults).unwrap();
        let client = Client::new(server.addr());
        let start = std::time::Instant::now();
        let resp = client.send(&Request::new(Method::Get, "/ok")).unwrap();
        assert_eq!(resp.body, b"slow");
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn close_after_response_fault_exercises_stale_retry() {
        let mut router = Router::new();
        router.add(Method::Get, "/ok", |_, _| Response::text("fine"));
        let faults = Arc::new(
            FaultInjector::new().rule(crate::fault::Trigger::Nth(1), Fault::CloseAfterResponse),
        );
        let server = Server::spawn_with_faults(router, faults).unwrap();
        let client = Client::new(server.addr()).timeout(Duration::from_secs(2));
        // Request 1 succeeds; the response advertises keep-alive but the
        // server closes the socket anyway (mid-keep-alive fault).
        let resp = client.send(&Request::new(Method::Get, "/ok")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(client.pooled_connections(), 1, "client pooled the doomed socket");
        // Request 2 hits the stale socket and must retry transparently.
        let resp = client.send(&Request::new(Method::Get, "/ok")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(client.stale_retries(), 1);
    }

    #[test]
    fn panicking_handler_answers_500_and_worker_survives() {
        let mut router = Router::new();
        router.add(Method::Get, "/boom", |_, _| panic!("handler exploded"));
        router.add(Method::Get, "/ok", |_, _| Response::text("alive"));
        let config = ServerConfig { workers: 1, ..ServerConfig::default() };
        let server = Server::build(router).config(config).spawn("127.0.0.1:0").unwrap();
        let client = Client::new(server.addr()).timeout(Duration::from_secs(2));
        let resp = client.send(&Request::new(Method::Get, "/boom")).unwrap();
        assert_eq!(resp.status, 500);
        // The single worker must still be alive to serve this.
        let resp = client.send(&Request::new(Method::Get, "/ok")).unwrap();
        assert_eq!(resp.body, b"alive");
    }

    #[test]
    fn malformed_request_gets_status_and_close() {
        let server = test_server();
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        raw.write_all(b"POST /echo HTTP/1.1\r\ncontent-length: nope\r\n\r\n").unwrap();
        let mut buf = String::new();
        raw.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        raw.read_to_string(&mut buf).unwrap(); // server closes → EOF ends the read
        assert!(buf.starts_with("HTTP/1.1 400"), "got {buf:?}");
        assert!(buf.contains("connection: close"));
    }

    #[test]
    fn wildcard_bind_still_shuts_down() {
        // A 0.0.0.0 bind used to wedge stop(): the wakeup connection went to
        // the (unconnectable) wildcard address. Must finish promptly now.
        let mut router = Router::new();
        router.add(Method::Get, "/ok", |_, _| Response::text("up"));
        let server = Server::spawn_on("0.0.0.0:0", router).unwrap();
        let port = server.addr().port();
        let client = Client::new(format!("127.0.0.1:{port}").parse().unwrap());
        assert_eq!(client.send(&Request::new(Method::Get, "/ok")).unwrap().status, 200);
        let start = std::time::Instant::now();
        server.shutdown();
        assert!(start.elapsed() < Duration::from_secs(3), "shutdown hung on wildcard bind");
    }

    #[test]
    fn shutdown_stops_accepting() {
        let server = test_server();
        let addr = server.addr();
        server.shutdown();
        // Either the connect fails or the read does; both count as down.
        let client = Client::new(addr).timeout(Duration::from_millis(300));
        assert!(client.send(&Request::new(Method::Get, "/hello/x")).is_err());
    }

    #[test]
    fn rejected_trickle_client_cannot_stall_accepts() {
        let mut router = Router::new();
        router.add(Method::Get, "/ok", |_, _| Response::text("up"));
        let config = ServerConfig { workers: 1, backlog: 1, ..ServerConfig::default() };
        let server = Server::build(router).config(config).spawn("127.0.0.1:0").unwrap();
        let addr = server.addr();
        // Fill the admission window (workers + backlog = 2) with two idle
        // connections so the next arrival is rejected.
        let hold_a = TcpStream::connect(addr).unwrap();
        let _hold_b = TcpStream::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.active_connections() < 2 {
            assert!(Instant::now() < deadline, "held connections never admitted");
            std::thread::sleep(Duration::from_millis(2));
        }
        // A rejected client trickling one byte at a time used to hold the
        // accept path open indefinitely: each byte reset the drain loop's
        // per-read timeout, and the drain ran on the accept thread.
        let trickler = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let start = Instant::now();
            while start.elapsed() < Duration::from_secs(3) {
                if stream.write_all(b"x").is_err() {
                    break; // server cut the drain
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            start.elapsed()
        });
        std::thread::sleep(Duration::from_millis(100));
        // Accepts stay live while the trickler is still writing: free one
        // admission slot and a fresh request must complete promptly.
        drop(hold_a);
        let client = Client::new(addr).timeout(Duration::from_secs(2));
        let deadline = Instant::now() + Duration::from_secs(3);
        let resp = loop {
            let resp = client.send(&Request::new(Method::Get, "/ok")).unwrap();
            if resp.status == 200 || Instant::now() >= deadline {
                break resp;
            }
            std::thread::sleep(Duration::from_millis(20));
        };
        assert_eq!(resp.status, 200, "accept path stalled behind the reject drain");
        // And the drain itself is bounded by a total deadline, not per read.
        let held = trickler.join().unwrap();
        assert!(held < Duration::from_secs(2), "reject drain held open for {held:?}");
    }

    #[test]
    fn queued_request_survives_drain_behind_busy_worker() {
        let started = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&started);
        let mut router = Router::new();
        router.add(Method::Get, "/slow", move |_, _| {
            flag.store(true, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(300));
            Response::text("slow done")
        });
        router.add(Method::Get, "/fast", |_, _| Response::text("fast done"));
        let config = ServerConfig { workers: 1, backlog: 4, ..ServerConfig::default() };
        let server = Server::build(router).config(config).spawn("127.0.0.1:0").unwrap();
        let addr = server.addr();
        let slow =
            std::thread::spawn(move || Client::new(addr).send(&Request::new(Method::Get, "/slow")));
        while !started.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(2));
        }
        // A second request parses and queues behind the busy worker…
        let fast =
            std::thread::spawn(move || Client::new(addr).send(&Request::new(Method::Get, "/fast")));
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.metrics().gauge_value("httpd_dispatch_queue_depth") != Some(1) {
            assert!(Instant::now() < deadline, "second request never queued");
            std::thread::sleep(Duration::from_millis(2));
        }
        // …and the server drains. The old registry raced its idle check
        // against the worker's busy transition and could cut this request;
        // a dispatched connection must never be treated as idle.
        server.shutdown();
        assert_eq!(slow.join().unwrap().unwrap().body, b"slow done");
        let resp = fast.join().unwrap().unwrap();
        assert_eq!(resp.status, 200, "queued request was cut during drain");
        assert_eq!(resp.body, b"fast done");
    }

    #[test]
    fn shutdown_with_wedged_workers_bounded_by_shared_deadline() {
        let mut router = Router::new();
        router.add(Method::Get, "/wedge", |_, _| {
            std::thread::sleep(Duration::from_secs(4));
            Response::text("eventually")
        });
        let config = ServerConfig {
            workers: 4,
            drain_timeout: Duration::from_millis(100),
            ..ServerConfig::default()
        };
        let server = Server::build(router).config(config).spawn("127.0.0.1:0").unwrap();
        let addr = server.addr();
        let clients: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let client = Client::new(addr).timeout(Duration::from_secs(1));
                    let _ = client.send(&Request::new(Method::Get, "/wedge"));
                })
            })
            .collect();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.metrics().gauge_value("httpd_workers_busy") != Some(4) {
            assert!(Instant::now() < deadline, "workers never picked up the wedged requests");
            std::thread::sleep(Duration::from_millis(2));
        }
        let start = Instant::now();
        server.shutdown();
        // Joining serially with 1 s per worker took ~4 s here; the shared
        // deadline bounds the whole pool at ~1 s regardless of pool size.
        assert!(
            start.elapsed() < Duration::from_millis(2_500),
            "shutdown took {:?} with wedged workers",
            start.elapsed()
        );
        for c in clients {
            let _ = c.join();
        }
    }

    #[test]
    fn partial_first_request_times_out_with_408() {
        let mut router = Router::new();
        router.add(Method::Get, "/ok", |_, _| Response::text("up"));
        let config =
            ServerConfig { read_timeout: Duration::from_millis(80), ..ServerConfig::default() };
        let server = Server::build(router).config(config).spawn("127.0.0.1:0").unwrap();
        // Half a request, then silence: the read deadline must answer 408
        // and close instead of cutting the socket silently.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"GET /ok HTTP/1.1\r\nx-part").unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 408"), "got {out:?}");
        assert!(out.contains("connection: close"), "got {out:?}");

        // With no bytes received the close stays silent: pooled keep-alive
        // clients rely on a clean EOF to detect stale sockets.
        let mut idle = TcpStream::connect(server.addr()).unwrap();
        idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut out = String::new();
        idle.read_to_string(&mut out).unwrap();
        assert!(out.is_empty(), "idle close must be silent, got {out:?}");
    }

    #[test]
    fn pipelined_requests_are_served_in_order() {
        let server = test_server();
        // Two requests in one write: the reactor must answer both on the
        // same socket, in order, without waiting for a new readiness event.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"GET /hello/one HTTP/1.1\r\n\r\nGET /hello/two HTTP/1.1\r\nconnection: close\r\n\r\n")
            .unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        let first = out.find("hi one").expect("first response missing");
        let second = out.find("hi two").expect("second response missing");
        assert!(first < second, "responses out of order: {out:?}");
        assert_eq!(server.metrics().counter_value("httpd_requests_total"), Some(2));
        assert_eq!(server.metrics().counter_value("httpd_connections_total"), Some(1));
    }
}

//! Property tests: HTTP messages roundtrip through serialization for
//! arbitrary paths, query maps, and binary bodies.

use std::collections::HashMap;
use std::io::Cursor;

use confbench_httpd::{Method, Request, Response};
use proptest::prelude::*;

fn arb_segment() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_.-]{1,12}"
}

fn arb_query() -> impl Strategy<Value = HashMap<String, String>> {
    proptest::collection::hash_map("[a-zA-Z0-9 /%+&=_-]{1,16}", "[a-zA-Z0-9 /%+&=_-]{0,24}", 0..5)
}

proptest! {
    #[test]
    fn request_roundtrips(segments in proptest::collection::vec(arb_segment(), 1..5),
                          query in arb_query(),
                          body in proptest::collection::vec(any::<u8>(), 0..2048),
                          post in any::<bool>()) {
        let path = format!("/{}", segments.join("/"));
        let mut req = Request::new(if post { Method::Post } else { Method::Put }, &path);
        req.query = query.clone();
        req.body = body.clone();
        let mut wire = Vec::new();
        req.write_to(&mut wire).unwrap();
        let parsed = Request::read_from(&mut Cursor::new(wire)).unwrap();
        prop_assert_eq!(parsed.path, path);
        prop_assert_eq!(parsed.query, query);
        prop_assert_eq!(parsed.body, body);
    }

    #[test]
    fn response_roundtrips(status in prop::sample::select(vec![200u16, 201, 400, 404, 405, 500, 503]),
                           body in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let mut resp = Response::text("");
        resp.status = status;
        resp.body = body.clone();
        let mut wire = Vec::new();
        resp.write_to(&mut wire).unwrap();
        let parsed = Response::read_from(&mut Cursor::new(wire)).unwrap();
        prop_assert_eq!(parsed.status, status);
        prop_assert_eq!(parsed.body, body);
    }

    /// Arbitrary garbage never panics the parser — it errors.
    #[test]
    fn parser_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Request::read_from(&mut Cursor::new(garbage.clone()));
        let _ = Response::read_from(&mut Cursor::new(garbage));
    }

    /// JSON bodies survive the helper path.
    #[test]
    fn json_roundtrips(x in any::<i64>(), s in "[a-zA-Z0-9 ]{0,32}") {
        let value = serde_json::json!({"x": x, "s": s});
        let req = Request::new(Method::Post, "/j").json(&value);
        let mut wire = Vec::new();
        req.write_to(&mut wire).unwrap();
        let parsed = Request::read_from(&mut Cursor::new(wire)).unwrap();
        let back: serde_json::Value = parsed.body_json().unwrap();
        prop_assert_eq!(back, value);
    }
}

//! Property tests: HTTP messages roundtrip through serialization for
//! arbitrary paths, query maps, and binary bodies.
//!
//! Deterministic seeded sweeps: each property draws its inputs from a
//! `SplitMix64` stream, so every CI run exercises the identical case set.

use std::collections::HashMap;
use std::io::Cursor;

use confbench_crypto::SplitMix64;
use confbench_httpd::{Method, Request, Response};

const CASES: u64 = 96;

fn string_from(rng: &mut SplitMix64, alphabet: &[u8], min_len: u64, max_len: u64) -> String {
    let n = min_len + rng.next_below(max_len - min_len + 1);
    (0..n).map(|_| alphabet[rng.next_below(alphabet.len() as u64) as usize] as char).collect()
}

fn segment(rng: &mut SplitMix64) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-";
    string_from(rng, ALPHABET, 1, 12)
}

fn query(rng: &mut SplitMix64) -> HashMap<String, String> {
    // Keys and values deliberately include characters that need percent
    // escaping on the wire.
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789 /%+&=_-";
    let n = rng.next_below(5);
    (0..n).map(|_| (string_from(rng, ALPHABET, 1, 16), string_from(rng, ALPHABET, 0, 24))).collect()
}

fn body(rng: &mut SplitMix64, max_len: u64) -> Vec<u8> {
    let mut buf = vec![0u8; rng.next_below(max_len + 1) as usize];
    rng.fill_bytes(&mut buf);
    buf
}

#[test]
fn request_roundtrips() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x117D_0001 ^ case);
        let segments: Vec<String> = (0..1 + rng.next_below(4)).map(|_| segment(&mut rng)).collect();
        let path = format!("/{}", segments.join("/"));
        let query = query(&mut rng);
        let body = body(&mut rng, 2047);
        let post = rng.next_u64() & 1 == 0;

        let mut req = Request::new(if post { Method::Post } else { Method::Put }, &path);
        req.query = query.clone();
        req.body = body.clone();
        let mut wire = Vec::new();
        req.write_to(&mut wire).unwrap();
        let parsed = Request::read_from(&mut Cursor::new(wire)).unwrap();
        assert_eq!(parsed.path, path, "case {case}");
        assert_eq!(parsed.query, query, "case {case}");
        assert_eq!(parsed.body, body, "case {case}");
    }
}

#[test]
fn response_roundtrips() {
    const STATUSES: [u16; 7] = [200, 201, 400, 404, 405, 500, 503];
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x117D_0002 ^ case);
        let status = STATUSES[rng.next_below(STATUSES.len() as u64) as usize];
        let body = body(&mut rng, 4095);

        let mut resp = Response::text("");
        resp.status = status;
        resp.body = body.clone();
        let mut wire = Vec::new();
        resp.write_to(&mut wire).unwrap();
        let parsed = Response::read_from(&mut Cursor::new(wire)).unwrap();
        assert_eq!(parsed.status, status, "case {case}");
        assert_eq!(parsed.body, body, "case {case}");
    }
}

/// Arbitrary garbage never panics the parser — it errors.
#[test]
fn parser_never_panics() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x117D_0003 ^ case);
        let garbage = body(&mut rng, 511);
        let _ = Request::read_from(&mut Cursor::new(garbage.clone()));
        let _ = Response::read_from(&mut Cursor::new(garbage));
    }
    // A few structured near-misses that byte noise rarely produces.
    for s in
        ["GET", "GET /\r\n", "HTTP/1.1 \r\n\r\n", "POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n"]
    {
        let _ = Request::read_from(&mut Cursor::new(s.as_bytes().to_vec()));
        let _ = Response::read_from(&mut Cursor::new(s.as_bytes().to_vec()));
    }
}

/// JSON bodies survive the helper path.
#[test]
fn json_roundtrips() {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x117D_0004 ^ case);
        let x = rng.next_u64() as i64;
        let s = string_from(&mut rng, ALPHABET, 0, 32);
        let value = serde_json::json!({"x": x, "s": s});
        let req = Request::new(Method::Post, "/j").json(&value);
        let mut wire = Vec::new();
        req.write_to(&mut wire).unwrap();
        let parsed = Request::read_from(&mut Cursor::new(wire)).unwrap();
        let back: serde_json::Value = parsed.body_json().unwrap();
        assert_eq!(back, value, "case {case}");
    }
}

//! Performance-monitoring integration (the simulated `perf stat`).
//!
//! ConfBench wraps every dispatched workload in `perf stat` and piggybacks
//! the collected counters onto the result returned to the user (paper
//! §III-B). Inside CCA realms hardware counters are unavailable, so the tool
//! falls back to a custom monitoring script; this crate models both paths
//! and the extension point for user-provided collectors.
//!
//! # Example
//!
//! ```
//! use confbench_perfmon::PerfStat;
//! use confbench_types::{OpTrace, TeePlatform, VmTarget};
//! use confbench_vmm::TeeVmBuilder;
//!
//! let mut vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).build();
//! let mut trace = OpTrace::new();
//! trace.cpu(10_000);
//!
//! let (report, sample) = PerfStat::for_vm(&vm).measure(&mut vm, &trace);
//! assert_eq!(sample.collector, "perf");
//! assert!(report.perf.instructions >= 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use confbench_types::{OpTrace, PerfReport};
use confbench_vmm::{ExecutionReport, Vm};
use serde::{Deserialize, Serialize};

/// One collected perf sample with its provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfSample {
    /// Name of the collector that produced the numbers (`"perf"` for the
    /// hardware-counter path, `"script:<name>"` for fallbacks).
    pub collector: String,
    /// The counter values.
    pub report: PerfReport,
}

impl fmt::Display for PerfSample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} instructions, {} cycles, {} cache-misses ({:.1}%), {} vm-exits",
            self.collector,
            self.report.instructions,
            self.report.cycles,
            self.report.cache_misses,
            self.report.miss_ratio() * 100.0,
            self.report.vm_exits,
        )
    }
}

/// How counters are gathered for a given VM.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Collector {
    /// `perf stat` over hardware counters (TDX, SEV-SNP, and their normal
    /// baselines).
    HardwarePerf,
    /// A named custom script (the CCA path; also the user extension point).
    Script(String),
}

/// A perf-stat-style collector bound to a collection strategy.
///
/// Construct with [`PerfStat::for_vm`] (auto-selects the right path for the
/// platform, as the tool does) or [`PerfStat::with_script`] to register a
/// custom monitoring script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfStat {
    collector: Collector,
}

impl PerfStat {
    /// Chooses the collection strategy the tool would use for `vm`: hardware
    /// counters where the platform exposes them, otherwise the bundled
    /// realm-side script (named `cca-cycles`, mirroring the script we wrote
    /// for CCA in the paper).
    pub fn for_vm(vm: &Vm) -> Self {
        if vm.target().platform.has_perf_counters() {
            PerfStat { collector: Collector::HardwarePerf }
        } else {
            PerfStat { collector: Collector::Script("cca-cycles".to_owned()) }
        }
    }

    /// Uses a custom monitoring script named `name` regardless of platform
    /// (the §III-B extension point).
    pub fn with_script(name: impl Into<String>) -> Self {
        PerfStat { collector: Collector::Script(name.into()) }
    }

    /// Whether this collector reads hardware counters.
    pub fn is_hardware(&self) -> bool {
        self.collector == Collector::HardwarePerf
    }

    /// Executes `trace` on `vm` under measurement, returning the execution
    /// report plus the collected sample.
    ///
    /// The script path deliberately degrades the data: cache counters are
    /// unavailable without PMU access, exactly as inside a CCA realm, so
    /// they are reported as zero and `from_hw_counters` is false.
    pub fn measure(&self, vm: &mut Vm, trace: &OpTrace) -> (ExecutionReport, PerfSample) {
        let report = vm.execute(trace);
        let sample = match &self.collector {
            Collector::HardwarePerf => PerfSample {
                collector: "perf".to_owned(),
                report: PerfReport { from_hw_counters: true, ..report.perf },
            },
            Collector::Script(name) => PerfSample {
                collector: format!("script:{name}"),
                report: PerfReport {
                    // A wallclock-only script sees time and little else.
                    instructions: 0,
                    cache_references: 0,
                    cache_misses: 0,
                    from_hw_counters: false,
                    ..report.perf
                },
            },
        };
        (report, sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_types::{TeePlatform, VmTarget};
    use confbench_vmm::TeeVmBuilder;

    fn trace() -> OpTrace {
        let mut t = OpTrace::new();
        t.cpu(5_000);
        t.mem_write(1 << 14);
        t
    }

    #[test]
    fn hardware_path_for_tdx_and_snp() {
        for p in [TeePlatform::Tdx, TeePlatform::SevSnp] {
            let vm = TeeVmBuilder::new(VmTarget::secure(p)).build();
            assert!(PerfStat::for_vm(&vm).is_hardware(), "{p} should use perf");
        }
    }

    #[test]
    fn script_fallback_for_cca() {
        let vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Cca)).build();
        let stat = PerfStat::for_vm(&vm);
        assert!(!stat.is_hardware());
    }

    #[test]
    fn hardware_sample_carries_cache_counters() {
        let mut vm = TeeVmBuilder::new(VmTarget::normal(TeePlatform::Tdx)).build();
        let (_, sample) = PerfStat::for_vm(&vm).measure(&mut vm, &trace());
        assert_eq!(sample.collector, "perf");
        assert!(sample.report.cache_references > 0);
        assert!(sample.report.from_hw_counters);
    }

    #[test]
    fn script_sample_degrades_to_wallclock() {
        let mut vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Cca)).build();
        let (report, sample) = PerfStat::for_vm(&vm).measure(&mut vm, &trace());
        assert_eq!(sample.collector, "script:cca-cycles");
        assert_eq!(sample.report.instructions, 0);
        assert_eq!(sample.report.cache_references, 0);
        assert!(!sample.report.from_hw_counters);
        // Time is still measured.
        assert_eq!(sample.report.cycles, report.cycles.get());
        assert!(sample.report.cycles > 0);
    }

    #[test]
    fn custom_script_overrides_platform_choice() {
        let mut vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).build();
        let (_, sample) = PerfStat::with_script("my-probe").measure(&mut vm, &trace());
        assert_eq!(sample.collector, "script:my-probe");
        assert!(!sample.report.from_hw_counters);
    }

    #[test]
    fn sample_display_is_informative() {
        let mut vm = TeeVmBuilder::new(VmTarget::normal(TeePlatform::SevSnp)).build();
        let (_, sample) = PerfStat::for_vm(&vm).measure(&mut vm, &trace());
        let s = sample.to_string();
        assert!(s.contains("instructions"));
        assert!(s.contains("vm-exits"));
    }

    #[test]
    fn sample_serializes() {
        let mut vm = TeeVmBuilder::new(VmTarget::normal(TeePlatform::Tdx)).build();
        let (_, sample) = PerfStat::for_vm(&vm).measure(&mut vm, &trace());
        let json = serde_json::to_string(&sample).unwrap();
        let back: PerfSample = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sample);
    }
}

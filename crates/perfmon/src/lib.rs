//! Performance-monitoring integration (the simulated `perf stat`).
//!
//! ConfBench wraps every dispatched workload in `perf stat` and piggybacks
//! the collected counters onto the result returned to the user (paper
//! §III-B). Inside CCA realms hardware counters are unavailable, so the tool
//! falls back to a custom monitoring script; this crate models both paths
//! behind the public [`Collector`] trait — the §III-B extension point now
//! accepts real code ([`PerfStat::with_collector`]), not only a script name
//! string.
//!
//! # Example
//!
//! ```
//! use confbench_perfmon::PerfStat;
//! use confbench_types::{OpTrace, TeePlatform, VmTarget};
//! use confbench_vmm::TeeVmBuilder;
//!
//! let mut vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).build();
//! let mut trace = OpTrace::new();
//! trace.cpu(10_000);
//!
//! let (report, sample) = PerfStat::for_vm(&vm).measure(&mut vm, &trace);
//! assert_eq!(sample.collector, "perf");
//! assert!(report.perf.instructions >= 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::Arc;

use confbench_obs::SpanRecorder;
use confbench_types::{OpTrace, PerfReport, TraceSpan};
use confbench_vmm::{ExecutionReport, Vm};
use serde::{Deserialize, Serialize};

/// One collected perf sample with its provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfSample {
    /// Name of the collector that produced the numbers (`"perf"` for the
    /// hardware-counter path, `"script:<name>"` for fallbacks).
    pub collector: String,
    /// The counter values.
    pub report: PerfReport,
    /// The span tree recorded around the measured run, when measurement was
    /// requested with [`PerfStat::measure_spanned`]. Absent (and absent from
    /// the wire format) otherwise.
    #[serde(default)]
    pub trace: Option<TraceSpan>,
}

impl fmt::Display for PerfSample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} instructions, {} cycles, {} cache-misses ({:.1}%), {} vm-exits",
            self.collector,
            self.report.instructions,
            self.report.cycles,
            self.report.cache_misses,
            self.report.miss_ratio() * 100.0,
            self.report.vm_exits,
        )
    }
}

/// How perf counters are gathered for a measured run.
///
/// This is the paper's §III-B extension point: implement it to model any
/// monitoring tool and pass it to [`PerfStat::with_collector`]. The two
/// bundled implementations are [`HardwarePerf`] (the `perf stat` path) and
/// [`ScriptCollector`] (the realm-side fallback script).
pub trait Collector: Send + Sync {
    /// Provenance name recorded on samples (e.g. `"perf"`,
    /// `"script:cca-cycles"`).
    fn name(&self) -> String;

    /// Whether this collector reads hardware PMU counters.
    fn is_hardware(&self) -> bool {
        false
    }

    /// Shapes the raw execution counters into what this collector can
    /// actually observe (a wallclock-only script, for instance, cannot see
    /// cache counters).
    fn collect(&self, report: &ExecutionReport) -> PerfReport;
}

/// `perf stat` over hardware counters (TDX, SEV-SNP, and their normal
/// baselines).
#[derive(Debug, Clone, Copy, Default)]
pub struct HardwarePerf;

impl Collector for HardwarePerf {
    fn name(&self) -> String {
        "perf".to_owned()
    }

    fn is_hardware(&self) -> bool {
        true
    }

    fn collect(&self, report: &ExecutionReport) -> PerfReport {
        PerfReport { from_hw_counters: true, ..report.perf }
    }
}

/// A named custom monitoring script (the CCA path).
///
/// The script path deliberately degrades the data: cache counters are
/// unavailable without PMU access, exactly as inside a CCA realm, so they
/// are reported as zero and `from_hw_counters` is false.
#[derive(Debug, Clone)]
pub struct ScriptCollector {
    name: String,
}

impl ScriptCollector {
    /// A collector running the script named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ScriptCollector { name: name.into() }
    }
}

impl Collector for ScriptCollector {
    fn name(&self) -> String {
        format!("script:{}", self.name)
    }

    fn collect(&self, report: &ExecutionReport) -> PerfReport {
        PerfReport {
            // A wallclock-only script sees time and little else.
            instructions: 0,
            cache_references: 0,
            cache_misses: 0,
            from_hw_counters: false,
            ..report.perf
        }
    }
}

/// A perf-stat-style measurement harness bound to a [`Collector`].
///
/// Construct with [`PerfStat::for_vm`] (auto-selects the right path for the
/// platform, as the tool does), [`PerfStat::with_script`] for a named
/// fallback script, or [`PerfStat::with_collector`] for any user
/// implementation of the trait.
#[derive(Clone)]
pub struct PerfStat {
    collector: Arc<dyn Collector>,
}

impl PerfStat {
    /// Chooses the collection strategy the tool would use for `vm`: hardware
    /// counters where the platform exposes them, otherwise the bundled
    /// realm-side script (named `cca-cycles`, mirroring the script we wrote
    /// for CCA in the paper).
    pub fn for_vm(vm: &Vm) -> Self {
        if vm.target().platform.has_perf_counters() {
            Self::with_collector(Arc::new(HardwarePerf))
        } else {
            Self::with_collector(Arc::new(ScriptCollector::new("cca-cycles")))
        }
    }

    /// Uses a custom monitoring script named `name` regardless of platform.
    /// Thin shim over [`ScriptCollector`], kept for callers predating the
    /// [`Collector`] trait.
    pub fn with_script(name: impl Into<String>) -> Self {
        Self::with_collector(Arc::new(ScriptCollector::new(name)))
    }

    /// Uses an arbitrary [`Collector`] implementation (the §III-B extension
    /// point).
    pub fn with_collector(collector: Arc<dyn Collector>) -> Self {
        PerfStat { collector }
    }

    /// Whether this harness reads hardware counters.
    pub fn is_hardware(&self) -> bool {
        self.collector.is_hardware()
    }

    /// The provenance name samples will carry.
    pub fn collector_name(&self) -> String {
        self.collector.name()
    }

    /// Executes `trace` on `vm` under measurement, returning the execution
    /// report plus the collected sample (with no trace attached).
    pub fn measure(&self, vm: &mut Vm, trace: &OpTrace) -> (ExecutionReport, PerfSample) {
        let report = vm.execute(trace);
        (report, self.sample_from(&report, None))
    }

    /// Like [`PerfStat::measure`], but records the run under a
    /// `perf.measure` root span (timestamped on `recorder`'s clock, with the
    /// VM's per-class cost-event children) and attaches the finished tree to
    /// the sample.
    pub fn measure_spanned(
        &self,
        vm: &mut Vm,
        trace: &OpTrace,
        recorder: &SpanRecorder,
    ) -> (ExecutionReport, PerfSample) {
        self.try_measure_spanned(vm, trace, recorder)
            .unwrap_or_else(|f| panic!("unsupervised TEE fault under measurement: {f}"))
    }

    /// Fallible variant of [`PerfStat::measure_spanned`] for VMs running
    /// under a chaos plan: an injected TEE fault aborts the measured run
    /// (no sample, the unfinished span is dropped) and surfaces as `Err`
    /// for the supervisor to retry or rebuild.
    ///
    /// # Errors
    ///
    /// The injected [`confbench_vmm::TeeFault`].
    pub fn try_measure_spanned(
        &self,
        vm: &mut Vm,
        trace: &OpTrace,
        recorder: &SpanRecorder,
    ) -> Result<(ExecutionReport, PerfSample), confbench_vmm::TeeFault> {
        let mut root = recorder.root("perf.measure");
        let report = vm.try_execute_spanned(trace, &mut root)?;
        root.set_attr("vm_exits", report.perf.vm_exits);
        root.set_attr("bounce_bytes", report.perf.bounce_bytes);
        Ok((report, self.sample_from(&report, Some(root.finish()))))
    }

    fn sample_from(&self, report: &ExecutionReport, trace: Option<TraceSpan>) -> PerfSample {
        PerfSample {
            collector: self.collector.name(),
            report: self.collector.collect(report),
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confbench_types::{ManualClock, TeePlatform, VmTarget};
    use confbench_vmm::TeeVmBuilder;

    fn trace() -> OpTrace {
        let mut t = OpTrace::new();
        t.cpu(5_000);
        t.mem_write(1 << 14);
        t
    }

    #[test]
    fn hardware_path_for_tdx_and_snp() {
        for p in [TeePlatform::Tdx, TeePlatform::SevSnp] {
            let vm = TeeVmBuilder::new(VmTarget::secure(p)).build();
            assert!(PerfStat::for_vm(&vm).is_hardware(), "{p} should use perf");
        }
    }

    #[test]
    fn script_fallback_for_cca() {
        let vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Cca)).build();
        let stat = PerfStat::for_vm(&vm);
        assert!(!stat.is_hardware());
        assert_eq!(stat.collector_name(), "script:cca-cycles");
    }

    #[test]
    fn hardware_sample_carries_cache_counters() {
        let mut vm = TeeVmBuilder::new(VmTarget::normal(TeePlatform::Tdx)).build();
        let (_, sample) = PerfStat::for_vm(&vm).measure(&mut vm, &trace());
        assert_eq!(sample.collector, "perf");
        assert!(sample.report.cache_references > 0);
        assert!(sample.report.from_hw_counters);
        assert_eq!(sample.trace, None, "plain measure attaches no trace");
    }

    #[test]
    fn script_sample_degrades_to_wallclock() {
        let mut vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Cca)).build();
        let (report, sample) = PerfStat::for_vm(&vm).measure(&mut vm, &trace());
        assert_eq!(sample.collector, "script:cca-cycles");
        assert_eq!(sample.report.instructions, 0);
        assert_eq!(sample.report.cache_references, 0);
        assert!(!sample.report.from_hw_counters);
        // Time is still measured.
        assert_eq!(sample.report.cycles, report.cycles.get());
        assert!(sample.report.cycles > 0);
    }

    #[test]
    fn custom_script_overrides_platform_choice() {
        let mut vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).build();
        let (_, sample) = PerfStat::with_script("my-probe").measure(&mut vm, &trace());
        assert_eq!(sample.collector, "script:my-probe");
        assert!(!sample.report.from_hw_counters);
    }

    /// A user-written collector: only exit counts survive.
    struct ExitsOnly;

    impl Collector for ExitsOnly {
        fn name(&self) -> String {
            "exits-only".to_owned()
        }

        fn collect(&self, report: &ExecutionReport) -> PerfReport {
            PerfReport {
                vm_exits: report.perf.vm_exits,
                from_hw_counters: false,
                ..PerfReport::default()
            }
        }
    }

    #[test]
    fn user_collector_implementations_plug_in() {
        let mut vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).build();
        let mut t = trace();
        t.io_write(8192);
        let (report, sample) = PerfStat::with_collector(Arc::new(ExitsOnly)).measure(&mut vm, &t);
        assert_eq!(sample.collector, "exits-only");
        assert_eq!(sample.report.vm_exits, report.perf.vm_exits);
        assert!(sample.report.vm_exits > 0);
        assert_eq!(sample.report.instructions, 0);
    }

    #[test]
    fn spanned_measure_attaches_the_span_tree() {
        let clock = Arc::new(ManualClock::new());
        let recorder = SpanRecorder::new(clock.clone());
        let mut vm = TeeVmBuilder::new(VmTarget::secure(TeePlatform::Tdx)).build();
        let mut t = trace();
        t.io_write(64 * 1024);
        clock.advance(3);
        let (report, sample) = PerfStat::for_vm(&vm).measure_spanned(&mut vm, &t, &recorder);
        let tree = sample.trace.expect("trace attached");
        assert_eq!(tree.name, "perf.measure");
        assert_eq!(tree.start_ms, 3);
        assert_eq!(tree.attr("vm_exits"), Some(report.perf.vm_exits));
        let copy = tree.find("swiotlb.copy").expect("swiotlb child span");
        assert_eq!(copy.attr("bytes"), Some(report.perf.bounce_bytes));
        assert!(tree.find("tdx.seamcall").is_some());
    }

    #[test]
    fn sample_display_is_informative() {
        let mut vm = TeeVmBuilder::new(VmTarget::normal(TeePlatform::SevSnp)).build();
        let (_, sample) = PerfStat::for_vm(&vm).measure(&mut vm, &trace());
        let s = sample.to_string();
        assert!(s.contains("instructions"));
        assert!(s.contains("vm-exits"));
    }

    #[test]
    fn sample_serializes() {
        let mut vm = TeeVmBuilder::new(VmTarget::normal(TeePlatform::Tdx)).build();
        let (_, sample) = PerfStat::for_vm(&vm).measure(&mut vm, &trace());
        let json = serde_json::to_string(&sample).unwrap();
        let back: PerfSample = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sample);
    }
}

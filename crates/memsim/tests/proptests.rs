//! Property-based invariants for the memory substrates.

use confbench_memsim::{
    GranuleState, GranuleTable, PageNum, Rmp, RmpOwner, SecureEpt, StageTwoTable,
    TwoStageTranslator, World, PAGE_SIZE,
};
use proptest::prelude::*;

/// Arbitrary sequence of RMP commands over a small table.
#[derive(Debug, Clone)]
enum RmpCmd {
    Assign { page: u64, asid: u32 },
    Validate { page: u64, asid: u32 },
    Reclaim { page: u64 },
}

fn rmp_cmd() -> impl Strategy<Value = RmpCmd> {
    prop_oneof![
        (0u64..16, 1u32..4).prop_map(|(page, asid)| RmpCmd::Assign { page, asid }),
        (0u64..16, 1u32..4).prop_map(|(page, asid)| RmpCmd::Validate { page, asid }),
        (0u64..16).prop_map(|page| RmpCmd::Reclaim { page }),
    ]
}

proptest! {
    /// No interleaving of assign/validate/reclaim can make one page owned by
    /// two guests, or validated while hypervisor-owned.
    #[test]
    fn rmp_single_owner_invariant(cmds in proptest::collection::vec(rmp_cmd(), 1..64)) {
        let mut rmp = Rmp::new(16);
        for cmd in cmds {
            match cmd {
                RmpCmd::Assign { page, asid } => { let _ = rmp.assign(PageNum(page), asid); }
                RmpCmd::Validate { page, asid } => { let _ = rmp.pvalidate(PageNum(page), asid); }
                RmpCmd::Reclaim { page } => { let _ = rmp.reclaim(PageNum(page)); }
            }
        }
        // Invariant: hypervisor-owned pages are never validated, and the
        // per-ASID ownership counts sum to the number of guest-owned pages.
        let mut guest_owned = 0u64;
        for p in 0..16 {
            let e = rmp.entry(PageNum(p)).unwrap();
            match e.owner {
                RmpOwner::Hypervisor => prop_assert!(!e.validated),
                RmpOwner::Guest { .. } => guest_owned += 1,
            }
        }
        let sum: u64 = (1..4).map(|a| rmp.pages_owned_by(a)).sum();
        prop_assert_eq!(sum, guest_owned);
    }

    /// A validated page is accessible by its owner and nobody else.
    #[test]
    fn rmp_access_iff_owner_and_validated(page in 0u64..8, owner in 1u32..4, other in 1u32..4) {
        prop_assume!(owner != other);
        let mut rmp = Rmp::new(8);
        rmp.assign(PageNum(page), owner).unwrap();
        rmp.pvalidate(PageNum(page), owner).unwrap();
        prop_assert!(rmp.check_guest_access(PageNum(page), owner).is_ok());
        prop_assert!(rmp.check_guest_access(PageNum(page), other).is_err());
        prop_assert!(rmp.check_host_write(PageNum(page)).is_err());
    }

    /// SEPT: accept exactly once; accepted pages resolve to the HPA given at
    /// aug time.
    #[test]
    fn sept_accept_once(gpas in proptest::collection::btree_set(0u64..64, 1..16)) {
        let mut sept = SecureEpt::new();
        for (i, gpa) in gpas.iter().enumerate() {
            sept.aug(PageNum(*gpa), PageNum(1000 + i as u64)).unwrap();
        }
        for gpa in &gpas {
            prop_assert!(sept.check_access(PageNum(*gpa)).is_err());
            sept.accept(PageNum(*gpa)).unwrap();
            prop_assert!(sept.accept(PageNum(*gpa)).is_err());
        }
        for (i, gpa) in gpas.iter().enumerate() {
            prop_assert_eq!(sept.check_access(PageNum(*gpa)).unwrap(), PageNum(1000 + i as u64));
        }
        prop_assert_eq!(sept.accepts(), gpas.len() as u64);
    }

    /// GPT: world transitions preserve "assigned granules are in the realm
    /// world" and realm accounting matches assignments.
    #[test]
    fn gpt_world_state_consistency(ops in proptest::collection::vec((0u64..8, 1u32..3, 0u8..4), 1..48)) {
        let mut gpt = GranuleTable::new(8);
        for (g, rd, op) in ops {
            let g = PageNum(g);
            match op {
                0 => { let _ = gpt.delegate(g); }
                1 => { let _ = gpt.assign_to_realm(g, rd); }
                2 => { let _ = gpt.release_from_realm(g, rd); }
                _ => { let _ = gpt.undelegate(g); }
            }
        }
        let mut assigned = 0u64;
        for g in 0..8 {
            let g = PageNum(g);
            let world = gpt.world_of(g).unwrap();
            match gpt.state_of(g).unwrap() {
                GranuleState::Assigned { .. } | GranuleState::Delegated => {
                    prop_assert_eq!(world, World::Realm);
                    if matches!(gpt.state_of(g).unwrap(), GranuleState::Assigned { .. }) {
                        assigned += 1;
                    }
                }
                GranuleState::Undelegated => prop_assert_eq!(world, World::NonSecure),
            }
        }
        let sum: u64 = (1..3).map(|rd| gpt.granules_of_realm(rd)).sum();
        prop_assert_eq!(sum, assigned);
    }

    /// Two-stage translation round-trips: for any mapped VA, the PA offset
    /// within the page equals the VA offset (stage 1 is offset-preserving at
    /// page granularity here).
    #[test]
    fn translation_preserves_offsets(page in 0u64..4, offset in 0u64..PAGE_SIZE) {
        let mut t = TwoStageTranslator::new();
        t.map_segment(0, 0x100 * PAGE_SIZE, 4 * PAGE_SIZE);
        for i in 0..4 {
            t.stage2_mut().map(PageNum(0x100 + i), PageNum(0x200 + i));
        }
        let va = page * PAGE_SIZE + offset;
        let pa = t.translate(va).unwrap();
        prop_assert_eq!(pa % PAGE_SIZE, offset);
        prop_assert_eq!(pa / PAGE_SIZE, 0x200 + page);
    }

    /// Stage-2 map/unmap behaves like a map.
    #[test]
    fn stage2_map_semantics(pairs in proptest::collection::vec((0u64..32, 0u64..1000), 1..32)) {
        let mut s2 = StageTwoTable::new();
        let mut model = std::collections::HashMap::new();
        for (ipa, pa) in pairs {
            let old = s2.map(PageNum(ipa), PageNum(pa));
            let model_old = model.insert(ipa, pa);
            prop_assert_eq!(old.map(|p| p.0), model_old);
        }
        for (ipa, pa) in &model {
            prop_assert_eq!(s2.walk(PageNum(*ipa)).unwrap(), PageNum(*pa));
        }
        prop_assert_eq!(s2.len(), model.len());
        prop_assert_eq!(s2.faults(), 0);
    }
}

//! Property-based invariants for the memory substrates.
//!
//! Deterministic seeded sweeps: each property draws its inputs from a
//! `SplitMix64` stream, so every CI run exercises the identical case set.

use confbench_crypto::SplitMix64;
use confbench_memsim::{
    GranuleState, GranuleTable, PageNum, Rmp, RmpOwner, SecureEpt, StageTwoTable,
    TwoStageTranslator, World, PAGE_SIZE,
};

const CASES: u64 = 96;

/// Arbitrary sequence of RMP commands over a small table.
#[derive(Debug, Clone)]
enum RmpCmd {
    Assign { page: u64, asid: u32 },
    Validate { page: u64, asid: u32 },
    Reclaim { page: u64 },
}

fn rmp_cmd(rng: &mut SplitMix64) -> RmpCmd {
    let page = rng.next_below(16);
    let asid = 1 + rng.next_below(3) as u32;
    match rng.next_below(3) {
        0 => RmpCmd::Assign { page, asid },
        1 => RmpCmd::Validate { page, asid },
        _ => RmpCmd::Reclaim { page },
    }
}

/// No interleaving of assign/validate/reclaim can make one page owned by
/// two guests, or validated while hypervisor-owned.
#[test]
fn rmp_single_owner_invariant() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x3E3_0001 ^ case);
        let mut rmp = Rmp::new(16);
        for _ in 0..1 + rng.next_below(63) {
            match rmp_cmd(&mut rng) {
                RmpCmd::Assign { page, asid } => {
                    let _ = rmp.assign(PageNum(page), asid);
                }
                RmpCmd::Validate { page, asid } => {
                    let _ = rmp.pvalidate(PageNum(page), asid);
                }
                RmpCmd::Reclaim { page } => {
                    let _ = rmp.reclaim(PageNum(page));
                }
            }
        }
        // Invariant: hypervisor-owned pages are never validated, and the
        // per-ASID ownership counts sum to the number of guest-owned pages.
        let mut guest_owned = 0u64;
        for p in 0..16 {
            let e = rmp.entry(PageNum(p)).unwrap();
            match e.owner {
                RmpOwner::Hypervisor => assert!(!e.validated, "case {case}: page {p}"),
                RmpOwner::Guest { .. } => guest_owned += 1,
            }
        }
        let sum: u64 = (1..4).map(|a| rmp.pages_owned_by(a)).sum();
        assert_eq!(sum, guest_owned, "case {case}");
    }
}

/// A validated page is accessible by its owner and nobody else.
#[test]
fn rmp_access_iff_owner_and_validated() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x3E3_0002 ^ case);
        let page = rng.next_below(8);
        let owner = 1 + rng.next_below(3) as u32;
        let other = 1 + rng.next_below(3) as u32;
        if owner == other {
            continue;
        }
        let mut rmp = Rmp::new(8);
        rmp.assign(PageNum(page), owner).unwrap();
        rmp.pvalidate(PageNum(page), owner).unwrap();
        assert!(rmp.check_guest_access(PageNum(page), owner).is_ok(), "case {case}");
        assert!(rmp.check_guest_access(PageNum(page), other).is_err(), "case {case}");
        assert!(rmp.check_host_write(PageNum(page)).is_err(), "case {case}");
    }
}

/// SEPT: accept exactly once; accepted pages resolve to the HPA given at
/// aug time.
#[test]
fn sept_accept_once() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x3E3_0003 ^ case);
        let gpas: std::collections::BTreeSet<u64> =
            (0..1 + rng.next_below(15)).map(|_| rng.next_below(64)).collect();
        let mut sept = SecureEpt::new();
        for (i, gpa) in gpas.iter().enumerate() {
            sept.aug(PageNum(*gpa), PageNum(1000 + i as u64)).unwrap();
        }
        for gpa in &gpas {
            assert!(sept.check_access(PageNum(*gpa)).is_err(), "case {case}");
            sept.accept(PageNum(*gpa)).unwrap();
            assert!(sept.accept(PageNum(*gpa)).is_err(), "case {case}");
        }
        for (i, gpa) in gpas.iter().enumerate() {
            assert_eq!(
                sept.check_access(PageNum(*gpa)).unwrap(),
                PageNum(1000 + i as u64),
                "case {case}"
            );
        }
        assert_eq!(sept.accepts(), gpas.len() as u64, "case {case}");
    }
}

/// GPT: world transitions preserve "assigned granules are in the realm
/// world" and realm accounting matches assignments.
#[test]
fn gpt_world_state_consistency() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x3E3_0004 ^ case);
        let mut gpt = GranuleTable::new(8);
        for _ in 0..1 + rng.next_below(47) {
            let g = PageNum(rng.next_below(8));
            let rd = 1 + rng.next_below(2) as u32;
            match rng.next_below(4) {
                0 => {
                    let _ = gpt.delegate(g);
                }
                1 => {
                    let _ = gpt.assign_to_realm(g, rd);
                }
                2 => {
                    let _ = gpt.release_from_realm(g, rd);
                }
                _ => {
                    let _ = gpt.undelegate(g);
                }
            }
        }
        let mut assigned = 0u64;
        for g in 0..8 {
            let g = PageNum(g);
            let world = gpt.world_of(g).unwrap();
            match gpt.state_of(g).unwrap() {
                GranuleState::Assigned { .. } | GranuleState::Delegated => {
                    assert_eq!(world, World::Realm, "case {case}");
                    if matches!(gpt.state_of(g).unwrap(), GranuleState::Assigned { .. }) {
                        assigned += 1;
                    }
                }
                GranuleState::Undelegated => assert_eq!(world, World::NonSecure, "case {case}"),
            }
        }
        let sum: u64 = (1..3).map(|rd| gpt.granules_of_realm(rd)).sum();
        assert_eq!(sum, assigned, "case {case}");
    }
}

/// Two-stage translation round-trips: for any mapped VA, the PA offset
/// within the page equals the VA offset (stage 1 is offset-preserving at
/// page granularity here).
#[test]
fn translation_preserves_offsets() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x3E3_0005 ^ case);
        let page = rng.next_below(4);
        let offset = rng.next_below(PAGE_SIZE);
        let mut t = TwoStageTranslator::new();
        t.map_segment(0, 0x100 * PAGE_SIZE, 4 * PAGE_SIZE);
        for i in 0..4 {
            t.stage2_mut().map(PageNum(0x100 + i), PageNum(0x200 + i));
        }
        let va = page * PAGE_SIZE + offset;
        let pa = t.translate(va).unwrap();
        assert_eq!(pa % PAGE_SIZE, offset, "case {case}");
        assert_eq!(pa / PAGE_SIZE, 0x200 + page, "case {case}");
    }
}

/// Stage-2 map/unmap behaves like a map.
#[test]
fn stage2_map_semantics() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x3E3_0006 ^ case);
        let mut s2 = StageTwoTable::new();
        let mut model = std::collections::HashMap::new();
        for _ in 0..1 + rng.next_below(31) {
            let ipa = rng.next_below(32);
            let pa = rng.next_below(1000);
            let old = s2.map(PageNum(ipa), PageNum(pa));
            let model_old = model.insert(ipa, pa);
            assert_eq!(old.map(|p| p.0), model_old, "case {case}");
        }
        for (ipa, pa) in &model {
            assert_eq!(s2.walk(PageNum(*ipa)).unwrap(), PageNum(*pa), "case {case}");
        }
        assert_eq!(s2.len(), model.len(), "case {case}");
        assert_eq!(s2.faults(), 0, "case {case}");
    }
}

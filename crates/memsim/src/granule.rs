//! ARM CCA Granule Protection Table model.
//!
//! CCA partitions physical memory into 4-KiB *granules*, each belonging to
//! one of four worlds (paper §II): Non-secure, Secure (TrustZone), Realm
//! (confidential VMs + RMM) and Root (the monitor). The Granule Protection
//! Table (GPT) is checked by hardware on every access; the host *delegates*
//! granules to the realm world through RMI calls and the RMM hands them to
//! realms.

use std::fmt;

use crate::page::PageNum;

/// One of CCA's four security worlds / physical address spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum World {
    /// The normal world (host OS, non-confidential VMs).
    NonSecure,
    /// The TrustZone secure world.
    Secure,
    /// The realm world (confidential VMs, RMM).
    Realm,
    /// The root world (EL3 monitor).
    Root,
}

/// Fine-grained state of a granule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GranuleState {
    /// Usable by its world; for the realm world this means "delegated but
    /// not yet assigned to a specific realm".
    Undelegated,
    /// Delegated to the realm world, unassigned (`DELEGATED`).
    Delegated,
    /// Assigned to realm `rd` as data or table memory.
    Assigned {
        /// Realm descriptor (which realm owns the granule).
        rd: u32,
    },
}

/// Errors raised by GPT operations, mirroring RMI return codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GranuleError {
    /// Granule index beyond the table.
    OutOfRange(PageNum),
    /// Operation requires a different world.
    WrongWorld(PageNum, World),
    /// Operation requires a different granule state.
    WrongState(PageNum),
    /// Hardware Granule Protection Fault: access from the wrong world.
    ProtectionFault(PageNum, World),
}

impl fmt::Display for GranuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GranuleError::OutOfRange(p) => write!(f, "gpt: granule {p} out of range"),
            GranuleError::WrongWorld(p, w) => write!(f, "gpt: granule {p} is in world {w:?}"),
            GranuleError::WrongState(p) => write!(f, "gpt: granule {p} in wrong state"),
            GranuleError::ProtectionFault(p, w) => {
                write!(f, "gpt: protection fault on {p} from world {w:?}")
            }
        }
    }
}

impl std::error::Error for GranuleError {}

/// The Granule Protection Table for one CCA host.
///
/// # Example
///
/// ```
/// use confbench_memsim::{GranuleTable, PageNum, World};
///
/// let mut gpt = GranuleTable::new(8);
/// gpt.delegate(PageNum(0)).unwrap();           // host RMI: NS -> Realm
/// gpt.assign_to_realm(PageNum(0), 1).unwrap(); // RMM gives it to realm 1
/// assert!(gpt.check_access(PageNum(0), World::Realm).is_ok());
/// assert!(gpt.check_access(PageNum(0), World::NonSecure).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct GranuleTable {
    world: Vec<World>,
    state: Vec<GranuleState>,
    checks: u64,
}

impl GranuleTable {
    /// Creates a GPT of `granules` entries, all non-secure and undelegated.
    pub fn new(granules: u64) -> Self {
        GranuleTable {
            world: vec![World::NonSecure; granules as usize],
            state: vec![GranuleState::Undelegated; granules as usize],
            checks: 0,
        }
    }

    /// Number of granules covered.
    pub fn len(&self) -> u64 {
        self.world.len() as u64
    }

    /// Whether the table covers zero granules.
    pub fn is_empty(&self) -> bool {
        self.world.is_empty()
    }

    /// GPT checks performed so far (perf-model input).
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Host RMI `GRANULE.DELEGATE`: move a non-secure granule to the realm
    /// world.
    ///
    /// # Errors
    ///
    /// [`GranuleError::WrongWorld`] unless currently non-secure.
    pub fn delegate(&mut self, g: PageNum) -> Result<(), GranuleError> {
        let idx = self.index(g)?;
        if self.world[idx] != World::NonSecure {
            return Err(GranuleError::WrongWorld(g, self.world[idx]));
        }
        self.world[idx] = World::Realm;
        self.state[idx] = GranuleState::Delegated;
        Ok(())
    }

    /// Host RMI `GRANULE.UNDELEGATE`: reclaim a delegated (unassigned) realm
    /// granule back to the normal world. The RMM wipes it first.
    ///
    /// # Errors
    ///
    /// [`GranuleError::WrongState`] unless the granule is `Delegated`.
    pub fn undelegate(&mut self, g: PageNum) -> Result<(), GranuleError> {
        let idx = self.index(g)?;
        if self.world[idx] != World::Realm || self.state[idx] != GranuleState::Delegated {
            return Err(GranuleError::WrongState(g));
        }
        self.world[idx] = World::NonSecure;
        self.state[idx] = GranuleState::Undelegated;
        Ok(())
    }

    /// RMM operation: assign a delegated granule to realm `rd` (as data,
    /// RTT, or realm descriptor memory).
    ///
    /// # Errors
    ///
    /// [`GranuleError::WrongState`] unless the granule is `Delegated`.
    pub fn assign_to_realm(&mut self, g: PageNum, rd: u32) -> Result<(), GranuleError> {
        let idx = self.index(g)?;
        if self.world[idx] != World::Realm || self.state[idx] != GranuleState::Delegated {
            return Err(GranuleError::WrongState(g));
        }
        self.state[idx] = GranuleState::Assigned { rd };
        Ok(())
    }

    /// RMM operation: release a realm's granule back to `Delegated`.
    ///
    /// # Errors
    ///
    /// [`GranuleError::WrongState`] unless assigned to `rd`.
    pub fn release_from_realm(&mut self, g: PageNum, rd: u32) -> Result<(), GranuleError> {
        let idx = self.index(g)?;
        if self.state[idx] != (GranuleState::Assigned { rd }) {
            return Err(GranuleError::WrongState(g));
        }
        self.state[idx] = GranuleState::Delegated;
        Ok(())
    }

    /// Hardware GPT check: may `from` world access granule `g`?
    ///
    /// Root accesses everything; otherwise worlds only access their own
    /// granules.
    ///
    /// # Errors
    ///
    /// [`GranuleError::ProtectionFault`] on a world mismatch.
    pub fn check_access(&mut self, g: PageNum, from: World) -> Result<(), GranuleError> {
        self.checks += 1;
        let idx = self.index(g)?;
        if from == World::Root || self.world[idx] == from {
            Ok(())
        } else {
            Err(GranuleError::ProtectionFault(g, from))
        }
    }

    /// The world a granule currently belongs to.
    ///
    /// # Errors
    ///
    /// [`GranuleError::OutOfRange`] if `g` is beyond the table.
    pub fn world_of(&self, g: PageNum) -> Result<World, GranuleError> {
        Ok(self.world[self.index(g)?])
    }

    /// The state of a granule.
    ///
    /// # Errors
    ///
    /// [`GranuleError::OutOfRange`] if `g` is beyond the table.
    pub fn state_of(&self, g: PageNum) -> Result<GranuleState, GranuleError> {
        Ok(self.state[self.index(g)?])
    }

    /// Number of granules assigned to realm `rd`.
    pub fn granules_of_realm(&self, rd: u32) -> u64 {
        self.state.iter().filter(|s| **s == GranuleState::Assigned { rd }).count() as u64
    }

    /// Canonical per-granule snapshot, for state-snapshotting (model
    /// checking).
    pub fn snapshot(&self) -> Vec<(World, GranuleState)> {
        self.world.iter().copied().zip(self.state.iter().copied()).collect()
    }

    /// Rebuilds a GPT from a [`GranuleTable::snapshot`]. The checks counter
    /// restarts at zero; it is perf-model state, not security state.
    pub fn from_snapshot(snapshot: &[(World, GranuleState)]) -> Self {
        GranuleTable {
            world: snapshot.iter().map(|(w, _)| *w).collect(),
            state: snapshot.iter().map(|(_, s)| *s).collect(),
            checks: 0,
        }
    }

    fn index(&self, g: PageNum) -> Result<usize, GranuleError> {
        if (g.0 as usize) < self.world.len() {
            Ok(g.0 as usize)
        } else {
            Err(GranuleError::OutOfRange(g))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delegate_assign_access() {
        let mut gpt = GranuleTable::new(4);
        gpt.delegate(PageNum(0)).unwrap();
        gpt.assign_to_realm(PageNum(0), 7).unwrap();
        gpt.check_access(PageNum(0), World::Realm).unwrap();
        assert!(matches!(
            gpt.check_access(PageNum(0), World::NonSecure),
            Err(GranuleError::ProtectionFault(_, World::NonSecure))
        ));
    }

    #[test]
    fn root_accesses_everything() {
        let mut gpt = GranuleTable::new(2);
        gpt.delegate(PageNum(0)).unwrap();
        gpt.check_access(PageNum(0), World::Root).unwrap();
        gpt.check_access(PageNum(1), World::Root).unwrap();
    }

    #[test]
    fn cannot_delegate_twice() {
        let mut gpt = GranuleTable::new(2);
        gpt.delegate(PageNum(0)).unwrap();
        assert!(matches!(gpt.delegate(PageNum(0)), Err(GranuleError::WrongWorld(_, World::Realm))));
    }

    #[test]
    fn cannot_undelegate_assigned_granule() {
        let mut gpt = GranuleTable::new(2);
        gpt.delegate(PageNum(0)).unwrap();
        gpt.assign_to_realm(PageNum(0), 1).unwrap();
        assert_eq!(gpt.undelegate(PageNum(0)), Err(GranuleError::WrongState(PageNum(0))));
        gpt.release_from_realm(PageNum(0), 1).unwrap();
        gpt.undelegate(PageNum(0)).unwrap();
        assert_eq!(gpt.world_of(PageNum(0)).unwrap(), World::NonSecure);
    }

    #[test]
    fn release_requires_matching_realm() {
        let mut gpt = GranuleTable::new(2);
        gpt.delegate(PageNum(0)).unwrap();
        gpt.assign_to_realm(PageNum(0), 1).unwrap();
        assert_eq!(
            gpt.release_from_realm(PageNum(0), 2),
            Err(GranuleError::WrongState(PageNum(0)))
        );
    }

    #[test]
    fn realm_accounting() {
        let mut gpt = GranuleTable::new(8);
        for i in 0..4 {
            gpt.delegate(PageNum(i)).unwrap();
        }
        gpt.assign_to_realm(PageNum(0), 1).unwrap();
        gpt.assign_to_realm(PageNum(1), 1).unwrap();
        gpt.assign_to_realm(PageNum(2), 2).unwrap();
        assert_eq!(gpt.granules_of_realm(1), 2);
        assert_eq!(gpt.granules_of_realm(2), 1);
    }

    #[test]
    fn out_of_range() {
        let mut gpt = GranuleTable::new(1);
        assert_eq!(gpt.delegate(PageNum(1)), Err(GranuleError::OutOfRange(PageNum(1))));
        assert!(gpt.world_of(PageNum(5)).is_err());
    }

    #[test]
    fn check_counter() {
        let mut gpt = GranuleTable::new(2);
        let _ = gpt.check_access(PageNum(0), World::NonSecure);
        let _ = gpt.check_access(PageNum(1), World::Secure);
        assert_eq!(gpt.checks(), 2);
    }
}

//! Page-granularity addressing.

use std::fmt;

/// Size of a page in bytes (4 KiB, the granule size on every modelled TEE).
pub const PAGE_SIZE: u64 = 4096;

/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// A physical or guest-physical page frame number.
///
/// # Example
///
/// ```
/// use confbench_memsim::PageNum;
///
/// let p = PageNum::containing(0x1234);
/// assert_eq!(p, PageNum(1));
/// assert_eq!(p.base_addr(), 0x1000);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageNum(pub u64);

impl PageNum {
    /// The page containing byte address `addr`.
    pub const fn containing(addr: u64) -> Self {
        PageNum(addr >> PAGE_SHIFT)
    }

    /// First byte address of this page.
    pub const fn base_addr(self) -> u64 {
        self.0 << PAGE_SHIFT
    }

    /// The next page.
    pub const fn next(self) -> Self {
        PageNum(self.0 + 1)
    }
}

impl fmt::Display for PageNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn:{:#x}", self.0)
    }
}

impl From<u64> for PageNum {
    fn from(n: u64) -> Self {
        PageNum(n)
    }
}

/// Iterates over the pages spanned by `[addr, addr + len)`.
///
/// Returns an empty iterator when `len == 0`.
///
/// # Example
///
/// ```
/// use confbench_memsim::{PageNum, PAGE_SIZE};
/// use confbench_memsim::pages_spanned;
///
/// let pages: Vec<_> = pages_spanned(PAGE_SIZE - 1, 2).collect();
/// assert_eq!(pages, vec![PageNum(0), PageNum(1)]);
/// ```
pub fn pages_spanned(addr: u64, len: u64) -> impl Iterator<Item = PageNum> {
    let first = if len == 0 { 1 } else { addr >> PAGE_SHIFT };
    let last = if len == 0 { 0 } else { (addr + len - 1) >> PAGE_SHIFT };
    (first..=last).map(PageNum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containing_and_base() {
        assert_eq!(PageNum::containing(0), PageNum(0));
        assert_eq!(PageNum::containing(4095), PageNum(0));
        assert_eq!(PageNum::containing(4096), PageNum(1));
        assert_eq!(PageNum(2).base_addr(), 8192);
    }

    #[test]
    fn span_iteration() {
        assert_eq!(pages_spanned(0, 0).count(), 0);
        assert_eq!(pages_spanned(0, 1).count(), 1);
        assert_eq!(pages_spanned(0, 4096).count(), 1);
        assert_eq!(pages_spanned(0, 4097).count(), 2);
        assert_eq!(pages_spanned(4095, 2).count(), 2);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(PageNum(255).to_string(), "pfn:0xff");
    }
}

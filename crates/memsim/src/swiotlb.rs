//! Bounce-buffer (swiotlb) pool for confidential-guest DMA.
//!
//! Devices controlled by the untrusted host cannot DMA into TEE-private
//! memory, so confidential guests route I/O through a *shared* staging pool:
//! every outbound byte is copied private→shared before the device sees it,
//! and every inbound byte shared→private after. Intel's own guidance calls
//! bounce buffers the chief I/O overhead of TDX (paper §IV-D), which is the
//! mechanism behind the `iostress` results in Fig. 6.

use std::fmt;

/// Accounting for one I/O transfer through the bounce pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BounceStats {
    /// Bytes copied between private and shared memory (== payload bytes).
    pub bytes_copied: u64,
    /// Number of pool slots used (each slot submission implies a doorbell
    /// exit to the host).
    pub slots_used: u64,
    /// Whether the transfer had to wait for slot recycling because the pool
    /// was smaller than the payload (adds round trips).
    pub wrapped: bool,
}

/// A fixed-size shared staging pool divided into equal slots.
///
/// # Example
///
/// ```
/// use confbench_memsim::Swiotlb;
///
/// // 64 KiB pool in 4 KiB slots.
/// let pool = Swiotlb::new(64 * 1024, 4 * 1024);
/// let stats = pool.transfer(10 * 1024);
/// assert_eq!(stats.bytes_copied, 10 * 1024);
/// assert_eq!(stats.slots_used, 3); // ceil(10 / 4)
/// assert!(!stats.wrapped);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Swiotlb {
    pool_bytes: u64,
    slot_bytes: u64,
}

impl Swiotlb {
    /// Creates a pool of `pool_bytes` total split into `slot_bytes` slots.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero or the slot size exceeds the pool size.
    pub fn new(pool_bytes: u64, slot_bytes: u64) -> Self {
        assert!(pool_bytes > 0 && slot_bytes > 0, "sizes must be positive");
        assert!(slot_bytes <= pool_bytes, "slot larger than pool");
        Swiotlb { pool_bytes, slot_bytes }
    }

    /// The default Linux guest configuration: a 64 MiB pool of 2 KiB slots
    /// (swiotlb's `IO_TLB_SIZE` is 2 KiB).
    pub fn linux_default() -> Self {
        Swiotlb::new(64 << 20, 2 << 10)
    }

    /// Total pool capacity in bytes.
    pub fn pool_bytes(&self) -> u64 {
        self.pool_bytes
    }

    /// Slot size in bytes.
    pub fn slot_bytes(&self) -> u64 {
        self.slot_bytes
    }

    /// Accounts a transfer of `payload` bytes through the pool.
    ///
    /// Zero-byte transfers use no slots and copy nothing.
    pub fn transfer(&self, payload: u64) -> BounceStats {
        if payload == 0 {
            return BounceStats::default();
        }
        let slots_used = payload.div_ceil(self.slot_bytes);
        let capacity_slots = self.pool_bytes / self.slot_bytes;
        BounceStats { bytes_copied: payload, slots_used, wrapped: slots_used > capacity_slots }
    }
}

impl fmt::Display for Swiotlb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "swiotlb({} KiB pool, {} B slots)", self.pool_bytes >> 10, self.slot_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_payload_is_free() {
        let pool = Swiotlb::new(4096, 1024);
        assert_eq!(pool.transfer(0), BounceStats::default());
    }

    #[test]
    fn slots_round_up() {
        let pool = Swiotlb::new(16 * 1024, 1024);
        assert_eq!(pool.transfer(1).slots_used, 1);
        assert_eq!(pool.transfer(1024).slots_used, 1);
        assert_eq!(pool.transfer(1025).slots_used, 2);
    }

    #[test]
    fn wrap_detection() {
        let pool = Swiotlb::new(4 * 1024, 1024); // 4 slots
        assert!(!pool.transfer(4 * 1024).wrapped);
        assert!(pool.transfer(5 * 1024).wrapped);
    }

    #[test]
    fn linux_default_shape() {
        let pool = Swiotlb::linux_default();
        assert_eq!(pool.pool_bytes(), 64 << 20);
        assert_eq!(pool.slot_bytes(), 2048);
        // 1 MiB file write (the paper's iostress unit): 512 slot submissions.
        assert_eq!(pool.transfer(1 << 20).slots_used, 512);
    }

    #[test]
    #[should_panic(expected = "slot larger than pool")]
    fn oversized_slot_panics() {
        Swiotlb::new(1024, 4096);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Swiotlb::new(65536, 2048).to_string(), "swiotlb(64 KiB pool, 2048 B slots)");
    }
}

//! AMD SEV-SNP Reverse Map Table model.
//!
//! The RMP holds one entry per system physical page and is consulted by
//! hardware on every nested-page-table walk. It enforces that a page is used
//! only by its owner and only after the guest has issued `PVALIDATE` —
//! blocking the remapping attacks plain SEV suffered from (paper §II).

use std::fmt;

use crate::page::PageNum;

/// Owner of a physical page in the RMP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RmpOwner {
    /// The untrusted hypervisor (default state).
    Hypervisor,
    /// A guest VM, identified by its ASID.
    Guest {
        /// Address-space identifier of the owning SNP guest.
        asid: u32,
    },
}

/// One RMP entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RmpEntry {
    /// Current owner.
    pub owner: RmpOwner,
    /// Whether the owning guest has issued `PVALIDATE` on the page.
    pub validated: bool,
    /// Virtual Machine Privilege Level access mask (bit `i` set = VMPL `i`
    /// may access). SNP supports four VMPLs for intra-guest privilege
    /// separation (paper §II).
    pub vmpl_mask: u8,
}

impl RmpEntry {
    const HYPERVISOR: RmpEntry =
        RmpEntry { owner: RmpOwner::Hypervisor, validated: false, vmpl_mask: 0 };
}

/// Errors raised by RMP operations — each corresponds to a hardware
/// `#RMP`/`#VMEXIT` condition in real SNP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmpError {
    /// Page number beyond the table.
    OutOfRange(PageNum),
    /// Attempt to assign a page that already belongs to a guest.
    AlreadyAssigned(PageNum),
    /// Guest operation on a page it does not own.
    NotOwner(PageNum),
    /// `PVALIDATE` on an already-validated page (double validation).
    DoubleValidation(PageNum),
    /// Guest data access to a page it has not validated.
    NotValidated(PageNum),
    /// Access denied by the VMPL permission mask.
    VmplDenied(PageNum),
}

impl fmt::Display for RmpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RmpError::OutOfRange(p) => write!(f, "rmp: page {p} out of range"),
            RmpError::AlreadyAssigned(p) => write!(f, "rmp: page {p} already assigned"),
            RmpError::NotOwner(p) => write!(f, "rmp: caller does not own page {p}"),
            RmpError::DoubleValidation(p) => write!(f, "rmp: page {p} already validated"),
            RmpError::NotValidated(p) => write!(f, "rmp: page {p} not validated"),
            RmpError::VmplDenied(p) => write!(f, "rmp: vmpl denies access to page {p}"),
        }
    }
}

impl std::error::Error for RmpError {}

/// The Reverse Map Table for one SNP host.
///
/// # Example
///
/// ```
/// use confbench_memsim::{PageNum, Rmp};
///
/// let mut rmp = Rmp::new(8);
/// rmp.assign(PageNum(0), 1).unwrap();
/// rmp.pvalidate(PageNum(0), 1).unwrap();
/// rmp.reclaim(PageNum(0)).unwrap();
/// // After reclaim the hypervisor owns the page again and validation is gone.
/// assert!(rmp.check_guest_access(PageNum(0), 1).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct Rmp {
    entries: Vec<RmpEntry>,
    /// Count of RMP checks performed (feeds the perf model: RMP walks have a
    /// small per-access cost on TLB miss).
    checks: u64,
}

impl Rmp {
    /// Creates an RMP covering `pages` physical pages, all hypervisor-owned.
    pub fn new(pages: u64) -> Self {
        Rmp { entries: vec![RmpEntry::HYPERVISOR; pages as usize], checks: 0 }
    }

    /// Number of pages covered.
    pub fn len(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Whether the table covers zero pages.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total RMP checks performed so far (perf-model input).
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Reads an entry.
    ///
    /// # Errors
    ///
    /// [`RmpError::OutOfRange`] if `page` is beyond the table.
    pub fn entry(&self, page: PageNum) -> Result<RmpEntry, RmpError> {
        self.entries.get(page.0 as usize).copied().ok_or(RmpError::OutOfRange(page))
    }

    /// Hypervisor operation `RMPUPDATE`: assign a hypervisor-owned page to
    /// guest `asid` (unvalidated, all VMPLs permitted).
    ///
    /// # Errors
    ///
    /// [`RmpError::AlreadyAssigned`] if a guest already owns the page.
    pub fn assign(&mut self, page: PageNum, asid: u32) -> Result<(), RmpError> {
        let e = self.entry_mut(page)?;
        if e.owner != RmpOwner::Hypervisor {
            return Err(RmpError::AlreadyAssigned(page));
        }
        *e = RmpEntry { owner: RmpOwner::Guest { asid }, validated: false, vmpl_mask: 0b1111 };
        Ok(())
    }

    /// Guest instruction `PVALIDATE`: the owning guest marks the page valid.
    ///
    /// # Errors
    ///
    /// [`RmpError::NotOwner`] if `asid` does not own the page;
    /// [`RmpError::DoubleValidation`] if already validated (real SNP guests
    /// treat this as a potential remapping attack).
    pub fn pvalidate(&mut self, page: PageNum, asid: u32) -> Result<(), RmpError> {
        let e = self.entry_mut(page)?;
        if e.owner != (RmpOwner::Guest { asid }) {
            return Err(RmpError::NotOwner(page));
        }
        if e.validated {
            return Err(RmpError::DoubleValidation(page));
        }
        e.validated = true;
        Ok(())
    }

    /// Restricts which VMPLs may access the page (guest VMPL0 operation
    /// `RMPADJUST`).
    ///
    /// # Errors
    ///
    /// [`RmpError::NotOwner`] if `asid` does not own the page.
    pub fn rmpadjust(&mut self, page: PageNum, asid: u32, vmpl_mask: u8) -> Result<(), RmpError> {
        let e = self.entry_mut(page)?;
        if e.owner != (RmpOwner::Guest { asid }) {
            return Err(RmpError::NotOwner(page));
        }
        e.vmpl_mask = vmpl_mask & 0b1111;
        Ok(())
    }

    /// Hypervisor reclaims a page from a guest (e.g. on teardown). Clears
    /// ownership and validation.
    ///
    /// # Errors
    ///
    /// [`RmpError::OutOfRange`] if `page` is beyond the table.
    pub fn reclaim(&mut self, page: PageNum) -> Result<(), RmpError> {
        let e = self.entry_mut(page)?;
        *e = RmpEntry::HYPERVISOR;
        Ok(())
    }

    /// Hardware check on a guest data access at VMPL 0.
    ///
    /// # Errors
    ///
    /// Fails when the guest does not own the page or has not validated it.
    pub fn check_guest_access(&mut self, page: PageNum, asid: u32) -> Result<(), RmpError> {
        self.check_guest_access_vmpl(page, asid, 0)
    }

    /// Hardware check on a guest data access from a given VMPL.
    ///
    /// # Errors
    ///
    /// As [`Rmp::check_guest_access`], plus [`RmpError::VmplDenied`] when the
    /// VMPL mask excludes `vmpl`.
    pub fn check_guest_access_vmpl(
        &mut self,
        page: PageNum,
        asid: u32,
        vmpl: u8,
    ) -> Result<(), RmpError> {
        self.checks += 1;
        let e = self.entry(page)?;
        if e.owner != (RmpOwner::Guest { asid }) {
            return Err(RmpError::NotOwner(page));
        }
        if !e.validated {
            return Err(RmpError::NotValidated(page));
        }
        if vmpl > 3 || e.vmpl_mask & (1 << vmpl) == 0 {
            return Err(RmpError::VmplDenied(page));
        }
        Ok(())
    }

    /// Hardware check on a *hypervisor* write: writing guest-owned pages is
    /// an RMP violation (the integrity guarantee SNP adds over SEV).
    ///
    /// # Errors
    ///
    /// [`RmpError::NotOwner`] when a guest owns the page.
    pub fn check_host_write(&mut self, page: PageNum) -> Result<(), RmpError> {
        self.checks += 1;
        let e = self.entry(page)?;
        match e.owner {
            RmpOwner::Hypervisor => Ok(()),
            RmpOwner::Guest { .. } => Err(RmpError::NotOwner(page)),
        }
    }

    /// Number of pages currently owned by `asid`.
    pub fn pages_owned_by(&self, asid: u32) -> u64 {
        self.entries.iter().filter(|e| e.owner == RmpOwner::Guest { asid }).count() as u64
    }

    /// The full entry table, for state-snapshotting (model checking).
    pub fn entries(&self) -> &[RmpEntry] {
        &self.entries
    }

    /// Rebuilds an RMP from a snapshot previously taken via
    /// [`Rmp::entries`]. The checks counter restarts at zero; it is
    /// perf-model state, not security state.
    pub fn from_entries(entries: Vec<RmpEntry>) -> Self {
        Rmp { entries, checks: 0 }
    }

    fn entry_mut(&mut self, page: PageNum) -> Result<&mut RmpEntry, RmpError> {
        self.entries.get_mut(page.0 as usize).ok_or(RmpError::OutOfRange(page))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_assign_validate_access() {
        let mut rmp = Rmp::new(4);
        rmp.assign(PageNum(1), 5).unwrap();
        // Access before PVALIDATE faults.
        assert_eq!(rmp.check_guest_access(PageNum(1), 5), Err(RmpError::NotValidated(PageNum(1))));
        rmp.pvalidate(PageNum(1), 5).unwrap();
        rmp.check_guest_access(PageNum(1), 5).unwrap();
    }

    #[test]
    fn no_double_assignment() {
        let mut rmp = Rmp::new(4);
        rmp.assign(PageNum(0), 1).unwrap();
        assert_eq!(rmp.assign(PageNum(0), 2), Err(RmpError::AlreadyAssigned(PageNum(0))));
    }

    #[test]
    fn no_double_validation() {
        let mut rmp = Rmp::new(4);
        rmp.assign(PageNum(0), 1).unwrap();
        rmp.pvalidate(PageNum(0), 1).unwrap();
        assert_eq!(rmp.pvalidate(PageNum(0), 1), Err(RmpError::DoubleValidation(PageNum(0))));
    }

    #[test]
    fn cross_guest_isolation() {
        let mut rmp = Rmp::new(4);
        rmp.assign(PageNum(2), 1).unwrap();
        rmp.pvalidate(PageNum(2), 1).unwrap();
        assert_eq!(rmp.check_guest_access(PageNum(2), 2), Err(RmpError::NotOwner(PageNum(2))));
        assert_eq!(rmp.pvalidate(PageNum(2), 2), Err(RmpError::NotOwner(PageNum(2))));
    }

    #[test]
    fn host_cannot_write_guest_pages() {
        let mut rmp = Rmp::new(4);
        rmp.check_host_write(PageNum(3)).unwrap();
        rmp.assign(PageNum(3), 9).unwrap();
        assert_eq!(rmp.check_host_write(PageNum(3)), Err(RmpError::NotOwner(PageNum(3))));
    }

    #[test]
    fn reclaim_resets_state() {
        let mut rmp = Rmp::new(4);
        rmp.assign(PageNum(0), 1).unwrap();
        rmp.pvalidate(PageNum(0), 1).unwrap();
        rmp.reclaim(PageNum(0)).unwrap();
        assert_eq!(rmp.entry(PageNum(0)).unwrap().owner, RmpOwner::Hypervisor);
        // Page can be assigned again, unvalidated.
        rmp.assign(PageNum(0), 2).unwrap();
        assert!(!rmp.entry(PageNum(0)).unwrap().validated);
    }

    #[test]
    fn vmpl_mask_enforced() {
        let mut rmp = Rmp::new(4);
        rmp.assign(PageNum(0), 1).unwrap();
        rmp.pvalidate(PageNum(0), 1).unwrap();
        rmp.rmpadjust(PageNum(0), 1, 0b0001).unwrap(); // VMPL0 only
        rmp.check_guest_access_vmpl(PageNum(0), 1, 0).unwrap();
        assert_eq!(
            rmp.check_guest_access_vmpl(PageNum(0), 1, 2),
            Err(RmpError::VmplDenied(PageNum(0)))
        );
        assert_eq!(
            rmp.check_guest_access_vmpl(PageNum(0), 1, 7),
            Err(RmpError::VmplDenied(PageNum(0)))
        );
    }

    #[test]
    fn out_of_range_detected() {
        let mut rmp = Rmp::new(2);
        assert_eq!(rmp.assign(PageNum(2), 1), Err(RmpError::OutOfRange(PageNum(2))));
        assert_eq!(rmp.entry(PageNum(99)), Err(RmpError::OutOfRange(PageNum(99))));
    }

    #[test]
    fn checks_counter_increments() {
        let mut rmp = Rmp::new(2);
        rmp.assign(PageNum(0), 1).unwrap();
        rmp.pvalidate(PageNum(0), 1).unwrap();
        let _ = rmp.check_guest_access(PageNum(0), 1);
        let _ = rmp.check_host_write(PageNum(1));
        assert_eq!(rmp.checks(), 2);
    }

    #[test]
    fn ownership_count() {
        let mut rmp = Rmp::new(8);
        for i in 0..3 {
            rmp.assign(PageNum(i), 1).unwrap();
        }
        rmp.assign(PageNum(5), 2).unwrap();
        assert_eq!(rmp.pages_owned_by(1), 3);
        assert_eq!(rmp.pages_owned_by(2), 1);
        assert_eq!(rmp.pages_owned_by(3), 0);
    }
}

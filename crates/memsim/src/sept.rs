//! Intel TDX Secure-EPT model.
//!
//! A trust domain's private memory is mapped by a Secure EPT that only the
//! TDX module may edit. The VMM *adds* pages (`TDH.MEM.PAGE.ADD` at build
//! time, `TDH.MEM.PAGE.AUG` at run time) and the guest must *accept* each
//! augmented page (`TDG.MEM.PAGE.ACCEPT`) before first use — acceptance is
//! where TDX charges its page-initialization cost (zeroing + integrity
//! metadata). GPAs with the **shared bit** set bypass the SEPT and map
//! untrusted shared memory (used for the swiotlb bounce buffers).

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::page::PageNum;

/// The GPA bit distinguishing shared (untrusted) from private mappings.
/// Real TDX uses the topmost implemented physical-address bit; the model pins
/// bit 51.
pub const SHARED_GPA_BIT: u64 = 1 << 51;

/// Lifecycle state of a private page in the SEPT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeptPageState {
    /// Mapped by the VMM, not yet accepted by the guest (`PENDING`).
    Pending,
    /// Accepted by the guest and usable (`MAPPED`).
    Mapped,
    /// Blocked for removal (`BLOCKED`, during memory reclaim).
    Blocked,
}

/// Errors raised by SEPT operations, mirroring TDX-module status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeptError {
    /// GPA already mapped.
    AlreadyMapped(PageNum),
    /// GPA not present in the SEPT.
    NotMapped(PageNum),
    /// `ACCEPT` of a page that is not in `Pending` state.
    NotPending(PageNum),
    /// Guest touched a `Pending` page without accepting it (a #VE in real
    /// TDX).
    PendingAccess(PageNum),
    /// Access to a `Blocked` page.
    BlockedAccess(PageNum),
    /// Operation used a shared-bit GPA where a private GPA is required.
    SharedBitSet(PageNum),
    /// The host page already backs another private mapping in this SEPT.
    /// Mapping one HPA at two GPAs would make the page guest-valid under
    /// two owners — the aliasing the TDX module's PAMT forbids.
    HpaInUse(PageNum),
}

impl fmt::Display for SeptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeptError::AlreadyMapped(p) => write!(f, "sept: gpa {p} already mapped"),
            SeptError::NotMapped(p) => write!(f, "sept: gpa {p} not mapped"),
            SeptError::NotPending(p) => write!(f, "sept: gpa {p} not pending"),
            SeptError::PendingAccess(p) => write!(f, "sept: #VE, gpa {p} pending acceptance"),
            SeptError::BlockedAccess(p) => write!(f, "sept: gpa {p} blocked"),
            SeptError::SharedBitSet(p) => write!(f, "sept: gpa {p} has shared bit set"),
            SeptError::HpaInUse(p) => write!(f, "sept: hpa {p} already backs another mapping"),
        }
    }
}

impl std::error::Error for SeptError {}

/// The Secure EPT of one trust domain.
///
/// # Example
///
/// ```
/// use confbench_memsim::{PageNum, SecureEpt};
///
/// let mut sept = SecureEpt::new();
/// sept.aug(PageNum(0x100), PageNum(0x9000)).unwrap(); // VMM maps
/// assert!(sept.check_access(PageNum(0x100)).is_err()); // guest must accept
/// sept.accept(PageNum(0x100)).unwrap();
/// sept.check_access(PageNum(0x100)).unwrap();
/// ```
#[derive(Debug, Clone, Default)]
pub struct SecureEpt {
    entries: HashMap<u64, (PageNum, SeptPageState)>,
    /// Host pages currently backing a private mapping. `aug`/`add` claim
    /// the HPA here and `remove` releases it, so one host page can never
    /// be guest-valid at two GPAs (found by the `confbench-mc` checker:
    /// `aug(gpa0, hpa)` then `aug(gpa1, hpa)` used to succeed).
    hpas_in_use: HashSet<u64>,
    accepts: u64,
}

impl SecureEpt {
    /// Creates an empty SEPT.
    pub fn new() -> Self {
        SecureEpt::default()
    }

    /// Number of mapped GPAs (any state).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of `ACCEPT` operations performed (perf-model input: each costs
    /// a page-clear plus integrity-metadata setup).
    pub fn accepts(&self) -> u64 {
        self.accepts
    }

    /// VMM operation `TDH.MEM.PAGE.AUG`: map host page `hpa` at guest page
    /// `gpa`, leaving it pending guest acceptance.
    ///
    /// # Errors
    ///
    /// [`SeptError::SharedBitSet`] for shared-bit GPAs;
    /// [`SeptError::AlreadyMapped`] if the GPA is occupied;
    /// [`SeptError::HpaInUse`] if `hpa` already backs another mapping.
    pub fn aug(&mut self, gpa: PageNum, hpa: PageNum) -> Result<(), SeptError> {
        self.map_new(gpa, hpa, SeptPageState::Pending)
    }

    /// Build-time operation `TDH.MEM.PAGE.ADD`: map and immediately accept
    /// (initial TD image pages are measured instead of accepted).
    ///
    /// # Errors
    ///
    /// As [`SecureEpt::aug`].
    pub fn add(&mut self, gpa: PageNum, hpa: PageNum) -> Result<(), SeptError> {
        self.map_new(gpa, hpa, SeptPageState::Mapped)
    }

    fn map_new(
        &mut self,
        gpa: PageNum,
        hpa: PageNum,
        state: SeptPageState,
    ) -> Result<(), SeptError> {
        self.require_private(gpa)?;
        if self.entries.contains_key(&gpa.0) {
            return Err(SeptError::AlreadyMapped(gpa));
        }
        if !self.hpas_in_use.insert(hpa.0) {
            return Err(SeptError::HpaInUse(hpa));
        }
        self.entries.insert(gpa.0, (hpa, state));
        Ok(())
    }

    /// Guest operation `TDG.MEM.PAGE.ACCEPT`.
    ///
    /// # Errors
    ///
    /// [`SeptError::NotMapped`] for absent GPAs; [`SeptError::NotPending`]
    /// if the page is not awaiting acceptance.
    pub fn accept(&mut self, gpa: PageNum) -> Result<(), SeptError> {
        self.require_private(gpa)?;
        match self.entries.get_mut(&gpa.0) {
            None => Err(SeptError::NotMapped(gpa)),
            Some((_, state @ SeptPageState::Pending)) => {
                *state = SeptPageState::Mapped;
                self.accepts += 1;
                Ok(())
            }
            Some(_) => Err(SeptError::NotPending(gpa)),
        }
    }

    /// VMM operation `TDH.MEM.RANGE.BLOCK`: block a mapping prior to
    /// removal.
    ///
    /// # Errors
    ///
    /// [`SeptError::NotMapped`] for absent GPAs.
    pub fn block(&mut self, gpa: PageNum) -> Result<(), SeptError> {
        self.require_private(gpa)?;
        match self.entries.get_mut(&gpa.0) {
            None => Err(SeptError::NotMapped(gpa)),
            Some((_, state)) => {
                *state = SeptPageState::Blocked;
                Ok(())
            }
        }
    }

    /// VMM operation `TDH.MEM.PAGE.REMOVE`: remove a blocked mapping.
    ///
    /// # Errors
    ///
    /// [`SeptError::NotMapped`] for absent GPAs; [`SeptError::NotPending`]
    /// (reused for "wrong state") if the page was not blocked first.
    pub fn remove(&mut self, gpa: PageNum) -> Result<PageNum, SeptError> {
        self.require_private(gpa)?;
        match self.entries.get(&gpa.0) {
            None => Err(SeptError::NotMapped(gpa)),
            Some((hpa, SeptPageState::Blocked)) => {
                let hpa = *hpa;
                self.entries.remove(&gpa.0);
                self.hpas_in_use.remove(&hpa.0);
                Ok(hpa)
            }
            Some(_) => Err(SeptError::NotPending(gpa)),
        }
    }

    /// Hardware walk for a guest access to a private GPA.
    ///
    /// # Errors
    ///
    /// [`SeptError::PendingAccess`] (a #VE) for pending pages,
    /// [`SeptError::BlockedAccess`] for blocked ones, and
    /// [`SeptError::NotMapped`] for absent ones.
    pub fn check_access(&self, gpa: PageNum) -> Result<PageNum, SeptError> {
        if gpa.0 & SHARED_GPA_BIT != 0 {
            // Shared GPAs bypass the SEPT: identity-style mapping into
            // untrusted memory.
            return Ok(PageNum(gpa.0 & !SHARED_GPA_BIT));
        }
        match self.entries.get(&gpa.0) {
            None => Err(SeptError::NotMapped(gpa)),
            Some((hpa, SeptPageState::Mapped)) => Ok(*hpa),
            Some((_, SeptPageState::Pending)) => Err(SeptError::PendingAccess(gpa)),
            Some((_, SeptPageState::Blocked)) => Err(SeptError::BlockedAccess(gpa)),
        }
    }

    /// Current state of a GPA, if mapped.
    pub fn state(&self, gpa: PageNum) -> Option<SeptPageState> {
        self.entries.get(&gpa.0).map(|(_, s)| *s)
    }

    /// Canonical snapshot of the table, sorted by GPA, for
    /// state-snapshotting (model checking).
    pub fn snapshot(&self) -> Vec<(PageNum, PageNum, SeptPageState)> {
        let mut v: Vec<_> =
            self.entries.iter().map(|(gpa, (hpa, s))| (PageNum(*gpa), *hpa, *s)).collect();
        v.sort_unstable_by_key(|(gpa, _, _)| gpa.0);
        v
    }

    /// Rebuilds a SEPT from a [`SecureEpt::snapshot`]. The accepts counter
    /// restarts at zero; it is perf-model state, not security state.
    pub fn from_snapshot(snapshot: &[(PageNum, PageNum, SeptPageState)]) -> Self {
        let mut sept = SecureEpt::new();
        for (gpa, hpa, state) in snapshot {
            sept.entries.insert(gpa.0, (*hpa, *state));
            sept.hpas_in_use.insert(hpa.0);
        }
        sept
    }

    fn require_private(&self, gpa: PageNum) -> Result<(), SeptError> {
        if gpa.0 & SHARED_GPA_BIT != 0 {
            Err(SeptError::SharedBitSet(gpa))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aug_accept_access_lifecycle() {
        let mut sept = SecureEpt::new();
        sept.aug(PageNum(1), PageNum(100)).unwrap();
        assert_eq!(sept.state(PageNum(1)), Some(SeptPageState::Pending));
        assert_eq!(sept.check_access(PageNum(1)), Err(SeptError::PendingAccess(PageNum(1))));
        sept.accept(PageNum(1)).unwrap();
        assert_eq!(sept.check_access(PageNum(1)), Ok(PageNum(100)));
        assert_eq!(sept.accepts(), 1);
    }

    #[test]
    fn add_skips_acceptance() {
        let mut sept = SecureEpt::new();
        sept.add(PageNum(2), PageNum(200)).unwrap();
        assert_eq!(sept.check_access(PageNum(2)), Ok(PageNum(200)));
        assert_eq!(sept.accepts(), 0);
    }

    #[test]
    fn double_map_rejected() {
        let mut sept = SecureEpt::new();
        sept.aug(PageNum(1), PageNum(100)).unwrap();
        assert_eq!(sept.aug(PageNum(1), PageNum(101)), Err(SeptError::AlreadyMapped(PageNum(1))));
        assert_eq!(sept.add(PageNum(1), PageNum(101)), Err(SeptError::AlreadyMapped(PageNum(1))));
    }

    #[test]
    fn double_accept_rejected() {
        let mut sept = SecureEpt::new();
        sept.aug(PageNum(1), PageNum(100)).unwrap();
        sept.accept(PageNum(1)).unwrap();
        assert_eq!(sept.accept(PageNum(1)), Err(SeptError::NotPending(PageNum(1))));
    }

    #[test]
    fn shared_gpa_bypasses_sept() {
        let sept = SecureEpt::new();
        let shared = PageNum(SHARED_GPA_BIT | 0x42);
        assert_eq!(sept.check_access(shared), Ok(PageNum(0x42)));
    }

    #[test]
    fn shared_bit_rejected_in_private_ops() {
        let mut sept = SecureEpt::new();
        let shared = PageNum(SHARED_GPA_BIT | 1);
        assert_eq!(sept.aug(shared, PageNum(0)), Err(SeptError::SharedBitSet(shared)));
        assert_eq!(sept.accept(shared), Err(SeptError::SharedBitSet(shared)));
    }

    #[test]
    fn block_then_remove() {
        let mut sept = SecureEpt::new();
        sept.add(PageNum(1), PageNum(100)).unwrap();
        // Cannot remove without blocking.
        assert_eq!(sept.remove(PageNum(1)), Err(SeptError::NotPending(PageNum(1))));
        sept.block(PageNum(1)).unwrap();
        assert_eq!(sept.check_access(PageNum(1)), Err(SeptError::BlockedAccess(PageNum(1))));
        assert_eq!(sept.remove(PageNum(1)), Ok(PageNum(100)));
        assert!(sept.is_empty());
    }

    #[test]
    fn unmapped_access_faults() {
        let sept = SecureEpt::new();
        assert_eq!(sept.check_access(PageNum(9)), Err(SeptError::NotMapped(PageNum(9))));
    }

    /// Regression for the aliasing bug the `confbench-mc` checker found:
    /// mapping one host page at two GPAs used to succeed, making the page
    /// guest-valid under two owners once both were accepted.
    #[test]
    fn hpa_aliasing_rejected() {
        let mut sept = SecureEpt::new();
        sept.aug(PageNum(1), PageNum(100)).unwrap();
        assert_eq!(sept.aug(PageNum(2), PageNum(100)), Err(SeptError::HpaInUse(PageNum(100))));
        assert_eq!(sept.add(PageNum(2), PageNum(100)), Err(SeptError::HpaInUse(PageNum(100))));
        // Still aliased after the first mapping is accepted.
        sept.accept(PageNum(1)).unwrap();
        assert_eq!(sept.aug(PageNum(2), PageNum(100)), Err(SeptError::HpaInUse(PageNum(100))));
        // A different host page is fine.
        sept.aug(PageNum(2), PageNum(101)).unwrap();
    }

    #[test]
    fn remove_releases_the_hpa() {
        let mut sept = SecureEpt::new();
        sept.add(PageNum(1), PageNum(100)).unwrap();
        sept.block(PageNum(1)).unwrap();
        assert_eq!(sept.remove(PageNum(1)), Ok(PageNum(100)));
        // The host page is free again and can back a new mapping.
        sept.aug(PageNum(2), PageNum(100)).unwrap();
    }

    /// Exhaustive (state × operation) table for a single GPA, including the
    /// repaired hpa-ownership dimension: `held` means another GPA already
    /// maps the host page the operation would use. Written out literally —
    /// independently of the implementation — so a rule change must be made
    /// twice to pass.
    #[test]
    fn every_state_operation_pair_matches_the_table() {
        use SeptPageState as P;

        #[derive(Debug, Clone, Copy, PartialEq)]
        enum GpaState {
            Absent,
            Pending,
            Mapped,
            Blocked,
        }
        #[derive(Debug, Clone, Copy)]
        enum Op {
            Aug,
            Add,
            Accept,
            Block,
            Remove,
            Access,
        }
        const OPS: [Op; 6] = [Op::Aug, Op::Add, Op::Accept, Op::Block, Op::Remove, Op::Access];

        let gpa = PageNum(1);
        let hpa = PageNum(100);
        let other_gpa = PageNum(2);

        // What each (gpa-state, hpa-held, operation) triple must produce:
        // `Ok(next)` carries the resulting state of `gpa` (None = unmapped).
        let expected = |state: GpaState, held: bool, op: Op| -> Result<Option<P>, SeptError> {
            match (state, op) {
                (GpaState::Absent, Op::Aug) if held => Err(SeptError::HpaInUse(hpa)),
                (GpaState::Absent, Op::Add) if held => Err(SeptError::HpaInUse(hpa)),
                (GpaState::Absent, Op::Aug) => Ok(Some(P::Pending)),
                (GpaState::Absent, Op::Add) => Ok(Some(P::Mapped)),
                (GpaState::Absent, Op::Accept | Op::Block | Op::Remove | Op::Access) => {
                    Err(SeptError::NotMapped(gpa))
                }
                (_, Op::Aug | Op::Add) => Err(SeptError::AlreadyMapped(gpa)),
                (GpaState::Pending, Op::Accept) => Ok(Some(P::Mapped)),
                (GpaState::Pending, Op::Access) => Err(SeptError::PendingAccess(gpa)),
                (GpaState::Mapped | GpaState::Blocked, Op::Accept) => {
                    Err(SeptError::NotPending(gpa))
                }
                (_, Op::Block) => Ok(Some(P::Blocked)),
                (GpaState::Blocked, Op::Remove) => Ok(None),
                (GpaState::Pending | GpaState::Mapped, Op::Remove) => {
                    Err(SeptError::NotPending(gpa))
                }
                (GpaState::Mapped, Op::Access) => Ok(Some(P::Mapped)),
                (GpaState::Blocked, Op::Access) => Err(SeptError::BlockedAccess(gpa)),
            }
        };

        for state in [GpaState::Absent, GpaState::Pending, GpaState::Mapped, GpaState::Blocked] {
            // `held` only varies the Absent row: a present `gpa` already
            // owns its hpa, so aug/add fail on AlreadyMapped first.
            for held in [false, true] {
                if held && state != GpaState::Absent {
                    continue;
                }
                for op in OPS {
                    let mut sept = SecureEpt::new();
                    match state {
                        GpaState::Absent => {}
                        GpaState::Pending => sept.aug(gpa, hpa).unwrap(),
                        GpaState::Mapped => sept.add(gpa, hpa).unwrap(),
                        GpaState::Blocked => {
                            sept.add(gpa, hpa).unwrap();
                            sept.block(gpa).unwrap();
                        }
                    }
                    if held {
                        sept.aug(other_gpa, hpa).unwrap();
                    }
                    let got = match op {
                        Op::Aug => sept.aug(gpa, hpa).map(|()| sept.state(gpa)),
                        Op::Add => sept.add(gpa, hpa).map(|()| sept.state(gpa)),
                        Op::Accept => sept.accept(gpa).map(|()| sept.state(gpa)),
                        Op::Block => sept.block(gpa).map(|()| sept.state(gpa)),
                        Op::Remove => sept.remove(gpa).map(|_| sept.state(gpa)),
                        Op::Access => sept.check_access(gpa).map(|_| sept.state(gpa)),
                    };
                    assert_eq!(
                        got,
                        expected(state, held, op),
                        "({state:?}, held={held}, {op:?}) diverged from the table"
                    );
                }
            }
        }
    }

    #[test]
    fn snapshot_roundtrips() {
        let mut sept = SecureEpt::new();
        sept.aug(PageNum(3), PageNum(300)).unwrap();
        sept.add(PageNum(1), PageNum(100)).unwrap();
        let snap = sept.snapshot();
        assert_eq!(snap[0].0, PageNum(1), "snapshot is gpa-sorted");
        let back = SecureEpt::from_snapshot(&snap);
        assert_eq!(back.snapshot(), snap);
        // The rebuilt table still enforces hpa ownership.
        let mut back = back;
        assert_eq!(back.aug(PageNum(5), PageNum(100)), Err(SeptError::HpaInUse(PageNum(100))));
    }
}

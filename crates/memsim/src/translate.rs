//! Two-stage address translation (ARM CCA realms).
//!
//! Realm addresses translate in two stages (paper §II): the guest OS maps
//! virtual addresses to *intermediate physical addresses* (stage 1), and the
//! RMM-managed stage-2 tables map IPAs to real physical addresses. The model
//! keeps stage 1 as a segment-offset scheme (we do not simulate a guest OS
//! page allocator) and stage 2 as an explicit page map, because stage 2 is
//! where RMM interposition costs arise.

use std::collections::HashMap;
use std::fmt;

use crate::page::{PageNum, PAGE_SHIFT, PAGE_SIZE};

/// A translation failure at either stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslationFault {
    /// Stage 1: virtual address outside every mapped segment.
    Stage1(u64),
    /// Stage 2: IPA page has no mapping — in a realm this traps to the RMM,
    /// which resolves it via an RTT walk (and charges cycles for it).
    Stage2(PageNum),
}

impl fmt::Display for TranslationFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslationFault::Stage1(va) => write!(f, "stage-1 fault at va {va:#x}"),
            TranslationFault::Stage2(ipa) => write!(f, "stage-2 fault at ipa {ipa}"),
        }
    }
}

impl std::error::Error for TranslationFault {}

/// The RMM-managed stage-2 table of one realm: IPA page → PA page.
#[derive(Debug, Clone, Default)]
pub struct StageTwoTable {
    map: HashMap<u64, PageNum>,
    walks: u64,
    faults: u64,
}

impl StageTwoTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        StageTwoTable::default()
    }

    /// RMM operation `RTT.MAP`: installs an IPA→PA mapping.
    ///
    /// Returns the previous PA if the IPA was already mapped (remap).
    pub fn map(&mut self, ipa: PageNum, pa: PageNum) -> Option<PageNum> {
        self.map.insert(ipa.0, pa)
    }

    /// Removes a mapping, returning the PA if present.
    pub fn unmap(&mut self, ipa: PageNum) -> Option<PageNum> {
        self.map.remove(&ipa.0)
    }

    /// Hardware stage-2 walk.
    ///
    /// # Errors
    ///
    /// [`TranslationFault::Stage2`] when the IPA is unmapped.
    pub fn walk(&mut self, ipa: PageNum) -> Result<PageNum, TranslationFault> {
        self.walks += 1;
        match self.map.get(&ipa.0) {
            Some(pa) => Ok(*pa),
            None => {
                self.faults += 1;
                Err(TranslationFault::Stage2(ipa))
            }
        }
    }

    /// Mapped page count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table has no mappings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total walks performed.
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Total stage-2 faults taken (each costs an RMM round trip in the
    /// realm cost model).
    pub fn faults(&self) -> u64 {
        self.faults
    }
}

/// A full two-stage translator: segment-based stage 1 over a
/// [`StageTwoTable`] stage 2.
///
/// # Example
///
/// ```
/// use confbench_memsim::{PageNum, TwoStageTranslator};
///
/// let mut t = TwoStageTranslator::new();
/// t.map_segment(0x1000, 0x8000, 2 * 4096); // va 0x1000.. -> ipa 0x8000..
/// t.stage2_mut().map(PageNum(0x8), PageNum(0x100));
/// let pa = t.translate(0x1234).unwrap();
/// assert_eq!(pa, 0x100 * 4096 + 0x234);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TwoStageTranslator {
    /// Sorted (va_base, ipa_base, len) segments.
    segments: Vec<(u64, u64, u64)>,
    stage2: StageTwoTable,
}

impl TwoStageTranslator {
    /// Creates a translator with no segments.
    pub fn new() -> Self {
        TwoStageTranslator::default()
    }

    /// Adds a stage-1 segment mapping `[va, va+len)` to `[ipa, ipa+len)`.
    ///
    /// # Panics
    ///
    /// Panics if the segment overlaps an existing one or `len == 0`.
    pub fn map_segment(&mut self, va: u64, ipa: u64, len: u64) {
        assert!(len > 0, "segment length must be positive");
        for &(sva, _, slen) in &self.segments {
            let disjoint = va + len <= sva || sva + slen <= va;
            assert!(
                disjoint,
                "segment [{va:#x},+{len:#x}) overlaps existing [{sva:#x},+{slen:#x})"
            );
        }
        self.segments.push((va, ipa, len));
        self.segments.sort_unstable();
    }

    /// Access to the stage-2 table (to install RTT mappings).
    pub fn stage2_mut(&mut self) -> &mut StageTwoTable {
        &mut self.stage2
    }

    /// Read access to the stage-2 table.
    pub fn stage2(&self) -> &StageTwoTable {
        &self.stage2
    }

    /// Stage-1 only: VA → IPA.
    ///
    /// # Errors
    ///
    /// [`TranslationFault::Stage1`] when no segment covers `va`.
    pub fn stage1(&self, va: u64) -> Result<u64, TranslationFault> {
        for &(sva, sipa, slen) in &self.segments {
            if va >= sva && va < sva + slen {
                return Ok(sipa + (va - sva));
            }
        }
        Err(TranslationFault::Stage1(va))
    }

    /// Full two-stage translation: VA → PA byte address.
    ///
    /// # Errors
    ///
    /// Either stage's fault.
    pub fn translate(&mut self, va: u64) -> Result<u64, TranslationFault> {
        let ipa = self.stage1(va)?;
        let pa_page = self.stage2.walk(PageNum(ipa >> PAGE_SHIFT))?;
        Ok(pa_page.base_addr() + (ipa & (PAGE_SIZE - 1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn translator() -> TwoStageTranslator {
        let mut t = TwoStageTranslator::new();
        t.map_segment(0x0, 0x10_000, 4 * PAGE_SIZE);
        for i in 0..4u64 {
            t.stage2_mut().map(PageNum(0x10 + i), PageNum(0x80 + i));
        }
        t
    }

    #[test]
    fn translates_offsets_within_pages() {
        let mut t = translator();
        assert_eq!(t.translate(0x0).unwrap(), 0x80 * PAGE_SIZE);
        assert_eq!(t.translate(0x123).unwrap(), 0x80 * PAGE_SIZE + 0x123);
        assert_eq!(t.translate(PAGE_SIZE + 7).unwrap(), 0x81 * PAGE_SIZE + 7);
    }

    #[test]
    fn stage1_fault_outside_segments() {
        let mut t = translator();
        assert_eq!(t.translate(4 * PAGE_SIZE), Err(TranslationFault::Stage1(4 * PAGE_SIZE)));
    }

    #[test]
    fn stage2_fault_counts() {
        let mut t = TwoStageTranslator::new();
        t.map_segment(0, 0, PAGE_SIZE);
        assert!(matches!(t.translate(0), Err(TranslationFault::Stage2(_))));
        assert_eq!(t.stage2().faults(), 1);
        assert_eq!(t.stage2().walks(), 1);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_segments_panic() {
        let mut t = TwoStageTranslator::new();
        t.map_segment(0, 0, 2 * PAGE_SIZE);
        t.map_segment(PAGE_SIZE, 0x100000, PAGE_SIZE);
    }

    #[test]
    fn adjacent_segments_allowed() {
        let mut t = TwoStageTranslator::new();
        t.map_segment(0, 0x10000, PAGE_SIZE);
        t.map_segment(PAGE_SIZE, 0x20000, PAGE_SIZE);
        assert_eq!(t.stage1(PAGE_SIZE).unwrap(), 0x20000);
        assert_eq!(t.stage1(PAGE_SIZE - 1).unwrap(), 0x10000 + PAGE_SIZE - 1);
    }

    #[test]
    fn remap_returns_old_pa() {
        let mut s2 = StageTwoTable::new();
        assert_eq!(s2.map(PageNum(1), PageNum(10)), None);
        assert_eq!(s2.map(PageNum(1), PageNum(20)), Some(PageNum(10)));
        assert_eq!(s2.unmap(PageNum(1)), Some(PageNum(20)));
        assert_eq!(s2.unmap(PageNum(1)), None);
    }
}

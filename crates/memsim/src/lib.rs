//! Guest physical-memory substrates for the simulated TEE platforms.
//!
//! Confidential-VM memory management is where the three TEEs differ most
//! (paper §II), and those differences drive the overheads ConfBench measures.
//! This crate models each platform's mechanism structurally:
//!
//! * [`Rmp`] — AMD SEV-SNP's **Reverse Map Table**: one entry per system
//!   page, tracking the owner (hypervisor or a guest ASID) and the guest's
//!   `PVALIDATE` state. Assign → validate → access; any violation is an RMP
//!   fault.
//! * [`SecureEpt`] — Intel TDX's **Secure EPT**: private GPA→HPA mappings
//!   installed by the TDX module (`TDH.MEM.PAGE.ADD`/`AUG`) and accepted by
//!   the guest (`TDG.MEM.PAGE.ACCEPT`); the *shared* bit in the GPA routes
//!   around the SEPT entirely.
//! * [`GranuleTable`] + [`StageTwoTable`] — ARM CCA's **Granule Protection
//!   Table** (four physical address spaces / worlds) and the RMM-managed
//!   stage-2 translation realms use.
//! * [`Swiotlb`] — the bounce-buffer pool confidential guests use for DMA:
//!   TDX (and SEV) cannot DMA into private memory, so every I/O byte is
//!   copied through this shared window — the mechanism behind the paper's
//!   "TDX is slower on I/O" finding.
//!
//! All structures are deterministic and pure (no I/O), so property-based
//! tests can drive them hard.
//!
//! # Example
//!
//! ```
//! use confbench_memsim::{PageNum, Rmp, RmpError};
//!
//! let mut rmp = Rmp::new(16);
//! rmp.assign(PageNum(3), 7)?;          // hypervisor gives page 3 to ASID 7
//! rmp.pvalidate(PageNum(3), 7)?;       // guest validates it
//! assert!(rmp.check_guest_access(PageNum(3), 7).is_ok());
//! assert!(rmp.check_guest_access(PageNum(3), 8).is_err()); // other guest faults
//! # Ok::<(), RmpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod granule;
mod page;
mod rmp;
mod sept;
mod swiotlb;
mod translate;

pub use granule::{GranuleError, GranuleState, GranuleTable, World};
pub use page::{pages_spanned, PageNum, PAGE_SHIFT, PAGE_SIZE};
pub use rmp::{Rmp, RmpEntry, RmpError, RmpOwner};
pub use sept::{SecureEpt, SeptError, SeptPageState, SHARED_GPA_BIT};
pub use swiotlb::{BounceStats, Swiotlb};
pub use translate::{StageTwoTable, TranslationFault, TwoStageTranslator};

/// Number of 4-KiB pages needed to hold `bytes` (rounded up).
///
/// # Example
///
/// ```
/// use confbench_memsim::pages_for;
///
/// assert_eq!(pages_for(0), 0);
/// assert_eq!(pages_for(1), 1);
/// assert_eq!(pages_for(4096), 1);
/// assert_eq!(pages_for(4097), 2);
/// ```
pub fn pages_for(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_for_boundaries() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(4095), 1);
        assert_eq!(pages_for(4096), 1);
        assert_eq!(pages_for(2 * 4096 + 1), 3);
    }
}

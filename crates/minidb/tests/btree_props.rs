//! Model-based property tests: the B+tree must behave exactly like
//! `std::collections::BTreeMap` under arbitrary command sequences, and the
//! table layer must keep indexes consistent with full scans.
//!
//! Deterministic seeded sweeps: each property draws its inputs from a
//! `SplitMix64` stream, so every CI run exercises the identical case set.

use std::collections::BTreeMap;

use confbench_crypto::SplitMix64;
use confbench_minidb::{BTree, Column, ColumnType, DbValue, Table};

const CASES: u64 = 64;

#[test]
fn btree_matches_btreemap() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xB7EE_0001 ^ case);
        let mut tree = BTree::new();
        let mut model = BTreeMap::new();
        for _ in 0..1 + rng.next_below(399) {
            let k = rng.next_below(512) as i64;
            // Weighted 3:1:1 insert/remove/get, like the original generator.
            match rng.next_below(5) {
                0..=2 => {
                    let v = rng.next_u64() as i64;
                    assert_eq!(tree.insert(k, v), model.insert(k, v), "case {case}");
                }
                3 => assert_eq!(tree.remove(&k), model.remove(&k), "case {case}"),
                _ => assert_eq!(tree.get(&k), model.get(&k), "case {case}"),
            }
            assert_eq!(tree.len(), model.len(), "case {case}");
        }
        tree.check_invariants();
        // Full iteration agrees.
        let got: Vec<(i64, i64)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(i64, i64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want, "case {case}");
    }
}

#[test]
fn btree_range_matches_btreemap() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xB7EE_0002 ^ case);
        let keys: std::collections::BTreeSet<i64> =
            (0..rng.next_below(300)).map(|_| rng.next_below(2000) as i64).collect();
        let lo = rng.next_below(2000) as i64;
        let span = rng.next_below(500) as i64;
        let mut tree = BTree::new();
        let mut model = BTreeMap::new();
        for &k in &keys {
            tree.insert(k, k);
            model.insert(k, k);
        }
        let hi = lo + span;
        let got: Vec<i64> = tree.range(&lo, &hi).map(|(k, _)| *k).collect();
        let want: Vec<i64> = model.range(lo..hi).map(|(k, _)| *k).collect();
        assert_eq!(got, want, "case {case}");
    }
}

#[test]
fn table_index_consistent_with_scan() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xB7EE_0003 ^ case);
        let values: Vec<i64> =
            (0..1 + rng.next_below(119)).map(|_| rng.next_below(64) as i64).collect();
        let lo = rng.next_below(64) as i64;
        let span = 1 + rng.next_below(31) as i64;

        let mut t = Table::new("p", vec![Column::new("v", ColumnType::Integer)]);
        t.create_index("idx", "v").unwrap();
        let mut ids = Vec::new();
        for &v in &values {
            ids.push(t.insert(vec![v.into()]).unwrap());
        }
        // Delete a third to exercise index maintenance.
        for id in ids.iter().step_by(3) {
            t.delete(*id).unwrap();
        }
        let hi = lo + span;
        let mut via_index = t.index_range("idx", &lo.into(), &hi.into()).unwrap();
        let mut via_scan =
            t.scan_filter(|row| matches!(row[0], DbValue::Integer(v) if v >= lo && v < hi));
        via_index.sort_unstable();
        via_scan.sort_unstable();
        assert_eq!(via_index, via_scan, "case {case}");
    }
}

mod sql_differential {
    use confbench_crypto::SplitMix64;
    use confbench_minidb::{run_sql, Database, DbValue, SqlOutput};

    const CASES: u64 = 48;

    /// SQL SELECT with a range predicate agrees with a hand-rolled scan
    /// over the same data, for arbitrary datasets and bounds.
    #[test]
    fn sql_select_matches_manual_scan() {
        for case in 0..CASES {
            let mut rng = SplitMix64::new(0xB7EE_0004 ^ case);
            let values: Vec<i64> =
                (0..1 + rng.next_below(59)).map(|_| rng.next_below(200) as i64 - 100).collect();
            let lo = rng.next_below(200) as i64 - 100;
            let span = rng.next_below(120) as i64;

            let mut db = Database::new();
            run_sql(&mut db, "CREATE TABLE t (v INTEGER);").unwrap();
            for v in &values {
                run_sql(&mut db, &format!("INSERT INTO t VALUES ({v});")).unwrap();
            }
            let hi = lo + span;
            let out = run_sql(
                &mut db,
                &format!("SELECT v FROM t WHERE v >= {lo} AND v < {hi} ORDER BY v;"),
            )
            .unwrap();
            let got: Vec<i64> = match &out[0] {
                SqlOutput::Rows { rows, .. } => rows
                    .iter()
                    .map(|r| match r[0] {
                        DbValue::Integer(n) => n,
                        _ => unreachable!(),
                    })
                    .collect(),
                other => panic!("{other:?}"),
            };
            let mut want: Vec<i64> =
                values.iter().copied().filter(|v| *v >= lo && *v < hi).collect();
            want.sort_unstable();
            assert_eq!(got, want, "case {case}");
        }
    }

    /// DELETE then COUNT agrees with the model.
    #[test]
    fn sql_delete_counts() {
        for case in 0..CASES {
            let mut rng = SplitMix64::new(0xB7EE_0005 ^ case);
            let values: Vec<i64> =
                (0..1 + rng.next_below(39)).map(|_| rng.next_below(50) as i64).collect();
            let cut = rng.next_below(50) as i64;

            let mut db = Database::new();
            run_sql(&mut db, "CREATE TABLE t (v INTEGER);").unwrap();
            for v in &values {
                run_sql(&mut db, &format!("INSERT INTO t VALUES ({v});")).unwrap();
            }
            let out = run_sql(&mut db, &format!("DELETE FROM t WHERE v < {cut};")).unwrap();
            let deleted = values.iter().filter(|v| **v < cut).count() as u64;
            assert_eq!(&out[0], &SqlOutput::Affected(deleted), "case {case}");
            let out = run_sql(&mut db, "SELECT * FROM t;").unwrap();
            match &out[0] {
                SqlOutput::Rows { rows, .. } => {
                    assert_eq!(rows.len() as u64, values.len() as u64 - deleted, "case {case}")
                }
                other => panic!("{other:?}"),
            }
        }
    }
}

//! Model-based property tests: the B+tree must behave exactly like
//! `std::collections::BTreeMap` under arbitrary command sequences, and the
//! table layer must keep indexes consistent with full scans.

use std::collections::BTreeMap;

use confbench_minidb::{BTree, Column, ColumnType, DbValue, Table};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Cmd {
    Insert(i64, i64),
    Remove(i64),
    Get(i64),
}

fn cmd() -> impl Strategy<Value = Cmd> {
    prop_oneof![
        3 => (0i64..512, any::<i64>()).prop_map(|(k, v)| Cmd::Insert(k, v)),
        1 => (0i64..512).prop_map(Cmd::Remove),
        1 => (0i64..512).prop_map(Cmd::Get),
    ]
}

proptest! {
    #[test]
    fn btree_matches_btreemap(cmds in proptest::collection::vec(cmd(), 1..400)) {
        let mut tree = BTree::new();
        let mut model = BTreeMap::new();
        for c in cmds {
            match c {
                Cmd::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
                }
                Cmd::Remove(k) => {
                    prop_assert_eq!(tree.remove(&k), model.remove(&k));
                }
                Cmd::Get(k) => {
                    prop_assert_eq!(tree.get(&k), model.get(&k));
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }
        tree.check_invariants();
        // Full iteration agrees.
        let got: Vec<(i64, i64)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(i64, i64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn btree_range_matches_btreemap(keys in proptest::collection::btree_set(0i64..2000, 0..300),
                                    lo in 0i64..2000, span in 0i64..500) {
        let mut tree = BTree::new();
        let mut model = BTreeMap::new();
        for &k in &keys {
            tree.insert(k, k);
            model.insert(k, k);
        }
        let hi = lo + span;
        let got: Vec<i64> = tree.range(&lo, &hi).map(|(k, _)| *k).collect();
        let want: Vec<i64> = model.range(lo..hi).map(|(k, _)| *k).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn table_index_consistent_with_scan(values in proptest::collection::vec(0i64..64, 1..120),
                                        lo in 0i64..64, span in 1i64..32) {
        let mut t = Table::new("p", vec![Column::new("v", ColumnType::Integer)]);
        t.create_index("idx", "v").unwrap();
        let mut ids = Vec::new();
        for &v in &values {
            ids.push(t.insert(vec![v.into()]).unwrap());
        }
        // Delete a third to exercise index maintenance.
        for id in ids.iter().step_by(3) {
            t.delete(*id).unwrap();
        }
        let hi = lo + span;
        let mut via_index = t.index_range("idx", &lo.into(), &hi.into()).unwrap();
        let mut via_scan = t.scan_filter(|row| {
            matches!(row[0], DbValue::Integer(v) if v >= lo && v < hi)
        });
        via_index.sort_unstable();
        via_scan.sort_unstable();
        prop_assert_eq!(via_index, via_scan);
    }
}

mod sql_differential {
    use confbench_minidb::{run_sql, Database, DbValue, SqlOutput};
    use proptest::prelude::*;

    proptest! {
        /// SQL SELECT with a range predicate agrees with a hand-rolled scan
        /// over the same data, for arbitrary datasets and bounds.
        #[test]
        fn sql_select_matches_manual_scan(values in proptest::collection::vec(-100i64..100, 1..60),
                                          lo in -100i64..100, span in 0i64..120) {
            let mut db = Database::new();
            run_sql(&mut db, "CREATE TABLE t (v INTEGER);").unwrap();
            for v in &values {
                run_sql(&mut db, &format!("INSERT INTO t VALUES ({v});")).unwrap();
            }
            let hi = lo + span;
            let out = run_sql(
                &mut db,
                &format!("SELECT v FROM t WHERE v >= {lo} AND v < {hi} ORDER BY v;"),
            )
            .unwrap();
            let got: Vec<i64> = match &out[0] {
                SqlOutput::Rows { rows, .. } => rows
                    .iter()
                    .map(|r| match r[0] {
                        DbValue::Integer(n) => n,
                        _ => unreachable!(),
                    })
                    .collect(),
                other => panic!("{other:?}"),
            };
            let mut want: Vec<i64> =
                values.iter().copied().filter(|v| *v >= lo && *v < hi).collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }

        /// DELETE then COUNT agrees with the model.
        #[test]
        fn sql_delete_counts(values in proptest::collection::vec(0i64..50, 1..40), cut in 0i64..50) {
            let mut db = Database::new();
            run_sql(&mut db, "CREATE TABLE t (v INTEGER);").unwrap();
            for v in &values {
                run_sql(&mut db, &format!("INSERT INTO t VALUES ({v});")).unwrap();
            }
            let out = run_sql(&mut db, &format!("DELETE FROM t WHERE v < {cut};")).unwrap();
            let deleted = values.iter().filter(|v| **v < cut).count() as u64;
            prop_assert_eq!(&out[0], &SqlOutput::Affected(deleted));
            let out = run_sql(&mut db, "SELECT * FROM t;").unwrap();
            match &out[0] {
                SqlOutput::Rows { rows, .. } => {
                    prop_assert_eq!(rows.len() as u64, values.len() as u64 - deleted)
                }
                other => panic!("{other:?}"),
            }
        }
    }
}

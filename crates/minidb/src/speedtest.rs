//! The `speedtest`-style stress suite (the paper's confidential-DBMS
//! workload).
//!
//! SQLite's `speedtest1.c` runs a numbered list of heterogeneous relational
//! tests scaled by a `--size` parameter (the paper keeps the default 100).
//! This module mirrors that structure: a fixed list of named tests covering
//! inserts with and without transactions and indexes, point and range
//! selects, updates, deletes, ordering, aggregation, text manipulation,
//! index lifecycle, and a vacuum-style table copy. Each test executes for
//! real against [`Database`] and returns the operation trace it generated.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use confbench_types::OpTrace;

use crate::database::{Database, DbError};
use crate::query::{aggregate, group_count, order_by, Aggregate};
use crate::table::{Column, ColumnType};
use crate::value::DbValue;

/// One named speedtest case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpeedTestCase {
    /// Individual (auto-commit) inserts.
    InsertAutocommit,
    /// Batch inserts inside one transaction.
    InsertTransaction,
    /// Batch inserts into an indexed table.
    InsertIndexed,
    /// Random point selects by rowid.
    SelectPoint,
    /// Range scans over the primary key.
    SelectRange,
    /// Range scans through a secondary index.
    SelectIndexed,
    /// Updates on an unindexed column.
    UpdateUnindexed,
    /// Updates on an indexed column (index maintenance).
    UpdateIndexed,
    /// Delete half the rows.
    DeleteHalf,
    /// Full materialized ORDER BY.
    OrderBy,
    /// Aggregates plus GROUP BY.
    AggregateGroup,
    /// Text-heavy rows (build + store long strings).
    TextHeavy,
    /// Create and drop an index on a populated table.
    IndexLifecycle,
    /// Copy every row into a fresh table (VACUUM-style rewrite).
    VacuumCopy,
    /// A mixed OLTP-ish workload.
    Mixed,
}

impl SpeedTestCase {
    /// The full suite, in execution order.
    pub const ALL: [SpeedTestCase; 15] = [
        SpeedTestCase::InsertAutocommit,
        SpeedTestCase::InsertTransaction,
        SpeedTestCase::InsertIndexed,
        SpeedTestCase::SelectPoint,
        SpeedTestCase::SelectRange,
        SpeedTestCase::SelectIndexed,
        SpeedTestCase::UpdateUnindexed,
        SpeedTestCase::UpdateIndexed,
        SpeedTestCase::DeleteHalf,
        SpeedTestCase::OrderBy,
        SpeedTestCase::AggregateGroup,
        SpeedTestCase::TextHeavy,
        SpeedTestCase::IndexLifecycle,
        SpeedTestCase::VacuumCopy,
        SpeedTestCase::Mixed,
    ];

    /// speedtest1-style display name.
    pub fn name(self) -> &'static str {
        match self {
            SpeedTestCase::InsertAutocommit => "100 INSERTs, autocommit",
            SpeedTestCase::InsertTransaction => "1000 INSERTs in a transaction",
            SpeedTestCase::InsertIndexed => "1000 INSERTs into indexed table",
            SpeedTestCase::SelectPoint => "500 SELECTs by rowid",
            SpeedTestCase::SelectRange => "100 range SELECTs",
            SpeedTestCase::SelectIndexed => "100 SELECTs via index",
            SpeedTestCase::UpdateUnindexed => "500 UPDATEs, unindexed column",
            SpeedTestCase::UpdateIndexed => "500 UPDATEs, indexed column",
            SpeedTestCase::DeleteHalf => "DELETE half the rows",
            SpeedTestCase::OrderBy => "SELECT ... ORDER BY",
            SpeedTestCase::AggregateGroup => "aggregates with GROUP BY",
            SpeedTestCase::TextHeavy => "250 INSERTs of long text",
            SpeedTestCase::IndexLifecycle => "CREATE INDEX / DROP INDEX",
            SpeedTestCase::VacuumCopy => "VACUUM-style table copy",
            SpeedTestCase::Mixed => "mixed OLTP workload",
        }
    }
}

/// Outcome of one test case.
#[derive(Debug, Clone)]
pub struct SpeedTestReport {
    /// Which test ran.
    pub case: SpeedTestCase,
    /// Rows touched (processed/returned), for sanity assertions.
    pub rows: u64,
    /// Operations the test generated.
    pub trace: OpTrace,
}

/// Runs the full suite at the given relative `size` (the paper uses 100).
///
/// # Errors
///
/// Propagates database errors (none are expected for valid sizes).
///
/// # Example
///
/// ```
/// use confbench_minidb::run_speedtest;
///
/// let reports = run_speedtest(10, 7)?;
/// assert_eq!(reports.len(), 15);
/// assert!(reports.iter().all(|r| !r.trace.is_empty()));
/// # Ok::<(), confbench_minidb::DbError>(())
/// ```
pub fn run_speedtest(size: u32, seed: u64) -> Result<Vec<SpeedTestReport>, DbError> {
    let mut runner = SpeedTest::new(size, seed);
    SpeedTestCase::ALL.iter().map(|&case| runner.run(case)).collect()
}

/// The suite runner: owns the database shared by consecutive tests (later
/// tests operate on data earlier tests created, as in speedtest1).
pub struct SpeedTest {
    db: Database,
    rng: StdRng,
    size: u32,
    rowids: Vec<i64>,
}

impl SpeedTest {
    /// Creates a runner at relative `size`.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn new(size: u32, seed: u64) -> Self {
        assert!(size > 0, "size must be positive");
        SpeedTest {
            db: Database::new(),
            rng: StdRng::seed_from_u64(seed),
            size,
            rowids: Vec::new(),
        }
    }

    fn n(&self, base: u64) -> u64 {
        (base * self.size as u64 / 100).max(4)
    }

    /// Runs one case, returning its report.
    ///
    /// # Errors
    ///
    /// Database errors.
    pub fn run(&mut self, case: SpeedTestCase) -> Result<SpeedTestReport, DbError> {
        // Each test starts with a drained trace.
        let _ = self.db.take_trace();
        let rows = match case {
            SpeedTestCase::InsertAutocommit => self.insert_autocommit()?,
            SpeedTestCase::InsertTransaction => self.insert_transaction()?,
            SpeedTestCase::InsertIndexed => self.insert_indexed()?,
            SpeedTestCase::SelectPoint => self.select_point()?,
            SpeedTestCase::SelectRange => self.select_range()?,
            SpeedTestCase::SelectIndexed => self.select_indexed()?,
            SpeedTestCase::UpdateUnindexed => self.update_column("c_text")?,
            SpeedTestCase::UpdateIndexed => self.update_column("c_int")?,
            SpeedTestCase::DeleteHalf => self.delete_half()?,
            SpeedTestCase::OrderBy => self.order_by()?,
            SpeedTestCase::AggregateGroup => self.aggregate_group()?,
            SpeedTestCase::TextHeavy => self.text_heavy()?,
            SpeedTestCase::IndexLifecycle => self.index_lifecycle()?,
            SpeedTestCase::VacuumCopy => self.vacuum_copy()?,
            SpeedTestCase::Mixed => self.mixed()?,
        };
        Ok(SpeedTestReport { case, rows, trace: self.db.take_trace() })
    }

    fn schema() -> Vec<Column> {
        vec![
            Column::new("c_int", ColumnType::Integer),
            Column::new("c_real", ColumnType::Real),
            Column::new("c_text", ColumnType::Text),
        ]
    }

    fn random_row(&mut self) -> Vec<DbValue> {
        let n: i64 = self.rng.gen_range(0..1_000_000);
        vec![
            n.into(),
            (n as f64 / 7.0).into(),
            format!("row number {n} spelled out for padding purposes").into(),
        ]
    }

    fn main_table(&mut self) -> Result<(), DbError> {
        if self.db.table("main").is_err() {
            self.db.create_table("main", Self::schema())?;
        }
        Ok(())
    }

    fn insert_autocommit(&mut self) -> Result<u64, DbError> {
        self.main_table()?;
        let n = self.n(100);
        for _ in 0..n {
            let row = self.random_row();
            let id = self.db.insert("main", row)?;
            self.rowids.push(id);
        }
        Ok(n)
    }

    fn insert_transaction(&mut self) -> Result<u64, DbError> {
        self.main_table()?;
        let n = self.n(1000);
        self.db.begin()?;
        for _ in 0..n {
            let row = self.random_row();
            let id = self.db.insert("main", row)?;
            self.rowids.push(id);
        }
        self.db.commit()?;
        Ok(n)
    }

    fn insert_indexed(&mut self) -> Result<u64, DbError> {
        if self.db.table("indexed").is_err() {
            self.db.create_table("indexed", Self::schema())?;
            self.db.create_index("indexed", "idx_int", "c_int")?;
        }
        let n = self.n(1000);
        self.db.begin()?;
        for _ in 0..n {
            let row = self.random_row();
            self.db.insert("indexed", row)?;
        }
        self.db.commit()?;
        Ok(n)
    }

    fn select_point(&mut self) -> Result<u64, DbError> {
        let n = self.n(500);
        let mut hits = 0;
        for _ in 0..n {
            let idx = self.rng.gen_range(0..self.rowids.len());
            if self.db.select("main", self.rowids[idx])?.is_some() {
                hits += 1;
            }
        }
        Ok(hits)
    }

    fn select_range(&mut self) -> Result<u64, DbError> {
        let n = self.n(100);
        let mut rows = 0u64;
        for _ in 0..n {
            let lo = self.rng.gen_range(0..self.rowids.len() as i64);
            let mut in_range = 0u64;
            self.db.table("main")?.scan(|rowid, _| {
                if rowid >= lo && rowid < lo + 50 {
                    in_range += 1;
                }
            });
            rows += in_range;
            self.db.charge_scan(self.rowids.len() as u64, 64);
        }
        Ok(rows)
    }

    fn select_indexed(&mut self) -> Result<u64, DbError> {
        let n = self.n(100);
        let mut rows = 0u64;
        for _ in 0..n {
            let lo: i64 = self.rng.gen_range(0..999_000);
            let hits = self.db.table("indexed")?.index_range(
                "idx_int",
                &lo.into(),
                &(lo + 1000).into(),
            )?;
            rows += hits.len() as u64;
            self.db.charge_scan(hits.len() as u64 + 3, 64);
        }
        Ok(rows)
    }

    fn update_column(&mut self, column: &str) -> Result<u64, DbError> {
        let n = self.n(500);
        self.db.begin()?;
        for _ in 0..n {
            let idx = self.rng.gen_range(0..self.rowids.len());
            let rowid = self.rowids[idx];
            let value: DbValue = if column == "c_int" {
                self.rng.gen_range(0i64..1_000_000).into()
            } else {
                format!("updated text {}", self.rng.gen_range(0..1000)).into()
            };
            if self.db.table("main")?.get(rowid).is_some() {
                self.db.update("main", rowid, column, value)?;
            }
        }
        self.db.commit()?;
        Ok(n)
    }

    fn delete_half(&mut self) -> Result<u64, DbError> {
        self.db.begin()?;
        let victims: Vec<i64> = self.rowids.iter().copied().step_by(2).collect();
        let mut deleted = 0;
        for rowid in &victims {
            if self.db.table("main")?.get(*rowid).is_some() {
                self.db.delete("main", *rowid)?;
                deleted += 1;
            }
        }
        self.db.commit()?;
        self.rowids = self.rowids.iter().copied().skip(1).step_by(2).collect();
        Ok(deleted)
    }

    fn order_by(&mut self) -> Result<u64, DbError> {
        let rows = order_by(self.db.table("main")?, "c_int").map_err(DbError::from)?;
        let count = rows.len() as u64;
        // Sorting is O(n log n) compares plus a full materialization.
        self.db.charge_scan(count.max(1) * 17, 64);
        Ok(count)
    }

    fn aggregate_group(&mut self) -> Result<u64, DbError> {
        let table = self.db.table("main")?;
        let count = match aggregate(table, "c_int", Aggregate::Count).map_err(DbError::from)? {
            DbValue::Integer(n) => n as u64,
            _ => 0,
        };
        let _ = aggregate(table, "c_real", Aggregate::Avg).map_err(DbError::from)?;
        let groups = group_count(table, "c_text").map_err(DbError::from)?;
        self.db.charge_scan(count * 3, 64);
        Ok(groups.len() as u64)
    }

    fn text_heavy(&mut self) -> Result<u64, DbError> {
        if self.db.table("texts").is_err() {
            self.db.create_table("texts", vec![Column::new("body", ColumnType::Text)])?;
        }
        let n = self.n(250);
        self.db.begin()?;
        for i in 0..n {
            let mut body = String::with_capacity(600);
            for w in 0..40 {
                body.push_str(&format!("word{} ", (i * 31 + w * 7) % 997));
            }
            self.db.insert("texts", vec![body.into()])?;
        }
        self.db.commit()?;
        Ok(n)
    }

    fn index_lifecycle(&mut self) -> Result<u64, DbError> {
        let rows = self.db.table("main")?.len() as u64;
        self.db.create_index("main", "idx_tmp", "c_real")?;
        self.db.drop_index("main", "idx_tmp")?;
        Ok(rows)
    }

    fn vacuum_copy(&mut self) -> Result<u64, DbError> {
        if self.db.table("main_copy").is_ok() {
            self.db.drop_table("main_copy")?;
        }
        self.db.create_table("main_copy", Self::schema())?;
        let rows: Vec<Vec<DbValue>> = {
            let mut out = Vec::new();
            self.db.table("main")?.scan(|_, row| out.push(row.clone()));
            out
        };
        let count = rows.len() as u64;
        self.db.begin()?;
        for row in rows {
            self.db.insert("main_copy", row)?;
        }
        self.db.commit()?;
        Ok(count)
    }

    fn mixed(&mut self) -> Result<u64, DbError> {
        let n = self.n(400);
        let mut ops = 0;
        for i in 0..n {
            match i % 5 {
                0 | 1 => {
                    let row = self.random_row();
                    let id = self.db.insert("main", row)?;
                    self.rowids.push(id);
                }
                2 | 3 => {
                    let idx = self.rng.gen_range(0..self.rowids.len());
                    let _ = self.db.select("main", self.rowids[idx])?;
                }
                _ => {
                    let idx = self.rng.gen_range(0..self.rowids.len());
                    let rowid = self.rowids[idx];
                    if self.db.table("main")?.get(rowid).is_some() {
                        self.db.update("main", rowid, "c_real", (i as f64).into())?;
                    }
                }
            }
            ops += 1;
        }
        Ok(ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_suite_runs_and_produces_traces() {
        let reports = run_speedtest(10, 1).unwrap();
        assert_eq!(reports.len(), SpeedTestCase::ALL.len());
        for r in &reports {
            assert!(!r.trace.is_empty(), "{:?} produced no trace", r.case);
            assert!(r.rows > 0, "{:?} touched no rows", r.case);
        }
    }

    #[test]
    fn suite_is_deterministic() {
        let a = run_speedtest(10, 42).unwrap();
        let b = run_speedtest(10, 42).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rows, y.rows);
            assert_eq!(x.trace, y.trace, "{:?}", x.case);
        }
    }

    #[test]
    fn size_scales_work() {
        let small = run_speedtest(10, 1).unwrap();
        let large = run_speedtest(40, 1).unwrap();
        let total = |rs: &[SpeedTestReport]| {
            rs.iter().map(|r| r.trace.total_cpu_ops() + r.trace.total_io_bytes()).sum::<u64>()
        };
        assert!(total(&large) > 2 * total(&small));
    }

    #[test]
    fn autocommit_inserts_are_io_heavier_per_row_than_txn() {
        let reports = run_speedtest(20, 3).unwrap();
        let per_row = |case: SpeedTestCase| {
            let r = reports.iter().find(|r| r.case == case).unwrap();
            (r.trace.total_syscalls() as f64) / r.rows as f64
        };
        assert!(
            per_row(SpeedTestCase::InsertAutocommit)
                > 2.0 * per_row(SpeedTestCase::InsertTransaction),
            "autocommit pays fsync per row"
        );
    }

    #[test]
    fn case_names_match_speedtest1_style() {
        assert!(SpeedTestCase::InsertTransaction.name().contains("transaction"));
        let names: Vec<_> = SpeedTestCase::ALL.iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len(), "names are unique");
    }

    #[test]
    #[should_panic(expected = "size must be positive")]
    fn zero_size_rejected() {
        SpeedTest::new(0, 1);
    }
}

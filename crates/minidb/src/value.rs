//! Database values and rows.

use std::cmp::Ordering;
use std::fmt;

/// A dynamically-typed database value.
#[derive(Debug, Clone, PartialEq)]
pub enum DbValue {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Integer(i64),
    /// 64-bit float.
    Real(f64),
    /// UTF-8 text.
    Text(String),
}

impl DbValue {
    /// The type name used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            DbValue::Null => "null",
            DbValue::Integer(_) => "integer",
            DbValue::Real(_) => "real",
            DbValue::Text(_) => "text",
        }
    }

    /// Approximate storage footprint in bytes (used for I/O accounting).
    pub fn byte_len(&self) -> u64 {
        match self {
            DbValue::Null => 1,
            DbValue::Integer(_) | DbValue::Real(_) => 8,
            DbValue::Text(s) => s.len() as u64 + 2,
        }
    }

    /// SQLite-style total ordering across types:
    /// `NULL < numbers < text`, numbers compare numerically across
    /// integer/real.
    pub fn total_cmp(&self, other: &DbValue) -> Ordering {
        use DbValue::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Integer(a), Integer(b)) => a.cmp(b),
            (Real(a), Real(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Integer(a), Real(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Real(a), Integer(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Text(a), Text(b)) => a.cmp(b),
            (Text(_), _) => Ordering::Greater,
            (_, Text(_)) => Ordering::Less,
        }
    }
}

impl fmt::Display for DbValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbValue::Null => f.write_str("NULL"),
            DbValue::Integer(n) => write!(f, "{n}"),
            DbValue::Real(x) => write!(f, "{x}"),
            DbValue::Text(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for DbValue {
    fn from(n: i64) -> Self {
        DbValue::Integer(n)
    }
}

impl From<f64> for DbValue {
    fn from(x: f64) -> Self {
        DbValue::Real(x)
    }
}

impl From<&str> for DbValue {
    fn from(s: &str) -> Self {
        DbValue::Text(s.to_owned())
    }
}

impl From<String> for DbValue {
    fn from(s: String) -> Self {
        DbValue::Text(s)
    }
}

/// A key wrapper giving [`DbValue`] `Ord` via [`DbValue::total_cmp`], so it
/// can key a B+tree index.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexKey(pub DbValue, pub i64);

impl Eq for IndexKey {}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// A table row.
pub type Row = Vec<DbValue>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_ordering_matches_sqlite() {
        let null = DbValue::Null;
        let int = DbValue::Integer(5);
        let real = DbValue::Real(5.5);
        let text = DbValue::Text("a".into());
        assert_eq!(null.total_cmp(&int), Ordering::Less);
        assert_eq!(int.total_cmp(&real), Ordering::Less);
        assert_eq!(real.total_cmp(&text), Ordering::Less);
        assert_eq!(DbValue::Integer(5).total_cmp(&DbValue::Real(5.0)), Ordering::Equal);
    }

    #[test]
    fn index_key_breaks_ties_by_rowid() {
        let a = IndexKey(DbValue::Integer(1), 10);
        let b = IndexKey(DbValue::Integer(1), 20);
        assert!(a < b);
        let c = IndexKey(DbValue::Integer(2), 0);
        assert!(b < c);
    }

    #[test]
    fn byte_len_accounts_text() {
        assert_eq!(DbValue::Null.byte_len(), 1);
        assert_eq!(DbValue::Integer(0).byte_len(), 8);
        assert_eq!(DbValue::Text("abcd".into()).byte_len(), 6);
    }

    #[test]
    fn display_quotes_text() {
        assert_eq!(DbValue::Text("x".into()).to_string(), "'x'");
        assert_eq!(DbValue::Null.to_string(), "NULL");
    }
}

//! Query helpers: ordering, aggregation and grouping over tables.

use std::collections::HashMap;

use crate::table::{Table, TableError};
use crate::value::{DbValue, Row};

/// An aggregate function over one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Row count (NULLs included).
    Count,
    /// Numeric sum (NULLs skipped).
    Sum,
    /// Numeric mean (NULLs skipped).
    Avg,
    /// Minimum by [`DbValue::total_cmp`].
    Min,
    /// Maximum by [`DbValue::total_cmp`].
    Max,
}

/// Computes an aggregate of `column` over every row of `table`.
///
/// # Errors
///
/// [`TableError::NoSuchColumn`].
///
/// # Example
///
/// ```
/// use confbench_minidb::{aggregate, Aggregate, Column, ColumnType, DbValue, Table};
///
/// let mut t = Table::new("n", vec![Column::new("x", ColumnType::Integer)]);
/// for i in 1..=4i64 { t.insert(vec![i.into()])?; }
/// assert_eq!(aggregate(&t, "x", Aggregate::Sum)?, DbValue::Real(10.0));
/// assert_eq!(aggregate(&t, "x", Aggregate::Count)?, DbValue::Integer(4));
/// # Ok::<(), confbench_minidb::TableError>(())
/// ```
pub fn aggregate(table: &Table, column: &str, agg: Aggregate) -> Result<DbValue, TableError> {
    let col = table.column_index(column)?;
    let mut count = 0i64;
    let mut sum = 0.0f64;
    let mut numeric = 0i64;
    let mut min: Option<DbValue> = None;
    let mut max: Option<DbValue> = None;
    table.scan(|_, row| {
        count += 1;
        let v = &row[col];
        if let Some(x) = numeric_of(v) {
            sum += x;
            numeric += 1;
        }
        if !matches!(v, DbValue::Null) {
            if min.as_ref().map(|m| v.total_cmp(m).is_lt()).unwrap_or(true) {
                min = Some(v.clone());
            }
            if max.as_ref().map(|m| v.total_cmp(m).is_gt()).unwrap_or(true) {
                max = Some(v.clone());
            }
        }
    });
    Ok(match agg {
        Aggregate::Count => DbValue::Integer(count),
        Aggregate::Sum => DbValue::Real(sum),
        Aggregate::Avg => {
            if numeric == 0 {
                DbValue::Null
            } else {
                DbValue::Real(sum / numeric as f64)
            }
        }
        Aggregate::Min => min.unwrap_or(DbValue::Null),
        Aggregate::Max => max.unwrap_or(DbValue::Null),
    })
}

/// Returns all rows ordered by `column` (ascending, SQLite cross-type
/// order), materialized.
///
/// # Errors
///
/// [`TableError::NoSuchColumn`].
pub fn order_by(table: &Table, column: &str) -> Result<Vec<Row>, TableError> {
    let col = table.column_index(column)?;
    let mut rows: Vec<Row> = Vec::with_capacity(table.len());
    table.scan(|_, row| rows.push(row.clone()));
    rows.sort_by(|a, b| a[col].total_cmp(&b[col]));
    Ok(rows)
}

/// Groups rows by the rendered value of `group_col` and counts each group.
///
/// # Errors
///
/// [`TableError::NoSuchColumn`].
pub fn group_count(table: &Table, group_col: &str) -> Result<HashMap<String, i64>, TableError> {
    let col = table.column_index(group_col)?;
    let mut groups = HashMap::new();
    table.scan(|_, row| {
        *groups.entry(row[col].to_string()).or_insert(0) += 1;
    });
    Ok(groups)
}

fn numeric_of(v: &DbValue) -> Option<f64> {
    match v {
        DbValue::Integer(n) => Some(*n as f64),
        DbValue::Real(x) => Some(*x),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Column, ColumnType};

    fn table() -> Table {
        let mut t = Table::new(
            "t",
            vec![Column::new("n", ColumnType::Integer), Column::new("g", ColumnType::Text)],
        );
        for i in 0..10i64 {
            let g = if i % 2 == 0 { "even" } else { "odd" };
            t.insert(vec![i.into(), g.into()]).unwrap();
        }
        t
    }

    #[test]
    fn aggregates_known_values() {
        let t = table();
        assert_eq!(aggregate(&t, "n", Aggregate::Count).unwrap(), DbValue::Integer(10));
        assert_eq!(aggregate(&t, "n", Aggregate::Sum).unwrap(), DbValue::Real(45.0));
        assert_eq!(aggregate(&t, "n", Aggregate::Avg).unwrap(), DbValue::Real(4.5));
        assert_eq!(aggregate(&t, "n", Aggregate::Min).unwrap(), DbValue::Integer(0));
        assert_eq!(aggregate(&t, "n", Aggregate::Max).unwrap(), DbValue::Integer(9));
    }

    #[test]
    fn aggregates_handle_nulls() {
        let mut t = Table::new("t", vec![Column::new("n", ColumnType::Integer)]);
        t.insert(vec![DbValue::Null]).unwrap();
        assert_eq!(aggregate(&t, "n", Aggregate::Count).unwrap(), DbValue::Integer(1));
        assert_eq!(aggregate(&t, "n", Aggregate::Avg).unwrap(), DbValue::Null);
        assert_eq!(aggregate(&t, "n", Aggregate::Min).unwrap(), DbValue::Null);
    }

    #[test]
    fn order_by_sorts() {
        let mut t = Table::new("t", vec![Column::new("n", ColumnType::Integer)]);
        for v in [5i64, 1, 9, 3] {
            t.insert(vec![v.into()]).unwrap();
        }
        let rows = order_by(&t, "n").unwrap();
        let got: Vec<i64> = rows
            .iter()
            .map(|r| match r[0] {
                DbValue::Integer(n) => n,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, vec![1, 3, 5, 9]);
    }

    #[test]
    fn group_count_partitions() {
        let t = table();
        let groups = group_count(&t, "g").unwrap();
        assert_eq!(groups["'even'"], 5);
        assert_eq!(groups["'odd'"], 5);
    }

    #[test]
    fn unknown_column_errors() {
        let t = table();
        assert!(aggregate(&t, "zzz", Aggregate::Count).is_err());
        assert!(order_by(&t, "zzz").is_err());
        assert!(group_count(&t, "zzz").is_err());
    }
}

//! The database: named tables, transactions with an undo journal, and
//! operation-trace instrumentation.
//!
//! Every statement records the abstract operations a real embedded engine
//! performs — B+tree node traffic, page allocation for splits, journal
//! writes, and the fsync at each commit boundary — into a
//! [`confbench_types::OpTrace`] so a simulated VM can charge platform costs.
//! The fsync channel (a `FileWrite` syscall burst, journal I/O, and a
//! sleep/wake context switch) is what makes the DBMS stress test
//! syscall-heavy, the property behind the paper's CCA findings (§IV-C).

use std::collections::HashMap;
use std::fmt;

use confbench_types::{OpTrace, SyscallKind};

use crate::table::{Column, Table, TableError};
use crate::value::{DbValue, Row};

/// Errors from database-level operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Named table does not exist.
    NoSuchTable(String),
    /// A table with this name already exists.
    TableExists(String),
    /// Transaction state violation.
    TxnState(&'static str),
    /// Underlying table error.
    Table(TableError),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::NoSuchTable(name) => write!(f, "no such table: {name}"),
            DbError::TableExists(name) => write!(f, "table already exists: {name}"),
            DbError::TxnState(msg) => write!(f, "transaction error: {msg}"),
            DbError::Table(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Table(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TableError> for DbError {
    fn from(e: TableError) -> Self {
        DbError::Table(e)
    }
}

enum Undo {
    Insert { table: String, rowid: i64 },
    Update { table: String, rowid: i64, column: String, old: DbValue },
    Delete { table: String, rowid: i64, row: Row },
}

/// An embedded relational database.
///
/// # Example
///
/// ```
/// use confbench_minidb::{Column, ColumnType, Database, DbValue};
///
/// let mut db = Database::new();
/// db.create_table("kv", vec![
///     Column::new("k", ColumnType::Integer),
///     Column::new("v", ColumnType::Text),
/// ])?;
/// db.begin()?;
/// let id = db.insert("kv", vec![1i64.into(), "one".into()])?;
/// db.commit()?;
/// assert_eq!(db.table("kv")?.get(id).unwrap()[1], DbValue::Text("one".into()));
/// # Ok::<(), confbench_minidb::DbError>(())
/// ```
pub struct Database {
    tables: HashMap<String, Table>,
    trace: OpTrace,
    journal: Vec<Undo>,
    journal_bytes: u64,
    in_txn: bool,
    nodes_seen: u64,
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

/// Modelled B+tree node size (one storage page per node).
const NODE_BYTES: u64 = 4096;

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database {
            tables: HashMap::new(),
            trace: OpTrace::new(),
            journal: Vec::new(),
            journal_bytes: 0,
            in_txn: false,
            nodes_seen: 0,
        }
    }

    /// Creates a table.
    ///
    /// # Errors
    ///
    /// [`DbError::TableExists`].
    pub fn create_table(&mut self, name: &str, columns: Vec<Column>) -> Result<(), DbError> {
        if self.tables.contains_key(name) {
            return Err(DbError::TableExists(name.to_owned()));
        }
        self.trace.syscall(SyscallKind::FileMeta, 2); // create + open
        self.trace.alloc(NODE_BYTES);
        self.tables.insert(name.to_owned(), Table::new(name, columns));
        Ok(())
    }

    /// Drops a table.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`].
    pub fn drop_table(&mut self, name: &str) -> Result<(), DbError> {
        self.tables.remove(name).ok_or_else(|| DbError::NoSuchTable(name.to_owned()))?;
        self.trace.syscall(SyscallKind::FileMeta, 1);
        Ok(())
    }

    /// Read access to a table.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`].
    pub fn table(&self, name: &str) -> Result<&Table, DbError> {
        self.tables.get(name).ok_or_else(|| DbError::NoSuchTable(name.to_owned()))
    }

    /// Table names, unordered.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Starts a transaction.
    ///
    /// # Errors
    ///
    /// [`DbError::TxnState`] when one is already open.
    pub fn begin(&mut self) -> Result<(), DbError> {
        if self.in_txn {
            return Err(DbError::TxnState("transaction already open"));
        }
        self.in_txn = true;
        self.trace.syscall(SyscallKind::FileMeta, 1); // journal open
        Ok(())
    }

    /// Commits the open transaction: journal flush + fsync.
    ///
    /// # Errors
    ///
    /// [`DbError::TxnState`] without an open transaction.
    pub fn commit(&mut self) -> Result<(), DbError> {
        if !self.in_txn {
            return Err(DbError::TxnState("no open transaction"));
        }
        self.fsync();
        self.journal.clear();
        self.journal_bytes = 0;
        self.in_txn = false;
        Ok(())
    }

    /// Rolls back the open transaction, undoing every statement.
    ///
    /// # Errors
    ///
    /// [`DbError::TxnState`] without an open transaction.
    pub fn rollback(&mut self) -> Result<(), DbError> {
        if !self.in_txn {
            return Err(DbError::TxnState("no open transaction"));
        }
        while let Some(undo) = self.journal.pop() {
            match undo {
                Undo::Insert { table, rowid } => {
                    if let Some(t) = self.tables.get_mut(&table) {
                        let _ = t.delete(rowid);
                    }
                }
                Undo::Update { table, rowid, column, old } => {
                    if let Some(t) = self.tables.get_mut(&table) {
                        let _ = t.update(rowid, &column, old);
                    }
                }
                Undo::Delete { table, rowid, row } => {
                    if let Some(t) = self.tables.get_mut(&table) {
                        t.restore(rowid, row);
                    }
                }
            }
        }
        self.journal_bytes = 0;
        self.in_txn = false;
        self.trace.syscall(SyscallKind::FileMeta, 1); // journal unlink
        Ok(())
    }

    /// Inserts a row, auto-committing (with fsync) outside a transaction.
    ///
    /// # Errors
    ///
    /// Table errors.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<i64, DbError> {
        let row_len: u64 = row.iter().map(DbValue::byte_len).sum();
        let t = self.table_mut(table)?;
        let rowid = t.insert(row)?;
        self.after_write(table, row_len, Undo::Insert { table: table.to_owned(), rowid });
        Ok(rowid)
    }

    /// Updates one column of one row (auto-commit semantics as
    /// [`Database::insert`]).
    ///
    /// # Errors
    ///
    /// Table errors.
    pub fn update(
        &mut self,
        table: &str,
        rowid: i64,
        column: &str,
        value: DbValue,
    ) -> Result<(), DbError> {
        let bytes = value.byte_len();
        let t = self.table_mut(table)?;
        let col = t.column_index(column)?;
        let old = t.get(rowid).ok_or(TableError::NoSuchRow(rowid))?[col].clone();
        t.update(rowid, column, value)?;
        self.after_write(
            table,
            bytes,
            Undo::Update { table: table.to_owned(), rowid, column: column.to_owned(), old },
        );
        Ok(())
    }

    /// Deletes one row (auto-commit semantics as [`Database::insert`]).
    ///
    /// # Errors
    ///
    /// Table errors.
    pub fn delete(&mut self, table: &str, rowid: i64) -> Result<(), DbError> {
        let t = self.table_mut(table)?;
        let row = t.delete(rowid)?;
        let bytes: u64 = row.iter().map(DbValue::byte_len).sum();
        self.after_write(table, bytes, Undo::Delete { table: table.to_owned(), rowid, row });
        Ok(())
    }

    /// Point lookup, charging read traffic.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`].
    pub fn select(&mut self, table: &str, rowid: i64) -> Result<Option<Row>, DbError> {
        let row = self.table(table)?.get(rowid).cloned();
        self.trace.cpu(400); // descent + comparisons
        self.trace.mem_read(3 * 64); // ~3 node touches
        self.trace.syscall(SyscallKind::FileRead, 1); // page-cache-missing pread
        Ok(row)
    }

    /// Creates an index, charging the build scan.
    ///
    /// # Errors
    ///
    /// Table errors.
    pub fn create_index(&mut self, table: &str, index: &str, column: &str) -> Result<(), DbError> {
        let rows;
        {
            let t = self.table_mut(table)?;
            t.create_index(index, column)?;
            rows = t.len() as u64;
        }
        self.trace.cpu(600 * rows);
        self.trace.mem_read(rows * 80);
        self.trace.alloc(rows / 20 * NODE_BYTES);
        self.fsync();
        Ok(())
    }

    /// Drops an index.
    ///
    /// # Errors
    ///
    /// Table errors.
    pub fn drop_index(&mut self, table: &str, index: &str) -> Result<(), DbError> {
        self.table_mut(table)?.drop_index(index)?;
        self.trace.syscall(SyscallKind::FileMeta, 1);
        Ok(())
    }

    /// The accumulated operation trace, draining it.
    pub fn take_trace(&mut self) -> OpTrace {
        std::mem::replace(&mut self.trace, OpTrace::new())
    }

    /// Read-only view of the accumulated trace.
    pub fn trace(&self) -> &OpTrace {
        &self.trace
    }

    /// Records read traffic for query-layer scans (`rows` rows of
    /// `bytes_per_row` average size).
    pub fn charge_scan(&mut self, rows: u64, bytes_per_row: u64) {
        self.trace.cpu(rows * 120);
        self.trace.mem_read(rows * bytes_per_row.max(16));
        // Sequential preads as the scan walks file pages (readahead
        // batches them, but each batch is still a syscall).
        self.trace.syscall(SyscallKind::FileRead, rows / 48 + 1);
    }

    fn table_mut(&mut self, name: &str) -> Result<&mut Table, DbError> {
        self.tables.get_mut(name).ok_or_else(|| DbError::NoSuchTable(name.to_owned()))
    }

    fn after_write(&mut self, table: &str, payload_bytes: u64, undo: Undo) {
        // B+tree write path: descent, node dirtying, possible splits.
        self.trace.cpu(900 + payload_bytes * 4);
        self.trace.mem_write(4 * 64 + payload_bytes);
        let nodes_now: u64 = self.tables.values().map(Table::nodes_allocated).sum();
        if nodes_now > self.nodes_seen {
            self.trace.alloc((nodes_now - self.nodes_seen) * NODE_BYTES);
            self.nodes_seen = nodes_now;
        }
        let _ = table;
        self.journal_bytes += payload_bytes + 24;
        if self.in_txn {
            self.journal.push(undo);
        } else {
            // Auto-commit: every statement pays the journal + fsync price,
            // exactly why speedtest1 runs its insert batches both ways.
            self.fsync();
            self.journal_bytes = 0;
        }
    }

    fn fsync(&mut self) {
        let bytes = self.journal_bytes.max(512);
        self.trace.syscall(SyscallKind::FileWrite, 4); // journal hdr+payload, db page, superblock
        self.trace.io_write(bytes);
        self.trace.syscall(SyscallKind::FileMeta, 2); // fsync barriers
                                                      // Sleep until the storage device acknowledges the flush: host-side
                                                      // latency, which is what makes real DBMS overheads tiny on
                                                      // hardware TEEs (the exits are noise next to the device wait).
        self.trace.device_wait(40_000);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ColumnType;
    use confbench_types::Op;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "t",
            vec![Column::new("a", ColumnType::Integer), Column::new("b", ColumnType::Text)],
        )
        .unwrap();
        db
    }

    #[test]
    fn create_duplicate_table_rejected() {
        let mut d = db();
        assert!(matches!(
            d.create_table("t", vec![Column::new("x", ColumnType::Integer)]),
            Err(DbError::TableExists(_))
        ));
        d.drop_table("t").unwrap();
        assert!(matches!(d.drop_table("t"), Err(DbError::NoSuchTable(_))));
    }

    #[test]
    fn txn_commit_keeps_rows() {
        let mut d = db();
        d.begin().unwrap();
        let id = d.insert("t", vec![1i64.into(), "x".into()]).unwrap();
        d.commit().unwrap();
        assert!(d.table("t").unwrap().get(id).is_some());
    }

    #[test]
    fn txn_rollback_undoes_everything() {
        let mut d = db();
        let keep = d.insert("t", vec![0i64.into(), "keep".into()]).unwrap();
        d.begin().unwrap();
        let added = d.insert("t", vec![1i64.into(), "x".into()]).unwrap();
        d.update("t", keep, "b", "changed".into()).unwrap();
        d.delete("t", keep).unwrap();
        d.rollback().unwrap();
        let t = d.table("t").unwrap();
        assert!(t.get(added).is_none(), "insert undone");
        assert_eq!(t.get(keep).unwrap()[1], DbValue::Text("keep".into()), "update+delete undone");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn nested_begin_rejected() {
        let mut d = db();
        d.begin().unwrap();
        assert!(matches!(d.begin(), Err(DbError::TxnState(_))));
        d.commit().unwrap();
        assert!(matches!(d.commit(), Err(DbError::TxnState(_))));
        assert!(matches!(d.rollback(), Err(DbError::TxnState(_))));
    }

    #[test]
    fn autocommit_fsyncs_per_statement_txn_batches() {
        let count_ctx =
            |d: &Database| d.trace().iter().filter(|op| matches!(op, Op::DeviceWait(_))).count();
        let mut auto = db();
        for i in 0..10 {
            auto.insert("t", vec![i.into(), "x".into()]).unwrap();
        }
        let mut batched = db();
        batched.begin().unwrap();
        for i in 0..10 {
            batched.insert("t", vec![i.into(), "x".into()]).unwrap();
        }
        batched.commit().unwrap();
        assert!(count_ctx(&auto) >= 10, "auto-commit fsyncs per statement: {}", count_ctx(&auto));
        assert!(count_ctx(&batched) <= 2, "txn fsyncs once: {}", count_ctx(&batched));
    }

    #[test]
    fn trace_accumulates_and_drains() {
        let mut d = db();
        d.insert("t", vec![1i64.into(), "x".into()]).unwrap();
        assert!(!d.trace().is_empty());
        let taken = d.take_trace();
        assert!(!taken.is_empty());
        assert!(d.trace().is_empty());
    }

    #[test]
    fn select_returns_row_and_charges_reads() {
        let mut d = db();
        let id = d.insert("t", vec![5i64.into(), "hi".into()]).unwrap();
        let before = d.trace().len();
        let row = d.select("t", id).unwrap().unwrap();
        assert_eq!(row[0], DbValue::Integer(5));
        assert!(d.trace().len() > before);
        assert_eq!(d.select("t", 999).unwrap(), None);
    }

    #[test]
    fn index_lifecycle_via_database() {
        let mut d = db();
        for i in 0..30 {
            d.insert("t", vec![i.into(), "x".into()]).unwrap();
        }
        d.create_index("t", "idx", "a").unwrap();
        let hits = d.table("t").unwrap().index_range("idx", &5i64.into(), &10i64.into()).unwrap();
        assert_eq!(hits.len(), 5);
        d.drop_index("t", "idx").unwrap();
        assert!(d.table("t").unwrap().index_range("idx", &0i64.into(), &1i64.into()).is_err());
    }
}

//! A small SQL front-end over [`Database`].
//!
//! Covers the dialect the speedtest workload exercises — DDL, DML,
//! single-table queries with `WHERE` conjunctions, `ORDER BY`, `LIMIT`, and
//! transactions:
//!
//! ```sql
//! CREATE TABLE t (a INTEGER, b TEXT, c REAL);
//! CREATE INDEX idx ON t (a);
//! INSERT INTO t VALUES (1, 'one', 1.5);
//! SELECT b, c FROM t WHERE a >= 1 AND b != 'two' ORDER BY c DESC LIMIT 10;
//! UPDATE t SET b = 'uno' WHERE a = 1;
//! DELETE FROM t WHERE c < 1.0;
//! BEGIN; ...; COMMIT;  -- or ROLLBACK
//! DROP TABLE t;
//! ```

use std::fmt;

use crate::database::{Database, DbError};
use crate::table::{Column, ColumnType};
use crate::value::{DbValue, Row};

/// Errors from SQL parsing or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical or syntactic problem.
    Parse(String),
    /// Execution-time problem (missing table/column, type error, …).
    Exec(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(msg) => write!(f, "sql parse error: {msg}"),
            SqlError::Exec(msg) => write!(f, "sql execution error: {msg}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<DbError> for SqlError {
    fn from(e: DbError) -> Self {
        SqlError::Exec(e.to_string())
    }
}

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlOutput {
    /// DDL/transaction statements.
    Done,
    /// Rows touched by INSERT/UPDATE/DELETE.
    Affected(u64),
    /// A result set: column headers plus rows.
    Rows {
        /// Selected column names.
        columns: Vec<String>,
        /// Result rows.
        rows: Vec<Row>,
    },
}

/// Comparison operators in `WHERE`/`SET` clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn matches(self, left: &DbValue, right: &DbValue) -> bool {
        // SQL semantics: comparisons with NULL are never true.
        if matches!(left, DbValue::Null) || matches!(right, DbValue::Null) {
            return false;
        }
        let ord = left.total_cmp(right);
        match self {
            CmpOp::Eq => ord.is_eq(),
            CmpOp::Ne => ord.is_ne(),
            CmpOp::Lt => ord.is_lt(),
            CmpOp::Le => ord.is_le(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::Ge => ord.is_ge(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Predicate {
    column: String,
    op: CmpOp,
    value: DbValue,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
enum Statement {
    CreateTable {
        name: String,
        columns: Vec<Column>,
    },
    DropTable {
        name: String,
    },
    CreateIndex {
        index: String,
        table: String,
        column: String,
    },
    DropIndex {
        index: String,
        table: String,
    },
    Insert {
        table: String,
        values: Vec<DbValue>,
    },
    Select {
        table: String,
        columns: Option<Vec<String>>, // None = *
        predicates: Vec<Predicate>,
        order_by: Option<(String, bool)>, // (column, descending)
        limit: Option<usize>,
    },
    Update {
        table: String,
        column: String,
        value: DbValue,
        predicates: Vec<Predicate>,
    },
    Delete {
        table: String,
        predicates: Vec<Predicate>,
    },
    Begin,
    Commit,
    Rollback,
}

/// Executes a semicolon-separated SQL script, returning one output per
/// statement.
///
/// # Errors
///
/// [`SqlError`] on the first failing statement (earlier statements' effects
/// remain, as in sqlite3's shell).
///
/// # Example
///
/// ```
/// use confbench_minidb::{run_sql, Database, SqlOutput};
///
/// let mut db = Database::new();
/// let out = run_sql(&mut db, "
///     CREATE TABLE t (a INTEGER, b TEXT);
///     INSERT INTO t VALUES (1, 'one');
///     INSERT INTO t VALUES (2, 'two');
///     SELECT b FROM t WHERE a > 1;
/// ")?;
/// match &out[3] {
///     SqlOutput::Rows { rows, .. } => assert_eq!(rows.len(), 1),
///     other => panic!("{other:?}"),
/// }
/// # Ok::<(), confbench_minidb::SqlError>(())
/// ```
pub fn run_sql(db: &mut Database, script: &str) -> Result<Vec<SqlOutput>, SqlError> {
    parse_script(script)?.into_iter().map(|stmt| execute(db, stmt)).collect()
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Real(f64),
    Str(String),
    Sym(&'static str),
}

fn lex(input: &str) -> Result<Vec<Tok>, SqlError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' | ')' | ',' | ';' | '*' => {
                toks.push(Tok::Sym(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    ';' => ";",
                    _ => "*",
                }));
                i += 1;
            }
            '=' => {
                toks.push(Tok::Sym("="));
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                toks.push(Tok::Sym("!="));
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Sym("<="));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    toks.push(Tok::Sym("!="));
                    i += 2;
                } else {
                    toks.push(Tok::Sym("<"));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Sym(">="));
                    i += 2;
                } else {
                    toks.push(Tok::Sym(">"));
                    i += 1;
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(SqlError::Parse("unterminated string".into())),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                toks.push(Tok::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)) =>
            {
                let start = i;
                i += 1;
                let mut is_real = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit() || (bytes[i] == b'.' && !is_real))
                {
                    if bytes[i] == b'.' {
                        is_real = true;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                if is_real {
                    toks.push(Tok::Real(
                        text.parse().map_err(|e| SqlError::Parse(format!("bad real: {e}")))?,
                    ));
                } else {
                    toks.push(Tok::Int(
                        text.parse().map_err(|e| SqlError::Parse(format!("bad int: {e}")))?,
                    ));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push(Tok::Ident(input[start..i].to_owned()));
            }
            other => return Err(SqlError::Parse(format!("unexpected character {other:?}"))),
        }
    }
    Ok(toks)
}

// --------------------------------------------------------------- parser --

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(word)) = self.peek() {
            if word.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.keyword(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), SqlError> {
        match self.next() {
            Some(Tok::Sym(s)) if s == sym => Ok(()),
            other => Err(SqlError::Parse(format!("expected {sym:?}, found {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Tok::Ident(name)) => Ok(name),
            other => Err(SqlError::Parse(format!("expected identifier, found {other:?}"))),
        }
    }

    fn literal(&mut self) -> Result<DbValue, SqlError> {
        match self.next() {
            Some(Tok::Int(n)) => Ok(DbValue::Integer(n)),
            Some(Tok::Real(x)) => Ok(DbValue::Real(x)),
            Some(Tok::Str(s)) => Ok(DbValue::Text(s)),
            Some(Tok::Ident(word)) if word.eq_ignore_ascii_case("null") => Ok(DbValue::Null),
            other => Err(SqlError::Parse(format!("expected literal, found {other:?}"))),
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, SqlError> {
        match self.next() {
            Some(Tok::Sym("=")) => Ok(CmpOp::Eq),
            Some(Tok::Sym("!=")) => Ok(CmpOp::Ne),
            Some(Tok::Sym("<")) => Ok(CmpOp::Lt),
            Some(Tok::Sym("<=")) => Ok(CmpOp::Le),
            Some(Tok::Sym(">")) => Ok(CmpOp::Gt),
            Some(Tok::Sym(">=")) => Ok(CmpOp::Ge),
            other => Err(SqlError::Parse(format!("expected comparison, found {other:?}"))),
        }
    }

    fn where_clause(&mut self) -> Result<Vec<Predicate>, SqlError> {
        let mut predicates = Vec::new();
        if self.keyword("where") {
            loop {
                let column = self.ident()?;
                let op = self.cmp_op()?;
                let value = self.literal()?;
                predicates.push(Predicate { column, op, value });
                if !self.keyword("and") {
                    break;
                }
            }
        }
        Ok(predicates)
    }

    fn statement(&mut self) -> Result<Statement, SqlError> {
        if self.keyword("create") {
            if self.keyword("table") {
                let name = self.ident()?;
                self.expect_sym("(")?;
                let mut columns = Vec::new();
                loop {
                    let col = self.ident()?;
                    let ty = self.ident()?;
                    let ty = match ty.to_ascii_lowercase().as_str() {
                        "integer" | "int" => ColumnType::Integer,
                        "real" | "float" | "double" => ColumnType::Real,
                        "text" | "varchar" | "string" => ColumnType::Text,
                        other => return Err(SqlError::Parse(format!("unknown type {other}"))),
                    };
                    columns.push(Column::new(col, ty));
                    match self.next() {
                        Some(Tok::Sym(",")) => continue,
                        Some(Tok::Sym(")")) => break,
                        other => {
                            return Err(SqlError::Parse(format!("expected , or ), got {other:?}")))
                        }
                    }
                }
                return Ok(Statement::CreateTable { name, columns });
            }
            if self.keyword("index") {
                let index = self.ident()?;
                self.expect_keyword("on")?;
                let table = self.ident()?;
                self.expect_sym("(")?;
                let column = self.ident()?;
                self.expect_sym(")")?;
                return Ok(Statement::CreateIndex { index, table, column });
            }
            return Err(SqlError::Parse("expected TABLE or INDEX after CREATE".into()));
        }
        if self.keyword("drop") {
            if self.keyword("table") {
                return Ok(Statement::DropTable { name: self.ident()? });
            }
            if self.keyword("index") {
                let index = self.ident()?;
                self.expect_keyword("on")?;
                let table = self.ident()?;
                return Ok(Statement::DropIndex { index, table });
            }
            return Err(SqlError::Parse("expected TABLE or INDEX after DROP".into()));
        }
        if self.keyword("insert") {
            self.expect_keyword("into")?;
            let table = self.ident()?;
            self.expect_keyword("values")?;
            self.expect_sym("(")?;
            let mut values = Vec::new();
            loop {
                values.push(self.literal()?);
                match self.next() {
                    Some(Tok::Sym(",")) => continue,
                    Some(Tok::Sym(")")) => break,
                    other => {
                        return Err(SqlError::Parse(format!("expected , or ), got {other:?}")))
                    }
                }
            }
            return Ok(Statement::Insert { table, values });
        }
        if self.keyword("select") {
            let columns = if matches!(self.peek(), Some(Tok::Sym("*"))) {
                self.next();
                None
            } else {
                let mut cols = vec![self.ident()?];
                while matches!(self.peek(), Some(Tok::Sym(","))) {
                    self.next();
                    cols.push(self.ident()?);
                }
                Some(cols)
            };
            self.expect_keyword("from")?;
            let table = self.ident()?;
            let predicates = self.where_clause()?;
            let order_by = if self.keyword("order") {
                self.expect_keyword("by")?;
                let col = self.ident()?;
                let desc = if self.keyword("desc") {
                    true
                } else {
                    self.keyword("asc");
                    false
                };
                Some((col, desc))
            } else {
                None
            };
            let limit = if self.keyword("limit") {
                match self.next() {
                    Some(Tok::Int(n)) if n >= 0 => Some(n as usize),
                    other => return Err(SqlError::Parse(format!("bad LIMIT: {other:?}"))),
                }
            } else {
                None
            };
            return Ok(Statement::Select { table, columns, predicates, order_by, limit });
        }
        if self.keyword("update") {
            let table = self.ident()?;
            self.expect_keyword("set")?;
            let column = self.ident()?;
            self.expect_sym("=")?;
            let value = self.literal()?;
            let predicates = self.where_clause()?;
            return Ok(Statement::Update { table, column, value, predicates });
        }
        if self.keyword("delete") {
            self.expect_keyword("from")?;
            let table = self.ident()?;
            let predicates = self.where_clause()?;
            return Ok(Statement::Delete { table, predicates });
        }
        if self.keyword("begin") {
            self.keyword("transaction");
            return Ok(Statement::Begin);
        }
        if self.keyword("commit") {
            return Ok(Statement::Commit);
        }
        if self.keyword("rollback") {
            return Ok(Statement::Rollback);
        }
        Err(SqlError::Parse(format!("unexpected token {:?}", self.peek())))
    }
}

fn parse_script(script: &str) -> Result<Vec<Statement>, SqlError> {
    let toks = lex(script)?;
    let mut parser = Parser { toks, pos: 0 };
    let mut statements = Vec::new();
    loop {
        // Skip empty statements.
        while matches!(parser.peek(), Some(Tok::Sym(";"))) {
            parser.next();
        }
        if parser.peek().is_none() {
            return Ok(statements);
        }
        statements.push(parser.statement()?);
        match parser.next() {
            Some(Tok::Sym(";")) | None => {}
            other => return Err(SqlError::Parse(format!("expected ;, found {other:?}"))),
        }
    }
}

// ------------------------------------------------------------- executor --

fn execute(db: &mut Database, stmt: Statement) -> Result<SqlOutput, SqlError> {
    match stmt {
        Statement::CreateTable { name, columns } => {
            db.create_table(&name, columns)?;
            Ok(SqlOutput::Done)
        }
        Statement::DropTable { name } => {
            db.drop_table(&name)?;
            Ok(SqlOutput::Done)
        }
        Statement::CreateIndex { index, table, column } => {
            db.create_index(&table, &index, &column)?;
            Ok(SqlOutput::Done)
        }
        Statement::DropIndex { index, table } => {
            db.drop_index(&table, &index)?;
            Ok(SqlOutput::Done)
        }
        Statement::Insert { table, values } => {
            db.insert(&table, values)?;
            Ok(SqlOutput::Affected(1))
        }
        Statement::Begin => {
            db.begin()?;
            Ok(SqlOutput::Done)
        }
        Statement::Commit => {
            db.commit()?;
            Ok(SqlOutput::Done)
        }
        Statement::Rollback => {
            db.rollback()?;
            Ok(SqlOutput::Done)
        }
        Statement::Select { table, columns, predicates, order_by, limit } => {
            let (headers, mut rows) = {
                let t = db.table(&table)?;
                let col_indexes: Vec<usize> = match &columns {
                    None => (0..t.columns().len()).collect(),
                    Some(names) => names
                        .iter()
                        .map(|n| t.column_index(n).map_err(DbError::from))
                        .collect::<Result<_, _>>()?,
                };
                let headers: Vec<String> =
                    col_indexes.iter().map(|&i| t.columns()[i].name.clone()).collect();
                let pred_indexes = resolve_predicates(t, &predicates)?;
                let order_index = order_by
                    .as_ref()
                    .map(|(col, desc)| {
                        Ok::<_, SqlError>((t.column_index(col).map_err(DbError::from)?, *desc))
                    })
                    .transpose()?;

                let mut matched: Vec<Row> = Vec::new();
                t.scan(|_, row| {
                    if row_matches(row, &pred_indexes) {
                        matched.push(row.clone());
                    }
                });
                if let Some((idx, desc)) = order_index {
                    matched.sort_by(|a, b| {
                        let ord = a[idx].total_cmp(&b[idx]);
                        if desc {
                            ord.reverse()
                        } else {
                            ord
                        }
                    });
                }
                if let Some(n) = limit {
                    matched.truncate(n);
                }
                let projected: Vec<Row> = matched
                    .into_iter()
                    .map(|row| col_indexes.iter().map(|&i| row[i].clone()).collect())
                    .collect();
                (headers, projected)
            };
            db.charge_scan(rows.len() as u64 + 1, 64);
            rows.shrink_to_fit();
            Ok(SqlOutput::Rows { columns: headers, rows })
        }
        Statement::Update { table, column, value, predicates } => {
            let targets = {
                let t = db.table(&table)?;
                let pred_indexes = resolve_predicates(t, &predicates)?;
                let mut ids = Vec::new();
                t.scan(|rowid, row| {
                    if row_matches(row, &pred_indexes) {
                        ids.push(rowid);
                    }
                });
                ids
            };
            for rowid in &targets {
                db.update(&table, *rowid, &column, value.clone())?;
            }
            Ok(SqlOutput::Affected(targets.len() as u64))
        }
        Statement::Delete { table, predicates } => {
            let targets = {
                let t = db.table(&table)?;
                let pred_indexes = resolve_predicates(t, &predicates)?;
                let mut ids = Vec::new();
                t.scan(|rowid, row| {
                    if row_matches(row, &pred_indexes) {
                        ids.push(rowid);
                    }
                });
                ids
            };
            for rowid in &targets {
                db.delete(&table, *rowid)?;
            }
            Ok(SqlOutput::Affected(targets.len() as u64))
        }
    }
}

fn resolve_predicates(
    t: &crate::table::Table,
    predicates: &[Predicate],
) -> Result<Vec<(usize, CmpOp, DbValue)>, SqlError> {
    predicates
        .iter()
        .map(|p| {
            let idx = t.column_index(&p.column).map_err(DbError::from)?;
            Ok((idx, p.op, p.value.clone()))
        })
        .collect()
}

fn row_matches(row: &Row, predicates: &[(usize, CmpOp, DbValue)]) -> bool {
    predicates.iter().all(|(idx, op, value)| op.matches(&row[*idx], value))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Database {
        let mut db = Database::new();
        run_sql(
            &mut db,
            "CREATE TABLE people (name TEXT, age INTEGER, score REAL);
             BEGIN;
             INSERT INTO people VALUES ('ada', 36, 9.5);
             INSERT INTO people VALUES ('grace', 45, 8.0);
             INSERT INTO people VALUES ('alan', 41, 9.0);
             INSERT INTO people VALUES ('edsger', 72, NULL);
             COMMIT;",
        )
        .unwrap();
        db
    }

    fn rows(out: &SqlOutput) -> &Vec<Row> {
        match out {
            SqlOutput::Rows { rows, .. } => rows,
            other => panic!("expected rows, got {other:?}"),
        }
    }

    #[test]
    fn select_star_returns_everything() {
        let mut db = setup();
        let out = run_sql(&mut db, "SELECT * FROM people;").unwrap();
        assert_eq!(rows(&out[0]).len(), 4);
        assert_eq!(rows(&out[0])[0].len(), 3);
    }

    #[test]
    fn where_conjunction_filters() {
        let mut db = setup();
        let out =
            run_sql(&mut db, "SELECT name FROM people WHERE age > 36 AND score >= 8.5;").unwrap();
        let got = rows(&out[0]);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0][0], DbValue::Text("alan".into()));
    }

    #[test]
    fn null_never_matches() {
        let mut db = setup();
        let out = run_sql(&mut db, "SELECT name FROM people WHERE score >= 0;").unwrap();
        assert_eq!(rows(&out[0]).len(), 3, "edsger's NULL score filtered out");
        let out = run_sql(&mut db, "SELECT name FROM people WHERE score != 9.5;").unwrap();
        assert_eq!(rows(&out[0]).len(), 2);
    }

    #[test]
    fn order_by_and_limit() {
        let mut db = setup();
        let out = run_sql(&mut db, "SELECT name FROM people ORDER BY age DESC LIMIT 2;").unwrap();
        let got = rows(&out[0]);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0][0], DbValue::Text("edsger".into()));
        assert_eq!(got[1][0], DbValue::Text("grace".into()));
    }

    #[test]
    fn projection_selects_columns_in_order() {
        let mut db = setup();
        let out = run_sql(&mut db, "SELECT age, name FROM people WHERE name = 'ada';").unwrap();
        match &out[0] {
            SqlOutput::Rows { columns, rows } => {
                assert_eq!(columns, &["age", "name"]);
                assert_eq!(rows[0], vec![DbValue::Integer(36), DbValue::Text("ada".into())]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn update_and_delete_report_counts() {
        let mut db = setup();
        let out = run_sql(&mut db, "UPDATE people SET score = 10.0 WHERE age < 42;").unwrap();
        assert_eq!(out[0], SqlOutput::Affected(2));
        let out = run_sql(&mut db, "DELETE FROM people WHERE score = 10.0;").unwrap();
        assert_eq!(out[0], SqlOutput::Affected(2));
        let out = run_sql(&mut db, "SELECT * FROM people;").unwrap();
        assert_eq!(rows(&out[0]).len(), 2);
    }

    #[test]
    fn transactions_roll_back() {
        let mut db = setup();
        run_sql(&mut db, "BEGIN; DELETE FROM people WHERE age > 0; ROLLBACK;").unwrap();
        let out = run_sql(&mut db, "SELECT * FROM people;").unwrap();
        assert_eq!(rows(&out[0]).len(), 4, "rollback restored the rows");
    }

    #[test]
    fn index_lifecycle_via_sql() {
        let mut db = setup();
        run_sql(&mut db, "CREATE INDEX by_age ON people (age);").unwrap();
        let hits = db
            .table("people")
            .unwrap()
            .index_range("by_age", &36i64.into(), &46i64.into())
            .unwrap();
        assert_eq!(hits.len(), 3);
        run_sql(&mut db, "DROP INDEX by_age ON people;").unwrap();
        assert!(db
            .table("people")
            .unwrap()
            .index_range("by_age", &0i64.into(), &1i64.into())
            .is_err());
    }

    #[test]
    fn quoted_strings_and_comments() {
        let mut db = Database::new();
        let out = run_sql(
            &mut db,
            "CREATE TABLE q (s TEXT); -- a comment
             INSERT INTO q VALUES ('it''s quoted');
             SELECT s FROM q;",
        )
        .unwrap();
        assert_eq!(rows(&out[2])[0][0], DbValue::Text("it's quoted".into()));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let mut db = setup();
        let out = run_sql(&mut db, "select NAME from people where AGE = 36;");
        // Column names are case-sensitive; keywords are not.
        assert!(out.is_err());
        let out = run_sql(&mut db, "select name FROM people WHERE age = 36;").unwrap();
        assert_eq!(rows(&out[0]).len(), 1);
    }

    #[test]
    fn parse_errors_are_reported() {
        let mut db = Database::new();
        assert!(matches!(run_sql(&mut db, "SELEKT * FROM x;"), Err(SqlError::Parse(_))));
        assert!(matches!(run_sql(&mut db, "SELECT FROM x;"), Err(SqlError::Parse(_))));
        assert!(matches!(run_sql(&mut db, "CREATE TABLE t (a BLOB);"), Err(SqlError::Parse(_))));
        assert!(matches!(run_sql(&mut db, "INSERT INTO t VALUES ('x;"), Err(SqlError::Parse(_))));
    }

    #[test]
    fn exec_errors_are_reported() {
        let mut db = Database::new();
        assert!(matches!(run_sql(&mut db, "SELECT * FROM ghost;"), Err(SqlError::Exec(_))));
        run_sql(&mut db, "CREATE TABLE t (a INTEGER);").unwrap();
        assert!(matches!(
            run_sql(&mut db, "INSERT INTO t VALUES ('wrong type');"),
            Err(SqlError::Exec(_))
        ));
        assert!(matches!(run_sql(&mut db, "SELECT missing FROM t;"), Err(SqlError::Exec(_))));
    }

    #[test]
    fn negative_numbers_parse() {
        let mut db = Database::new();
        let out = run_sql(
            &mut db,
            "CREATE TABLE n (v INTEGER);
             INSERT INTO n VALUES (-42);
             SELECT v FROM n WHERE v < -10;",
        )
        .unwrap();
        assert_eq!(rows(&out[2])[0][0], DbValue::Integer(-42));
    }
}

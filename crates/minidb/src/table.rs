//! Tables: schema-checked rows over a B+tree, with secondary indexes.

use std::collections::HashMap;
use std::fmt;

use crate::btree::BTree;
use crate::value::{DbValue, IndexKey, Row};

/// Column type affinity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integers (NULL allowed).
    Integer,
    /// 64-bit floats (NULL allowed; integers coerce).
    Real,
    /// Text (NULL allowed).
    Text,
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Type affinity.
    pub ty: ColumnType,
}

impl Column {
    /// Creates a column.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Column { name: name.into(), ty }
    }
}

/// Errors from table operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// Row arity does not match the schema.
    ArityMismatch {
        /// Columns the schema declares.
        expected: usize,
        /// Values the row supplied.
        got: usize,
    },
    /// A value's type does not match its column.
    TypeMismatch {
        /// Offending column name.
        column: String,
        /// The supplied value's type.
        got: &'static str,
    },
    /// Named column does not exist.
    NoSuchColumn(String),
    /// Named index does not exist.
    NoSuchIndex(String),
    /// An index with this name already exists.
    IndexExists(String),
    /// Rowid not present.
    NoSuchRow(i64),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::ArityMismatch { expected, got } => {
                write!(f, "row has {got} values, schema has {expected} columns")
            }
            TableError::TypeMismatch { column, got } => {
                write!(f, "column {column} cannot store a {got}")
            }
            TableError::NoSuchColumn(name) => write!(f, "no such column: {name}"),
            TableError::NoSuchIndex(name) => write!(f, "no such index: {name}"),
            TableError::IndexExists(name) => write!(f, "index already exists: {name}"),
            TableError::NoSuchRow(id) => write!(f, "no such rowid: {id}"),
        }
    }
}

impl std::error::Error for TableError {}

struct SecondaryIndex {
    column: usize,
    tree: BTree<IndexKey, ()>,
}

/// A table: rowid-keyed B+tree storage plus named secondary indexes.
///
/// # Example
///
/// ```
/// use confbench_minidb::{Column, ColumnType, DbValue, Table};
///
/// let mut t = Table::new("users", vec![
///     Column::new("name", ColumnType::Text),
///     Column::new("age", ColumnType::Integer),
/// ]);
/// let id = t.insert(vec!["ada".into(), 36i64.into()])?;
/// assert_eq!(t.get(id).unwrap()[0], DbValue::Text("ada".into()));
/// # Ok::<(), confbench_minidb::TableError>(())
/// ```
pub struct Table {
    name: String,
    columns: Vec<Column>,
    rows: BTree<i64, Row>,
    indexes: HashMap<String, SecondaryIndex>,
    next_rowid: i64,
    /// Bytes logically written to storage (insert/update payloads), for the
    /// database layer's I/O accounting.
    bytes_written: u64,
}

impl Table {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        Table {
            name: name.into(),
            columns,
            rows: BTree::new(),
            indexes: HashMap::new(),
            next_rowid: 1,
            bytes_written: 0,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Bytes logically written since creation.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// B+tree nodes allocated across primary and secondary storage.
    pub fn nodes_allocated(&self) -> u64 {
        self.rows.nodes_allocated()
            + self.indexes.values().map(|i| i.tree.nodes_allocated()).sum::<u64>()
    }

    /// Index of a column by name.
    ///
    /// # Errors
    ///
    /// [`TableError::NoSuchColumn`].
    pub fn column_index(&self, name: &str) -> Result<usize, TableError> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| TableError::NoSuchColumn(name.to_owned()))
    }

    /// Inserts a row, returning its rowid.
    ///
    /// # Errors
    ///
    /// Arity and type errors.
    pub fn insert(&mut self, row: Row) -> Result<i64, TableError> {
        self.validate(&row)?;
        let rowid = self.next_rowid;
        self.next_rowid += 1;
        self.bytes_written += row_bytes(&row);
        for index in self.indexes.values_mut() {
            index.tree.insert(IndexKey(row[index.column].clone(), rowid), ());
        }
        self.rows.insert(rowid, row);
        Ok(rowid)
    }

    /// Fetches a row by rowid.
    pub fn get(&self, rowid: i64) -> Option<&Row> {
        self.rows.get(&rowid)
    }

    /// Updates one column of a row.
    ///
    /// # Errors
    ///
    /// Row/column lookup and type errors.
    pub fn update(&mut self, rowid: i64, column: &str, value: DbValue) -> Result<(), TableError> {
        let col = self.column_index(column)?;
        self.check_type(col, &value)?;
        let old = {
            let row = self.rows.get_mut(&rowid).ok_or(TableError::NoSuchRow(rowid))?;

            std::mem::replace(&mut row[col], value.clone())
        };
        self.bytes_written += value.byte_len();
        for index in self.indexes.values_mut() {
            if index.column == col {
                index.tree.remove(&IndexKey(old.clone(), rowid));
                index.tree.insert(IndexKey(value.clone(), rowid), ());
            }
        }
        Ok(())
    }

    /// Deletes a row by rowid, returning it.
    ///
    /// # Errors
    ///
    /// [`TableError::NoSuchRow`].
    pub fn delete(&mut self, rowid: i64) -> Result<Row, TableError> {
        let row = self.rows.remove(&rowid).ok_or(TableError::NoSuchRow(rowid))?;
        for index in self.indexes.values_mut() {
            index.tree.remove(&IndexKey(row[index.column].clone(), rowid));
        }
        Ok(row)
    }

    /// Creates a named secondary index over `column`, populating it from
    /// existing rows.
    ///
    /// # Errors
    ///
    /// Duplicate index names and unknown columns.
    pub fn create_index(&mut self, index_name: &str, column: &str) -> Result<(), TableError> {
        if self.indexes.contains_key(index_name) {
            return Err(TableError::IndexExists(index_name.to_owned()));
        }
        let col = self.column_index(column)?;
        let mut tree = BTree::new();
        for (rowid, row) in self.rows.iter() {
            tree.insert(IndexKey(row[col].clone(), *rowid), ());
        }
        self.indexes.insert(index_name.to_owned(), SecondaryIndex { column: col, tree });
        Ok(())
    }

    /// Drops a named index.
    ///
    /// # Errors
    ///
    /// [`TableError::NoSuchIndex`].
    pub fn drop_index(&mut self, index_name: &str) -> Result<(), TableError> {
        self.indexes
            .remove(index_name)
            .map(|_| ())
            .ok_or_else(|| TableError::NoSuchIndex(index_name.to_owned()))
    }

    /// Whether a named index exists.
    pub fn has_index(&self, index_name: &str) -> bool {
        self.indexes.contains_key(index_name)
    }

    /// Rowids whose indexed `column` value lies in `[lo, hi)`, using the
    /// named index (an index range scan).
    ///
    /// # Errors
    ///
    /// [`TableError::NoSuchIndex`].
    pub fn index_range(
        &self,
        index_name: &str,
        lo: &DbValue,
        hi: &DbValue,
    ) -> Result<Vec<i64>, TableError> {
        let index = self
            .indexes
            .get(index_name)
            .ok_or_else(|| TableError::NoSuchIndex(index_name.to_owned()))?;
        let lo = IndexKey(lo.clone(), i64::MIN);
        let hi = IndexKey(hi.clone(), i64::MIN);
        Ok(index.tree.range(&lo, &hi).map(|(k, _)| k.1).collect())
    }

    /// Full scan: applies `f` to every `(rowid, row)` in rowid order.
    pub fn scan(&self, mut f: impl FnMut(i64, &Row)) {
        for (rowid, row) in self.rows.iter() {
            f(*rowid, row);
        }
    }

    /// Rowids matching a predicate, via full scan.
    pub fn scan_filter(&self, mut pred: impl FnMut(&Row) -> bool) -> Vec<i64> {
        let mut out = Vec::new();
        self.scan(|rowid, row| {
            if pred(row) {
                out.push(rowid);
            }
        });
        out
    }

    /// Reinstates a previously deleted row under its original rowid
    /// (transaction rollback path). Index entries are rebuilt.
    pub(crate) fn restore(&mut self, rowid: i64, row: Row) {
        for index in self.indexes.values_mut() {
            index.tree.insert(IndexKey(row[index.column].clone(), rowid), ());
        }
        self.rows.insert(rowid, row);
        self.next_rowid = self.next_rowid.max(rowid + 1);
    }

    fn validate(&self, row: &Row) -> Result<(), TableError> {
        if row.len() != self.columns.len() {
            return Err(TableError::ArityMismatch { expected: self.columns.len(), got: row.len() });
        }
        for (i, value) in row.iter().enumerate() {
            self.check_type(i, value)?;
        }
        Ok(())
    }

    fn check_type(&self, col: usize, value: &DbValue) -> Result<(), TableError> {
        let ok = matches!(
            (self.columns[col].ty, value),
            (_, DbValue::Null)
                | (ColumnType::Integer, DbValue::Integer(_))
                | (ColumnType::Real, DbValue::Real(_))
                | (ColumnType::Real, DbValue::Integer(_))
                | (ColumnType::Text, DbValue::Text(_))
        );
        if ok {
            Ok(())
        } else {
            Err(TableError::TypeMismatch {
                column: self.columns[col].name.clone(),
                got: value.type_name(),
            })
        }
    }
}

fn row_bytes(row: &Row) -> u64 {
    row.iter().map(DbValue::byte_len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                Column::new("a", ColumnType::Integer),
                Column::new("b", ColumnType::Text),
                Column::new("c", ColumnType::Real),
            ],
        )
    }

    fn row(a: i64, b: &str, c: f64) -> Row {
        vec![a.into(), b.into(), c.into()]
    }

    #[test]
    fn insert_assigns_monotone_rowids() {
        let mut t = table();
        let r1 = t.insert(row(1, "x", 1.0)).unwrap();
        let r2 = t.insert(row(2, "y", 2.0)).unwrap();
        assert!(r2 > r1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn type_checking_enforced() {
        let mut t = table();
        let err = t.insert(vec!["oops".into(), "y".into(), 1.0.into()]).unwrap_err();
        assert!(matches!(err, TableError::TypeMismatch { .. }));
        let err = t.insert(vec![1i64.into()]).unwrap_err();
        assert!(matches!(err, TableError::ArityMismatch { expected: 3, got: 1 }));
        // NULL goes anywhere; integers coerce into real columns.
        t.insert(vec![DbValue::Null, DbValue::Null, DbValue::Integer(3)]).unwrap();
    }

    #[test]
    fn update_changes_value_and_index() {
        let mut t = table();
        let id = t.insert(row(10, "x", 0.5)).unwrap();
        t.create_index("idx_a", "a").unwrap();
        t.update(id, "a", 99i64.into()).unwrap();
        assert_eq!(t.get(id).unwrap()[0], DbValue::Integer(99));
        assert_eq!(
            t.index_range("idx_a", &10i64.into(), &11i64.into()).unwrap(),
            Vec::<i64>::new()
        );
        assert_eq!(t.index_range("idx_a", &99i64.into(), &100i64.into()).unwrap(), vec![id]);
    }

    #[test]
    fn delete_removes_from_indexes() {
        let mut t = table();
        t.create_index("idx_a", "a").unwrap();
        let id = t.insert(row(7, "x", 0.0)).unwrap();
        t.delete(id).unwrap();
        assert!(t.get(id).is_none());
        assert!(t.index_range("idx_a", &7i64.into(), &8i64.into()).unwrap().is_empty());
        assert!(matches!(t.delete(id), Err(TableError::NoSuchRow(_))));
    }

    #[test]
    fn index_created_after_rows_sees_them() {
        let mut t = table();
        for i in 0..50 {
            t.insert(row(i, "x", i as f64)).unwrap();
        }
        t.create_index("idx_a", "a").unwrap();
        let hits = t.index_range("idx_a", &10i64.into(), &20i64.into()).unwrap();
        assert_eq!(hits.len(), 10);
    }

    #[test]
    fn index_range_matches_scan_filter() {
        let mut t = table();
        for i in 0..200 {
            t.insert(row(i % 37, "x", 0.0)).unwrap();
        }
        t.create_index("idx_a", "a").unwrap();
        let mut via_index = t.index_range("idx_a", &5i64.into(), &12i64.into()).unwrap();
        let mut via_scan =
            t.scan_filter(|r| matches!(r[0], DbValue::Integer(v) if (5..12).contains(&v)));
        via_index.sort_unstable();
        via_scan.sort_unstable();
        assert_eq!(via_index, via_scan);
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = table();
        t.create_index("i", "a").unwrap();
        assert!(matches!(t.create_index("i", "b"), Err(TableError::IndexExists(_))));
        t.drop_index("i").unwrap();
        assert!(matches!(t.drop_index("i"), Err(TableError::NoSuchIndex(_))));
    }

    #[test]
    fn bytes_written_accumulates() {
        let mut t = table();
        let before = t.bytes_written();
        t.insert(row(1, "hello", 2.0)).unwrap();
        assert!(t.bytes_written() > before + 16);
    }
}

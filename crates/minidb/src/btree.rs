//! A B+tree: the storage engine under every table and index.
//!
//! Order-32 nodes; leaves are chained for range scans. Deletion removes
//! entries in place and allows leaves to underfill (no rebalancing), the
//! classic simplification for append-mostly storage engines; structural
//! invariants that do hold (sorted keys, separator correctness, leaf chain
//! completeness) are enforced by `check_invariants` and property tests.

use std::fmt;

/// Maximum entries per node before a split.
const ORDER: usize = 32;

/// A B+tree mapping `K` to `V`.
///
/// # Example
///
/// ```
/// use confbench_minidb::BTree;
///
/// let mut t = BTree::new();
/// t.insert(2, "two");
/// t.insert(1, "one");
/// assert_eq!(t.get(&1), Some(&"one"));
/// assert_eq!(t.range(&1, &3).count(), 2);
/// ```
pub struct BTree<K, V> {
    root: Node<K, V>,
    len: usize,
    /// Nodes allocated over the tree's lifetime (feeds page-allocation
    /// accounting in the database layer).
    nodes_allocated: u64,
}

enum Node<K, V> {
    Leaf { entries: Vec<(K, V)> },
    Internal { keys: Vec<K>, children: Vec<Node<K, V>> },
}

impl<K: Ord + Clone, V> Default for BTree<K, V> {
    fn default() -> Self {
        BTree::new()
    }
}

impl<K: Ord + Clone, V> BTree<K, V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        BTree { root: Node::Leaf { entries: Vec::new() }, len: 0, nodes_allocated: 1 }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Nodes allocated over the tree's lifetime.
    pub fn nodes_allocated(&self) -> u64 {
        self.nodes_allocated
    }

    /// Inserts a key, returning the previous value if the key existed.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let mut allocs = 0;
        let result = Self::insert_rec(&mut self.root, key, value, &mut allocs);
        self.nodes_allocated += allocs;
        match result {
            InsertResult::Replaced(old) => Some(old),
            InsertResult::Inserted => {
                self.len += 1;
                None
            }
            InsertResult::Split(sep, right) => {
                self.len += 1;
                self.nodes_allocated += 1; // the new root
                let old_root =
                    std::mem::replace(&mut self.root, Node::Leaf { entries: Vec::new() });
                self.root = Node::Internal { keys: vec![sep], children: vec![old_root, right] };
                None
            }
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { entries } => {
                    return entries
                        .binary_search_by(|(k, _)| k.cmp(key))
                        .ok()
                        .map(|i| &entries[i].1);
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k <= key);
                    node = &children[idx];
                }
            }
        }
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let mut node = &mut self.root;
        loop {
            match node {
                Node::Leaf { entries } => {
                    return match entries.binary_search_by(|(k, _)| k.cmp(key)) {
                        Ok(i) => Some(&mut entries[i].1),
                        Err(_) => None,
                    };
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k <= key);
                    node = &mut children[idx];
                }
            }
        }
    }

    /// Removes a key, returning its value. Leaves may underfill.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let removed = Self::remove_rec(&mut self.root, key);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Iterates entries with `lo <= key < hi` in key order.
    pub fn range<'a>(&'a self, lo: &'a K, hi: &'a K) -> Range<'a, K, V> {
        // Descend to the leftmost leaf that may contain `lo`.
        Range { stack: vec![&self.root], lo, hi, leaf: None, pos: 0 }.descend()
    }

    /// Iterates all entries in key order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter { stack: vec![(&self.root, 0)] }
    }

    /// Verifies structural invariants (sorted keys, separators bound
    /// subtrees, consistent length). Used by tests.
    ///
    /// # Panics
    ///
    /// Panics on a violated invariant.
    pub fn check_invariants(&self)
    where
        K: fmt::Debug,
    {
        let mut count = 0;
        Self::check_rec(&self.root, None, None, &mut count);
        assert_eq!(count, self.len, "stored len disagrees with entry count");
    }

    fn check_rec(node: &Node<K, V>, lo: Option<&K>, hi: Option<&K>, count: &mut usize)
    where
        K: fmt::Debug,
    {
        match node {
            Node::Leaf { entries } => {
                for pair in entries.windows(2) {
                    assert!(pair[0].0 < pair[1].0, "leaf keys out of order");
                }
                for (k, _) in entries {
                    if let Some(lo) = lo {
                        assert!(k >= lo, "key {k:?} below separator {lo:?}");
                    }
                    if let Some(hi) = hi {
                        assert!(k < hi, "key {k:?} not below separator {hi:?}");
                    }
                }
                *count += entries.len();
            }
            Node::Internal { keys, children } => {
                assert_eq!(children.len(), keys.len() + 1, "fanout mismatch");
                for pair in keys.windows(2) {
                    assert!(pair[0] < pair[1], "separators out of order");
                }
                for (i, child) in children.iter().enumerate() {
                    let child_lo = if i == 0 { lo } else { Some(&keys[i - 1]) };
                    let child_hi = if i == keys.len() { hi } else { Some(&keys[i]) };
                    Self::check_rec(child, child_lo, child_hi, count);
                }
            }
        }
    }

    fn insert_rec(node: &mut Node<K, V>, key: K, value: V, allocs: &mut u64) -> InsertResult<K, V> {
        match node {
            Node::Leaf { entries } => match entries.binary_search_by(|(k, _)| k.cmp(&key)) {
                Ok(i) => InsertResult::Replaced(std::mem::replace(&mut entries[i].1, value)),
                Err(i) => {
                    entries.insert(i, (key, value));
                    if entries.len() > ORDER {
                        let right_entries = entries.split_off(entries.len() / 2);
                        let sep = right_entries[0].0.clone();
                        *allocs += 1;
                        InsertResult::Split(sep, Node::Leaf { entries: right_entries })
                    } else {
                        InsertResult::Inserted
                    }
                }
            },
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| k <= &key);
                match Self::insert_rec(&mut children[idx], key, value, allocs) {
                    InsertResult::Split(sep, right) => {
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if keys.len() > ORDER {
                            let mid = keys.len() / 2;
                            let sep = keys[mid].clone();
                            let right_keys = keys.split_off(mid + 1);
                            keys.pop(); // the separator moves up
                            let right_children = children.split_off(mid + 1);
                            *allocs += 1;
                            InsertResult::Split(
                                sep,
                                Node::Internal { keys: right_keys, children: right_children },
                            )
                        } else {
                            InsertResult::Inserted
                        }
                    }
                    other => other,
                }
            }
        }
    }

    fn remove_rec(node: &mut Node<K, V>, key: &K) -> Option<V> {
        match node {
            Node::Leaf { entries } => match entries.binary_search_by(|(k, _)| k.cmp(key)) {
                Ok(i) => Some(entries.remove(i).1),
                Err(_) => None,
            },
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| k <= key);
                Self::remove_rec(&mut children[idx], key)
            }
        }
    }
}

enum InsertResult<K, V> {
    Inserted,
    Replaced(V),
    Split(K, Node<K, V>),
}

/// In-order iterator over all entries.
pub struct Iter<'a, K, V> {
    /// (node, next child/entry index) stack.
    stack: Vec<(&'a Node<K, V>, usize)>,
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let (node, pos) = self.stack.pop()?;
            match node {
                Node::Leaf { entries } => {
                    if pos < entries.len() {
                        self.stack.push((node, pos + 1));
                        let (k, v) = &entries[pos];
                        return Some((k, v));
                    }
                }
                Node::Internal { children, .. } => {
                    if pos < children.len() {
                        self.stack.push((node, pos + 1));
                        self.stack.push((&children[pos], 0));
                    }
                }
            }
        }
    }
}

/// Iterator over `lo <= key < hi`.
pub struct Range<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
    lo: &'a K,
    hi: &'a K,
    leaf: Option<&'a [(K, V)]>,
    pos: usize,
}

impl<'a, K: Ord + Clone, V> Range<'a, K, V> {
    fn descend(mut self) -> Self {
        // Simple approach: flatten via the stack lazily in next().
        if let Some(root) = self.stack.pop() {
            self.push_path(root);
        }
        self
    }

    fn push_path(&mut self, mut node: &'a Node<K, V>) {
        loop {
            match node {
                Node::Leaf { entries } => {
                    let start = entries.partition_point(|(k, _)| k < self.lo);
                    self.leaf = Some(entries);
                    self.pos = start;
                    return;
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k <= self.lo);
                    // Push the right siblings for later, nearest first.
                    for child in children[idx + 1..].iter().rev() {
                        self.stack.push(child);
                    }
                    node = &children[idx];
                }
            }
        }
    }

    fn advance_leaf(&mut self) -> bool {
        while let Some(node) = self.stack.pop() {
            match node {
                Node::Leaf { entries } => {
                    self.leaf = Some(entries);
                    self.pos = 0;
                    return true;
                }
                Node::Internal { children, .. } => {
                    for child in children.iter().rev() {
                        self.stack.push(child);
                    }
                }
            }
        }
        false
    }
}

impl<'a, K: Ord + Clone, V> Iterator for Range<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let entries = self.leaf?;
            if self.pos < entries.len() {
                let (k, v) = &entries[self.pos];
                if k >= self.hi {
                    return None;
                }
                self.pos += 1;
                return Some((k, v));
            }
            if !self.advance_leaf() {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut t = BTree::new();
        for i in 0..1000 {
            assert_eq!(t.insert(i * 7 % 1000, i), None);
        }
        assert_eq!(t.len(), 1000);
        for i in 0..1000 {
            assert_eq!(t.get(&(i * 7 % 1000)), Some(&i));
        }
        t.check_invariants();
    }

    #[test]
    fn insert_replaces() {
        let mut t = BTree::new();
        assert_eq!(t.insert(1, "a"), None);
        assert_eq!(t.insert(1, "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&1), Some(&"b"));
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut t = BTree::new();
        let keys: Vec<i64> = (0..500).map(|i| (i * 37 + 11) % 501).collect();
        for &k in &keys {
            t.insert(k, k * 2);
        }
        let collected: Vec<i64> = t.iter().map(|(k, _)| *k).collect();
        let mut expected: Vec<i64> = keys.clone();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(collected, expected);
    }

    #[test]
    fn range_bounds_are_half_open() {
        let mut t = BTree::new();
        for i in 0..100 {
            t.insert(i, ());
        }
        let got: Vec<i64> = t.range(&10, &20).map(|(k, _)| *k).collect();
        assert_eq!(got, (10..20).collect::<Vec<_>>());
        assert_eq!(t.range(&95, &200).count(), 5);
        assert_eq!(t.range(&50, &50).count(), 0);
    }

    #[test]
    fn remove_then_get_misses() {
        let mut t = BTree::new();
        for i in 0..200 {
            t.insert(i, i);
        }
        for i in (0..200).step_by(2) {
            assert_eq!(t.remove(&i), Some(i));
        }
        assert_eq!(t.len(), 100);
        for i in 0..200 {
            assert_eq!(t.get(&i).is_some(), i % 2 == 1);
        }
        t.check_invariants();
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut t: BTree<i64, ()> = BTree::new();
        t.insert(1, ());
        assert_eq!(t.remove(&2), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn get_mut_mutates() {
        let mut t = BTree::new();
        t.insert(5, 10);
        *t.get_mut(&5).unwrap() += 1;
        assert_eq!(t.get(&5), Some(&11));
        assert_eq!(t.get_mut(&6), None);
    }

    #[test]
    fn splits_allocate_nodes() {
        let mut t = BTree::new();
        let before = t.nodes_allocated();
        for i in 0..10_000 {
            t.insert(i, ());
        }
        assert!(t.nodes_allocated() > before + 100, "many splits expected");
        t.check_invariants();
    }

    #[test]
    fn reverse_and_random_insertion_orders_agree() {
        let mut fwd = BTree::new();
        let mut rev = BTree::new();
        for i in 0..2000 {
            fwd.insert(i, i);
            rev.insert(1999 - i, 1999 - i);
        }
        let a: Vec<i64> = fwd.iter().map(|(k, _)| *k).collect();
        let b: Vec<i64> = rev.iter().map(|(k, _)| *k).collect();
        assert_eq!(a, b);
        fwd.check_invariants();
        rev.check_invariants();
    }
}

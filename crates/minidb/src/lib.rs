//! An embedded relational database for the confidential-DBMS experiment
//! (paper §IV-C).
//!
//! The paper stresses SQLite's `speedtest1.c` amalgamation inside secure and
//! normal VMs. This crate is the equivalent substrate, built from scratch:
//!
//! * [`BTree`] — an order-32 B+tree storage engine with range scans;
//! * [`Table`] — schema-checked rows with secondary indexes;
//! * [`Database`] — named tables, transactions with an undo journal,
//!   auto-commit fsync semantics, and operation-trace instrumentation so a
//!   simulated VM can charge for the I/O and syscall behaviour;
//! * query helpers ([`aggregate`], [`order_by`], [`group_count`]) and a
//!   small SQL front-end ([`run_sql`]);
//! * [`run_speedtest`] — a 15-case stress suite mirroring `speedtest1`'s
//!   heterogeneous mix, scaled by the same relative-size parameter.
//!
//! # Example
//!
//! ```
//! use confbench_minidb::{run_speedtest, SpeedTestCase};
//!
//! let reports = run_speedtest(10, 7)?;
//! let insert_txn = reports.iter().find(|r| r.case == SpeedTestCase::InsertTransaction).unwrap();
//! assert!(insert_txn.rows >= 100);
//! # Ok::<(), confbench_minidb::DbError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btree;
mod database;
mod query;
mod speedtest;
mod sql;
mod table;
mod value;

pub use btree::BTree;
pub use database::{Database, DbError};
pub use query::{aggregate, group_count, order_by, Aggregate};
pub use speedtest::{run_speedtest, SpeedTest, SpeedTestCase, SpeedTestReport};
pub use sql::{run_sql, SqlError, SqlOutput};
pub use table::{Column, ColumnType, Table, TableError};
pub use value::{DbValue, IndexKey, Row};

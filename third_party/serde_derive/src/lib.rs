//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the value-tree model of the sibling `serde` stub. Because `syn`/`quote`
//! are unavailable offline, the item is parsed directly from
//! `proc_macro::TokenStream` and code is generated as strings.
//!
//! Supported shapes (everything this workspace derives on):
//!
//! * structs with named fields, honoring `#[serde(default)]`,
//!   `#[serde(default = "path")]`, and `#[serde(rename = "...")]`;
//! * single-field tuple structs (newtypes), with or without
//!   `#[serde(transparent)]`;
//! * enums of unit / newtype / struct variants, honoring
//!   `#[serde(rename_all = "...")]` and per-variant `rename`, in serde's
//!   externally-tagged representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

#[derive(Default, Clone)]
struct Meta {
    rename_all: Option<String>,
    rename: Option<String>,
    default: Option<DefaultKind>,
    transparent: bool,
}

#[derive(Clone)]
enum DefaultKind {
    Std,
    Path(String),
}

struct Field {
    name: String,
    meta: Meta,
}

enum VariantData {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    meta: Meta,
    data: VariantData,
}

enum Item {
    Struct { name: String, fields: Vec<Field> },
    NewtypeStruct { name: String },
    Enum { name: String, meta: Meta, variants: Vec<Variant> },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    let item_meta = parse_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive does not support generic type `{name}`");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                Item::Struct { name, fields }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_fields(g.stream());
                assert!(
                    arity == 1 || item_meta.transparent,
                    "serde stub derive supports tuple struct `{name}` only as a newtype"
                );
                Item::NewtypeStruct { name }
            }
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream());
                Item::Enum { name, meta: item_meta, variants }
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde stub derive supports struct/enum, got `{other}`"),
    }
}

/// Parses leading attributes, returning the merged `#[serde(...)]` meta.
fn parse_attrs(tokens: &[TokenTree], pos: &mut usize) -> Meta {
    let mut meta = Meta::default();
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *pos += 1;
        let Some(TokenTree::Group(g)) = tokens.get(*pos) else {
            panic!("expected [...] after # in attribute")
        };
        *pos += 1;
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
            (inner.first(), inner.get(1))
        {
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis {
                merge_serde_meta(&mut meta, args.stream());
            }
        }
    }
    meta
}

fn merge_serde_meta(meta: &mut Meta, args: TokenStream) {
    let tokens: Vec<TokenTree> = args.into_iter().collect();
    let mut pos = 0;
    while pos < tokens.len() {
        let key = expect_ident(&tokens, &mut pos);
        let value = if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            pos += 1;
            match tokens.get(pos) {
                Some(TokenTree::Literal(lit)) => {
                    pos += 1;
                    Some(unquote(&lit.to_string()))
                }
                other => panic!("expected string literal after `{key} =`, got {other:?}"),
            }
        } else {
            None
        };
        match (key.as_str(), value) {
            ("rename_all", Some(v)) => meta.rename_all = Some(v),
            ("rename", Some(v)) => meta.rename = Some(v),
            ("default", Some(path)) => meta.default = Some(DefaultKind::Path(path)),
            ("default", None) => meta.default = Some(DefaultKind::Std),
            ("transparent", None) => meta.transparent = true,
            (other, _) => panic!("unsupported serde attribute `{other}` in stub derive"),
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        if matches!(
            tokens.get(*pos),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("expected identifier, got {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let meta = parse_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&tokens, &mut pos);
        fields.push(Field { name, meta });
    }
    fields
}

/// Skips a type expression up to (and past) the next top-level comma.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *pos += 1;
                return;
            }
            _ => {}
        }
        *pos += 1;
    }
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut commas = 0;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                commas += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    commas + usize::from(!trailing_comma)
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        let meta = parse_attrs(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        let data = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                let arity = count_top_level_fields(g.stream());
                assert!(
                    arity == 1,
                    "serde stub derive supports tuple variants with exactly one field, \
                     `{name}` has {arity}"
                );
                VariantData::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantData::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantData::Unit,
        };
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, meta, data });
    }
    variants
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_owned()
}

// ---------------------------------------------------------------------------
// Name casing
// ---------------------------------------------------------------------------

/// Applies a `rename_all` rule to a PascalCase variant name.
fn apply_rename_all(rule: &str, name: &str) -> String {
    let words = split_pascal(name);
    match rule {
        "lowercase" => name.to_lowercase(),
        "UPPERCASE" => name.to_uppercase(),
        "snake_case" => words.join("_"),
        "kebab-case" => words.join("-"),
        "SCREAMING_SNAKE_CASE" => words.join("_").to_uppercase(),
        other => panic!("unsupported rename_all rule `{other}` in stub derive"),
    }
}

fn split_pascal(name: &str) -> Vec<String> {
    let mut words: Vec<String> = Vec::new();
    for c in name.chars() {
        if c.is_uppercase() || words.is_empty() {
            words.push(String::new());
        }
        let last = words.last_mut().expect("non-empty");
        last.extend(c.to_lowercase());
    }
    words
}

fn variant_wire_name(enum_meta: &Meta, variant: &Variant) -> String {
    if let Some(rename) = &variant.meta.rename {
        return rename.clone();
    }
    match &enum_meta.rename_all {
        Some(rule) => apply_rename_all(rule, &variant.name),
        None => variant.name.clone(),
    }
}

fn field_wire_name(field: &Field) -> String {
    field.meta.rename.clone().unwrap_or_else(|| field.name.clone())
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut body = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields {
                body.push_str(&format!(
                    "m.insert({key:?}.to_string(), ::serde::Serialize::to_value(&self.{field}));\n",
                    key = field_wire_name(f),
                    field = f.name,
                ));
            }
            body.push_str("::serde::Value::Object(m)");
            impl_block(
                name,
                "Serialize",
                &format!("fn to_value(&self) -> ::serde::Value {{ {body} }}"),
            )
        }
        Item::NewtypeStruct { name } => impl_block(
            name,
            "Serialize",
            "fn to_value(&self) -> ::serde::Value { ::serde::Serialize::to_value(&self.0) }",
        ),
        Item::Enum { name, meta, variants } => {
            let mut arms = String::new();
            for v in variants {
                let wire = variant_wire_name(meta, v);
                match &v.data {
                    VariantData::Unit => arms.push_str(&format!(
                        "{name}::{var} => ::serde::Value::String({wire:?}.to_string()),\n",
                        var = v.name,
                    )),
                    VariantData::Newtype => arms.push_str(&format!(
                        "{name}::{var}(ref x) => {{\n\
                         let mut m = ::serde::Map::new();\n\
                         m.insert({wire:?}.to_string(), ::serde::Serialize::to_value(x));\n\
                         ::serde::Value::Object(m)\n}}\n",
                        var = v.name,
                    )),
                    VariantData::Struct(fields) => {
                        let bindings: Vec<String> =
                            fields.iter().map(|f| format!("ref {}", f.name)).collect();
                        let mut inner = String::from("let mut inner = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "inner.insert({key:?}.to_string(), \
                                 ::serde::Serialize::to_value({field}));\n",
                                key = field_wire_name(f),
                                field = f.name,
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{var} {{ {bind} }} => {{\n{inner}\
                             let mut m = ::serde::Map::new();\n\
                             m.insert({wire:?}.to_string(), ::serde::Value::Object(inner));\n\
                             ::serde::Value::Object(m)\n}}\n",
                            var = v.name,
                            bind = bindings.join(", "),
                        ));
                    }
                }
            }
            impl_block(
                name,
                "Serialize",
                &format!("fn to_value(&self) -> ::serde::Value {{ match *self {{ {arms} }} }}"),
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                let key = field_wire_name(f);
                let missing = match &f.meta.default {
                    Some(DefaultKind::Std) => "::std::default::Default::default()".to_owned(),
                    Some(DefaultKind::Path(path)) => format!("{path}()"),
                    None => format!(
                        "return ::std::result::Result::Err(::serde::DeError::custom(\
                         concat!(\"missing field `\", {key:?}, \"` in {name}\")))"
                    ),
                };
                inits.push_str(&format!(
                    "{field}: match obj.get({key:?}) {{\n\
                     ::std::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?,\n\
                     ::std::option::Option::None => {missing},\n}},\n",
                    field = f.name,
                ));
            }
            let body = format!(
                "let obj = v.as_object().ok_or_else(|| \
                 ::serde::DeError::mismatch(\"object ({name})\", v))?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            );
            impl_block(name, "Deserialize", &de_fn(&body))
        }
        Item::NewtypeStruct { name } => {
            let body =
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))");
            impl_block(name, "Deserialize", &de_fn(&body))
        }
        Item::Enum { name, meta, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let wire = variant_wire_name(meta, v);
                match &v.data {
                    VariantData::Unit => unit_arms.push_str(&format!(
                        "{wire:?} => ::std::result::Result::Ok({name}::{var}),\n",
                        var = v.name,
                    )),
                    VariantData::Newtype => data_arms.push_str(&format!(
                        "{wire:?} => ::std::result::Result::Ok(\
                         {name}::{var}(::serde::Deserialize::from_value(payload)?)),\n",
                        var = v.name,
                    )),
                    VariantData::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{field}: match inner.get({key:?}) {{\n\
                                 ::std::option::Option::Some(fv) => \
                                 ::serde::Deserialize::from_value(fv)?,\n\
                                 ::std::option::Option::None => \
                                 return ::std::result::Result::Err(::serde::DeError::custom(\
                                 concat!(\"missing field `\", {key:?}, \"` in variant \", \
                                 {wire:?}))),\n}},\n",
                                field = f.name,
                                key = field_wire_name(f),
                            ));
                        }
                        data_arms.push_str(&format!(
                            "{wire:?} => {{\n\
                             let inner = payload.as_object().ok_or_else(|| \
                             ::serde::DeError::mismatch(\"object variant payload\", payload))?;\n\
                             ::std::result::Result::Ok({name}::{var} {{ {inits} }})\n}}\n",
                            var = v.name,
                        ));
                    }
                }
            }
            let body = format!(
                "match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown {name} variant `{{other}}`\"))),\n}},\n\
                 ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                 let (tag, payload) = m.iter().next().expect(\"len checked\");\n\
                 match tag.as_str() {{\n{data_arms}\
                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown {name} variant `{{other}}`\"))),\n}}\n}}\n\
                 other => ::std::result::Result::Err(\
                 ::serde::DeError::mismatch(\"{name} variant\", other)),\n}}"
            );
            impl_block(name, "Deserialize", &de_fn(&body))
        }
    }
}

fn de_fn(body: &str) -> String {
    format!(
        "fn from_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }}"
    )
}

fn impl_block(type_name: &str, trait_name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::{trait_name} for {type_name} {{ {body} }}"
    )
}

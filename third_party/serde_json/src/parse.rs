//! Recursive-descent JSON parser (RFC 8259) targeting the stub `Value` tree.

use crate::Error;
use serde::{Map, Number, Value};

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub(crate) fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Nesting guard: deep enough for any real payload, shallow enough that a
/// hostile input cannot blow the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("JSON nested too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            // Last-wins on duplicate keys, matching serde_json's default.
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(lead) => {
                    // Copy one UTF-8 scalar; the input came from a &str so
                    // the sequence length encoded in the lead byte is valid.
                    let len = match lead {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = &self.bytes[self.pos..self.pos + len];
                    out.push_str(std::str::from_utf8(chunk).expect("input was a valid &str"));
                    self.pos += len;
                }
            }
        }
    }

    /// Reads the 4 hex digits after `\u`, combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, Error> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a `\uXXXX` low surrogate must follow.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(self.err("invalid low surrogate"));
                }
                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("unpaired high surrogate"));
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err(self.err("unpaired low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut n = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            n = n * 16 + d;
            self.pos += 1;
        }
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(n)));
            }
            // Integer out of 64-bit range: fall through to f64 like serde_json
            // does with arbitrary_precision off.
        }
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Value::Number(Number::from_f64(f))),
            _ => Err(self.err("invalid number")),
        }
    }
}

//! Offline stand-in for the `serde_json` crate.
//!
//! Provides the subset of the real API this workspace uses: [`to_string`] /
//! [`to_vec`] / [`from_str`] / [`from_slice`] / [`to_value`], the [`json!`]
//! macro for flat object literals, and a re-export of the serde stub's
//! [`Value`] tree. The JSON emitted is canonical enough for the tests that
//! pin exact strings: objects sort keys (the underlying map is a BTreeMap),
//! floats print in Rust's shortest-roundtrip form, and strings are escaped
//! per RFC 8259.

#![forbid(unsafe_code)]

mod parse;

pub use serde::{Map, Number, Value};

use std::fmt;

/// Error from JSON (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub(crate) fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Converts any serializable type into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes to a JSON string.
///
/// # Errors
///
/// Never fails for the value model this stub supports; the `Result` mirrors
/// the real API.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes to JSON bytes.
///
/// # Errors
///
/// As [`to_string`].
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a type from a JSON string.
///
/// # Errors
///
/// Parse errors and shape mismatches.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Deserializes a type from JSON bytes.
///
/// # Errors
///
/// Invalid UTF-8, parse errors, and shape mismatches.
pub fn from_slice<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Value`] from a flat JSON-ish literal.
///
/// Supports the forms this workspace uses: `json!(null)`, arrays of
/// expressions, and objects with string-literal keys and expression values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($key.to_string(), $crate::to_value(&$val)); )*
        $crate::Value::Object(m)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
    }

    #[test]
    fn float_shortest_roundtrip() {
        for x in [0.1, 1e-9, 123456.789, std::f64::consts::PI, 1.0 / 3.0] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "{s}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let nasty = "quote\" backslash\\ newline\n tab\t unicode\u{1F980} ctrl\u{01}";
        let s = to_string(nasty).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), nasty);
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({"ok": true, "n": 3});
        assert_eq!(v["ok"], true);
        assert_eq!(v["n"], 3);
        assert_eq!(to_string(&v).unwrap(), "{\"n\":3,\"ok\":true}");
    }

    #[test]
    fn vec_and_option_roundtrip() {
        let v: Vec<f64> = vec![1.0, 2.5, 3.0];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&s).unwrap(), v);
        assert_eq!(to_string(&Option::<u64>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u64>>("9").unwrap(), Some(9));
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        assert!(from_str::<Value>("{\"unterminated").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>("\"\\u0041\\u00e9\"").unwrap(), "Aé");
        // Surrogate pair: U+1D11E (musical G clef).
        assert_eq!(from_str::<String>("\"\\ud834\\udd1e\"").unwrap(), "\u{1D11E}");
    }
}

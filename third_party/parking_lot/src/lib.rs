//! Offline stand-in for the `parking_lot` crate.
//!
//! Thin wrappers over `std::sync` primitives exposing parking_lot's
//! non-poisoning API: `lock()` / `read()` / `write()` return guards directly
//! instead of `Result`s. A poisoned std lock (a panic while held) is
//! recovered by taking the inner guard, matching parking_lot's semantics of
//! not tracking poison at all.

#![forbid(unsafe_code)]

use std::fmt;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive with parking_lot's panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                f.debug_tuple("RwLock").field(&&*e.into_inner()).finish()
            }
            Err(std::sync::TryLockError::WouldBlock) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is usable after a panic.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! Benches compile and run as timed smoke loops: each `iter` body executes a
//! fixed number of times and the mean wall time is printed. There is no
//! statistical analysis, warm-up, or HTML report — the point is that
//! `cargo bench` exercises the same code paths with the same API shape.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Iterations per bench body. Small: smoke coverage, not measurement rigor.
const ITERS: u32 = 20;

/// Top-level bench driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { elapsed_ns: 0, iters: 0 };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.into() }
    }
}

/// Times closures handed to it by a bench body.
pub struct Bencher {
    elapsed_ns: u128,
    iters: u32,
}

impl Bencher {
    /// Runs `routine` a fixed number of times, accumulating wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iters += ITERS;
    }
}

/// A parameterized benchmark label.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/param` form used with `bench_with_input`.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }

    /// Explicit `name/param` form.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{param}", name.into()))
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { elapsed_ns: 0, iters: 0 };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), &b);
        self
    }

    /// Ends the group. No-op here; kept for API parity.
    pub fn finish(self) {}
}

fn report(name: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("bench {name}: no iterations");
        return;
    }
    let per_iter = b.elapsed_ns / u128::from(b.iters);
    println!("bench {name}: {per_iter} ns/iter ({} iters)", b.iters);
}

/// Declares a bench group function, criterion style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut hits = 0u32;
        Criterion::default().bench_function("smoke", |b| b.iter(|| hits += 1));
        assert_eq!(hits, ITERS);
    }

    #[test]
    fn group_runs_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut total = 0u64;
        for input in [1u64, 2, 3] {
            group.bench_with_input(BenchmarkId::from_parameter(input), &input, |b, &x| {
                b.iter(|| total += x)
            });
        }
        group.finish();
        assert_eq!(total, u64::from(ITERS) * 6);
    }
}

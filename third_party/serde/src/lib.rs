//! Offline stand-in for the `serde` crate.
//!
//! The real serde is unavailable in this build environment (no network, no
//! vendored registry), so this crate supplies the subset of its surface the
//! workspace uses: [`Serialize`] / [`Deserialize`] traits, a
//! [`de::DeserializeOwned`] alias, and `#[derive(Serialize, Deserialize)]`
//! macros (re-exported from the sibling `serde_derive` stub) that understand
//! the `#[serde(...)]` attributes present in this workspace: `rename`,
//! `rename_all`, `default`, `default = "path"`, and `transparent`.
//!
//! Unlike real serde's visitor-based data model, this stand-in serializes
//! through a concrete JSON-like [`Value`] tree. That is entirely adequate
//! here: the only serialization format the workspace uses is JSON (via the
//! sibling `serde_json` stub), and every wire type is a plain struct/enum.

#![forbid(unsafe_code)]

mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Error produced when deserializing a [`Value`] into a typed structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }

    /// Convenience for "expected X, found Y" mismatches.
    pub fn mismatch(expected: &str, found: &Value) -> Self {
        DeError(format!("expected {expected}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// [`DeError`] when the value's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Compatibility module mirroring `serde::de`.
pub mod de {
    /// Owned deserialization marker, as bounded by `serde::de::DeserializeOwned`.
    ///
    /// In this stand-in every [`crate::Deserialize`] type is owned, so this
    /// is a blanket alias trait.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}

    pub use crate::DeError as Error;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::mismatch("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::mismatch("integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::mismatch("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::mismatch("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::mismatch("array", other)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => m.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect(),
            other => Err(DeError::mismatch("object", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => m.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect(),
            other => Err(DeError::mismatch("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

//! The JSON-like value tree this serde stand-in serializes through.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;

/// Object map type. A `BTreeMap` keeps key order deterministic, which in
/// turn keeps every serialized artifact in this workspace byte-reproducible.
pub type Map = BTreeMap<String, Value>;

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A finite float.
    Float(f64),
}

impl Number {
    /// Builds from an unsigned integer.
    pub fn from_u64(n: u64) -> Self {
        Number::PosInt(n)
    }

    /// Builds from a signed integer.
    pub fn from_i64(n: i64) -> Self {
        if n >= 0 {
            Number::PosInt(n as u64)
        } else {
            Number::NegInt(n)
        }
    }

    /// Builds from a float.
    ///
    /// # Panics
    ///
    /// Panics on non-finite values — JSON cannot represent them.
    pub fn from_f64(n: f64) -> Self {
        assert!(n.is_finite(), "JSON cannot represent non-finite float {n}");
        Number::Float(n)
    }

    /// The value as `f64` (lossy for very large integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(_) => None,
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        // Numeric comparison across representations: 2, 2u64 and 2.0 are the
        // same JSON number. Integer/integer compares exactly; anything
        // involving a float compares as f64.
        match (*self, *other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            (Number::PosInt(_), Number::NegInt(_)) | (Number::NegInt(_), Number::PosInt(_)) => {
                false
            }
            (a, b) => a.as_f64() == b.as_f64(),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            // Rust's f64 Display is shortest-roundtrip, never exponential,
            // and never prints NaN/inf for the finite values we allow.
            Number::Float(x) => write!(f, "{x}"),
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Human-readable kind name, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric value as `i64`, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The boolean, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup that tolerates non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

const NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;

    /// Field access, `serde_json` style: missing keys and non-objects index
    /// to `Value::Null` rather than panicking.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if *n == Number::from_i64(*other as i64))
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq_int!(i8, i16, i32, i64, u8, u16, u32);

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        matches!(self, Value::Number(n) if *n == Number::from_u64(*other))
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Number(n) if *n == Number::from_f64(*other))
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! Implements the slice of the 0.8 API this workspace uses — `SeedableRng`,
//! `Rng::gen` / `Rng::gen_range`, and `rngs::StdRng` — over a splitmix64
//! core. Sequences are deterministic per seed but differ from upstream
//! `StdRng` (which is ChaCha12); callers in this workspace only assert
//! distributional properties, not golden values.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution for `T`:
    /// full range for integers, `[0, 1)` for floats, fair coin for `bool`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator.
    ///
    /// Internally splitmix64: one 64-bit state word, full 2^64 period,
    /// passes BigCrush when used as a plain stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: i64 = rng.gen_range(-50..50);
            assert!((-50..50).contains(&x));
            let y = rng.gen_range(3u32..23);
            assert!((3..23).contains(&y));
            let z = rng.gen_range(0usize..17);
            assert!(z < 17);
        }
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
            sum += d;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "uniform mean drifted: {mean}");
    }
}
